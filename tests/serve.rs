//! Serve-layer integration tests (ISSUE PR9 acceptance):
//!
//! - the synthetic fleet's `wimi-serve/1` summary is byte-identical
//!   across worker/chunk shapes (the override seam stands in for the
//!   `WIMI_THREADS`/`WIMI_CHUNK` processes CI compares);
//! - a tiny queue bound degrades to counted sheds, never a panic or a
//!   deadlock, and the accounting stays conserved;
//! - the shared model cache single-flights training under contention;
//! - a panic inside a worker is forwarded to the caller, not swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use wimi::obs::Recorder;
use wimi::phy::channel::Environment;
use wimi::phy::material::Liquid;
use wimi::phy::scenario::LiquidSpec;
use wimi::serve::{
    run_fleet, summary_json, validate_summary, Engine, FleetConfig, MeasureRequest, ModelCache,
    ModelKey, RetryPolicy, ServeConfig, Session, SessionSpec,
};

/// Serialises tests that twiddle the process-global fan-out overrides.
static FANOUT_LOCK: Mutex<()> = Mutex::new(());

fn tiny_fleet() -> FleetConfig {
    FleetConfig {
        sessions: 6,
        measurements: 2,
        packets: 8,
        serve: ServeConfig {
            shards: 3,
            train_per_class: 2,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_summary_is_byte_identical_across_fanout_shapes() {
    let _guard = match FANOUT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut summaries = Vec::new();
    for (threads, chunk) in [(1usize, 1usize), (4, 2), (3, 7), (4, 64)] {
        wimi::core::par::set_thread_override(Some(threads));
        wimi::core::par::set_chunk_override(Some(chunk));
        summaries.push(summary_json(&run_fleet(&tiny_fleet())));
    }
    wimi::core::par::set_thread_override(None);
    wimi::core::par::set_chunk_override(None);
    validate_summary(&summaries[0]).expect("summary validates");
    for s in &summaries[1..] {
        assert_eq!(
            &summaries[0], s,
            "fleet summary must not depend on worker/chunk shape"
        );
    }
}

#[test]
fn tiny_queue_bound_degrades_to_counted_sheds() {
    // One shard bounded to a single slot: each 6-request tick keeps one
    // request and sheds five — deterministically, with no panic and no
    // blocking.
    let cfg = FleetConfig {
        serve: ServeConfig {
            shards: 1,
            queue_bound: 1,
            train_per_class: 2,
            ..ServeConfig::default()
        },
        ..tiny_fleet()
    };
    let report = run_fleet(&cfg);
    assert_eq!(report.requests, 12);
    assert_eq!(report.shed, 10, "5 of 6 requests shed per tick");
    assert_eq!(report.responses, 2);
    assert_eq!(report.responses + report.shed, report.requests);
    assert_eq!(report.queue_peak, 1);
    let shed_counter = report
        .counters
        .iter()
        .find(|&&(n, _)| n == "serve_shed")
        .map(|&(_, v)| v);
    assert_eq!(shed_counter, Some(10));
    let summary = summary_json(&report);
    validate_summary(&summary).expect("shedding summary still validates");
}

#[test]
fn model_cache_single_flights_concurrent_training() {
    let cache = ModelCache::new();
    let key = ModelKey {
        catalog: vec!["Milk".into(), "Pure water".into()],
        environment: "Lab".into(),
        packets: 10,
    };
    let trainings = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                cache.get_or_train(&key, None, || {
                    trainings.fetch_add(1, Ordering::Relaxed);
                    wimi::core::WiMi::new(wimi::core::WiMiConfig::default())
                });
            });
        }
    });
    assert_eq!(trainings.load(Ordering::Relaxed), 1, "trained exactly once");
    assert_eq!(cache.len(), 1);
}

#[test]
fn fleet_cache_misses_match_model_keys() {
    let report = run_fleet(&tiny_fleet());
    let misses = report
        .counters
        .iter()
        .find(|&&(n, _)| n == "model_cache_misses")
        .map(|&(_, v)| v);
    assert_eq!(misses, Some(report.model_keys as u64));
}

#[test]
fn queue_peaks_are_tracked_per_shard_and_globally() {
    // The global queue peak, the serve_queue_peak counter, and the
    // timeline's per-tick per-shard peaks must all tell the same story:
    // the global figure is exactly the hottest shard sample.
    let report = run_fleet(&tiny_fleet());
    let timeline_max = report
        .timeline
        .ticks
        .iter()
        .map(|t| t.queue_peak())
        .max()
        .unwrap_or(0);
    assert_eq!(timeline_max, report.queue_peak as u64);
    let counter = report
        .counters
        .iter()
        .find(|&&(n, _)| n == "serve_queue_peak")
        .map(|&(_, v)| v);
    assert_eq!(counter, Some(report.queue_peak as u64));
    for tick in &report.timeline.ticks {
        assert_eq!(tick.shards.len(), 3, "one sample per shard per tick");
        for shard in &tick.shards {
            assert!(shard.peak <= report.queue_peak as u64);
        }
    }
    // 6 sessions round-robin over 3 shards: every shard queues exactly 2
    // requests per tick, so each per-shard peak is 2 — strictly finer
    // than a single global gauge could record.
    let last = report.timeline.ticks.last().expect("at least one tick");
    assert!(last.shards.iter().all(|s| s.peak == 2), "{:?}", last.shards);
}

#[test]
fn worker_panic_is_forwarded_not_swallowed() {
    let catalog: Vec<(String, LiquidSpec)> = [Liquid::Milk, Liquid::PureWater]
        .iter()
        .map(|&l| (l.name().to_owned(), l.into()))
        .collect();
    let names: Vec<String> = catalog.iter().map(|(n, _)| n.clone()).collect();
    let sessions: Vec<Session> = (0..4)
        .map(|i| {
            Session::new(SessionSpec {
                id: i,
                seed: 1000 + i,
                truth: 0,
                catalog: names.clone(),
                spec: catalog[0].1.clone(),
                environment: Environment::Lab,
                packets: 8,
                retry: RetryPolicy::default(),
                fault: None,
                config: wimi::core::WiMiConfig::default(),
                trace: false,
            })
        })
        .collect();
    let mut engine = Engine::new(
        ServeConfig::default(),
        sessions,
        catalog,
        Arc::new(Recorder::enabled()),
    );
    engine.set_request_probe(Box::new(|session_id| {
        assert!(session_id != 2, "probe panic inside a worker");
    }));
    let requests: Vec<MeasureRequest> = (0..4)
        .map(|s| MeasureRequest { session: s, seq: 0 })
        .collect();
    engine.submit(&requests);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.drain()));
    assert!(
        outcome.is_err(),
        "a worker panic must surface at the drain call"
    );
}
