//! Property tests over the fault-injection layer: every injector must be
//! an identity at zero probability, a pure function of (plan seed, capture
//! nonce) at any probability, and must never manufacture non-finite CSI.

use proptest::prelude::*;
use wimi::phy::csi::{CsiCapture, CsiSource};
use wimi::phy::fault::FaultPlan;
use wimi::phy::scenario::{Scenario, Simulator};

fn capture(seed: u64, packets: usize) -> CsiCapture {
    let mut sim = Simulator::new(Scenario::builder().build(), seed);
    sim.capture(packets)
}

/// One plan per injector, each with only that fault enabled at `p`.
fn single_injector_plans(seed: u64, p: f64) -> [FaultPlan; 6] {
    [
        FaultPlan::new(seed).with_packet_loss(p),
        FaultPlan::new(seed).with_antenna_dropout(p),
        FaultPlan::new(seed).with_agc_jump(p, 6.0),
        FaultPlan::new(seed).with_saturation(p, 0.35),
        FaultPlan::new(seed).with_interference(p),
        FaultPlan::new(seed).with_stale(p),
    ]
}

proptest! {
    #[test]
    fn zero_probability_injectors_are_identity(seed in 0u64..200, packets in 1usize..8) {
        let cap = capture(seed, packets);
        for plan in single_injector_plans(seed, 0.0) {
            prop_assert!(plan.is_identity());
            prop_assert_eq!(plan.apply(&cap, 0), cap.clone());
        }
    }

    #[test]
    fn zero_intensity_scaling_is_identity(seed in 0u64..200, intensity in 0.0f64..1.0) {
        // scaled(0) zeroes every probability no matter how hostile the
        // original plan, and any scale of an identity stays an identity.
        let cap = capture(seed, 5);
        let zeroed = FaultPlan::hostile(seed).scaled(0.0);
        prop_assert!(zeroed.is_identity());
        prop_assert_eq!(zeroed.apply(&cap, 3), cap.clone());
        prop_assert!(FaultPlan::new(seed).scaled(intensity).is_identity());
    }

    #[test]
    fn every_injector_is_deterministic_and_finite(
        seed in 0u64..100,
        p in 0.01f64..1.0,
        nonce in 0u64..16,
    ) {
        let cap = capture(seed, 6);
        for plan in single_injector_plans(seed, p) {
            let a = plan.apply(&cap, nonce);
            let b = plan.apply(&cap, nonce);
            prop_assert_eq!(&a, &b, "same seed and nonce must be bitwise equal");
            for m in 0..a.len() {
                prop_assert!(a.packet(m).is_finite(), "injector produced non-finite CSI");
            }
        }
    }

    #[test]
    fn composed_hostile_plan_is_deterministic_and_finite(
        seed in 0u64..100,
        intensity in 0.0f64..1.0,
        nonce in 0u64..16,
    ) {
        let cap = capture(seed, 6);
        let plan = FaultPlan::hostile(seed ^ 0xF00D).scaled(intensity);
        let a = plan.apply(&cap, nonce);
        prop_assert_eq!(&a, &plan.apply(&cap, nonce));
        for m in 0..a.len() {
            prop_assert!(a.packet(m).is_finite());
        }
    }

    #[test]
    fn zero_intensity_through_simulator_is_bitwise_identity(seed in 0u64..100) {
        // The acceptance bar for the whole subsystem: a simulator carrying
        // a zero-intensity plan is indistinguishable, bit for bit, from one
        // carrying no plan at all.
        let mut clean = Simulator::new(Scenario::builder().build(), seed);
        let mut faulted = Simulator::new(Scenario::builder().build(), seed);
        faulted.set_fault_plan(Some(FaultPlan::hostile(99).scaled(0.0)));
        prop_assert_eq!(clean.capture(5), faulted.capture(5));
        prop_assert_eq!(clean.capture(5), faulted.capture(5));
    }

    #[test]
    fn faulted_simulators_reproduce_across_instances(seed in 0u64..100, p in 0.05f64..0.6) {
        let plan = FaultPlan::new(seed).with_packet_loss(p).with_agc_jump(p, 6.0);
        let mut a = Simulator::new(Scenario::builder().build(), seed);
        let mut b = Simulator::new(Scenario::builder().build(), seed);
        a.set_fault_plan(Some(plan.clone()));
        b.set_fault_plan(Some(plan));
        prop_assert_eq!(a.capture(8), b.capture(8));
        prop_assert_eq!(a.capture(8), b.capture(8));
    }

    #[test]
    fn packet_loss_never_grows_a_capture(seed in 0u64..100, p in 0.0f64..1.0) {
        let cap = capture(seed, 8);
        let lossy = FaultPlan::new(seed).with_packet_loss(p).apply(&cap, 0);
        prop_assert!(lossy.len() <= cap.len());
    }
}
