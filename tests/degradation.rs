//! End-to-end graceful-degradation test: the full ten-liquid
//! identification under increasing packet loss. Accuracy may fall as the
//! channel gets worse, but it must fall *gracefully* — monotonically
//! non-increasing (within noise) and still far better than chance at 40%
//! loss, with no cliff where the pipeline collapses or panics.

use wimi::phy::fault::FaultPlan;
use wimi_experiments::harness::{paper_liquids, run_identification, RunOptions};

fn accuracy_at(packet_loss: f64) -> f64 {
    let fault = if packet_loss > 0.0 {
        Some(FaultPlan::new(0xDE64).with_packet_loss(packet_loss))
    } else {
        None
    };
    let opts = RunOptions {
        n_train: 6,
        n_test: 5,
        fault,
        ..RunOptions::default()
    };
    run_identification(&paper_liquids(), &opts).accuracy()
}

#[test]
fn ten_liquid_accuracy_degrades_gracefully_under_packet_loss() {
    let levels = [0.0, 0.2, 0.4];
    let accs: Vec<f64> = levels.iter().map(|&p| accuracy_at(p)).collect();

    // Healthy channel reproduces the paper's headline regime.
    assert!(accs[0] > 0.85, "clean accuracy only {:.3}", accs[0]);

    // Monotone non-increasing within a small sampling-noise allowance
    // (the retry protocol can occasionally rescue a trial loss would
    // otherwise have cost).
    for w in accs.windows(2) {
        assert!(
            w[1] <= w[0] + 0.05,
            "accuracy rose under heavier loss: {:.3} -> {:.3} (all: {accs:?})",
            w[0],
            w[1]
        );
    }

    // At 40% loss the pipeline must still beat 10-class chance by a wide
    // margin — degradation, not collapse.
    assert!(
        accs[2] >= 0.1,
        "40% loss collapsed below chance: {:.3}",
        accs[2]
    );
}
