//! Integration tests validating the simulator against the paper's
//! physical equations (Eq. 2–4, 18–21).

use wimi::phy::csi::CsiSource;
use wimi::phy::hardware::HardwareProfile;
use wimi::phy::material::{Dielectric, Liquid, PropagationConstants};
use wimi::phy::scenario::{Scenario, Simulator};
use wimi::phy::units::Hertz;

fn quiet_scenario() -> Scenario {
    let mut b = Scenario::builder();
    b.hardware(HardwareProfile::ideal());
    b.environment(wimi::phy::channel::Environment::EmptyHall);
    b.build()
}

/// Circular mean helper over packets.
fn mean_phase_diff(cap: &wimi::phy::csi::CsiCapture, a: usize, b: usize, k: usize) -> f64 {
    let (s, c) = cap
        .phase_difference_series(a, b, k)
        .into_iter()
        .fold((0.0f64, 0.0f64), |(s, c), x| (s + x.sin(), c + x.cos()));
    s.atan2(c)
}

#[test]
fn measured_delta_theta_matches_equation_18() {
    // ΔΘ = −(D₁ − D₂)(β_tar − β_free), modulo 2π.
    let scenario = quiet_scenario();
    let f: Hertz = scenario.channel().subcarrier_freq(15);
    let air = PropagationConstants::air(f);

    for liquid in [Liquid::Oil, Liquid::Honey, Liquid::Milk] {
        let pc = liquid.propagation(f);
        let mut sim = Simulator::new(scenario.clone(), 11);
        let paths = sim.liquid_paths();
        let base = Simulator::new(scenario.clone(), 11).capture(150);
        sim.set_liquid(Some(liquid.into()));
        let tar = sim.capture(150);

        let measured = wimi::dsp::stats::wrap_to_pi(
            mean_phase_diff(&tar, 0, 1, 15) - mean_phase_diff(&base, 0, 1, 15),
        );
        let expected =
            wimi::dsp::stats::wrap_to_pi(-(paths[0] - paths[1]).value() * (pc.beta - air.beta));
        let err = wimi::dsp::stats::wrap_to_pi(measured - expected).abs();
        assert!(
            err < 0.3,
            "{}: measured {measured:.3}, expected {expected:.3}",
            liquid.name()
        );
    }
}

#[test]
fn measured_delta_psi_matches_equation_19() {
    // ΔΨ = e^{−(D₁ − D₂)(α_tar − α_free)} — the common attenuation (and
    // the leakage floor) cancel in the cross-antenna ratio.
    let scenario = quiet_scenario();
    let f: Hertz = scenario.channel().subcarrier_freq(15);
    let air = PropagationConstants::air(f);

    for liquid in [Liquid::Honey, Liquid::Milk] {
        let pc = liquid.propagation(f);
        let mut sim = Simulator::new(scenario.clone(), 13);
        let paths = sim.liquid_paths();
        let base = Simulator::new(scenario.clone(), 13).capture(150);
        sim.set_liquid(Some(liquid.into()));
        let tar = sim.capture(150);

        let amp = |cap: &wimi::phy::csi::CsiCapture, a: usize| {
            wimi::dsp::stats::mean(&cap.amplitude_series(a, 15))
        };
        let measured = (amp(&tar, 0) / amp(&tar, 1)) / (amp(&base, 0) / amp(&base, 1));
        let expected = (-(paths[0] - paths[1]).value() * (pc.alpha - air.alpha)).exp();
        let rel = (measured.ln() - expected.ln()).abs() / expected.ln().abs().max(0.1);
        assert!(
            rel < 0.25,
            "{}: measured ΔΨ {measured:.3}, expected {expected:.3}",
            liquid.name()
        );
    }
}

#[test]
fn omega_ground_truth_orders_liquids_consistently() {
    // The feature Ω̄ should rank liquids the same way at both band edges
    // (frequency-flat over a 20 MHz channel).
    let f_lo = Hertz(5.24e9 - 8.75e6);
    let f_hi = Hertz(5.24e9 + 8.75e6);
    let order = |f: Hertz| -> Vec<&'static str> {
        let air = PropagationConstants::air(f);
        let mut feats: Vec<(&str, f64)> = wimi::phy::material::LIQUIDS
            .iter()
            .map(|l| (l.name(), l.propagation(f).material_feature(air)))
            .collect();
        feats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        feats.into_iter().map(|(n, _)| n).collect()
    };
    assert_eq!(order(f_lo), order(f_hi));
}

#[test]
fn leakage_floor_preserves_differential_attenuation() {
    // The floor boosts the common attenuation only; the per-antenna ratio
    // must stay exactly e^{−α(D_a − D_b)} for a floored liquid (water).
    let scenario = quiet_scenario();
    let f: Hertz = scenario.channel().subcarrier_freq(15);
    let air = PropagationConstants::air(f);
    let pc = Liquid::PureWater.propagation(f);

    let mut sim = Simulator::new(scenario.clone(), 17);
    let paths = sim.liquid_paths();
    sim.set_liquid(Some(Liquid::PureWater.into()));
    let tar = sim.capture(100);
    let base = Simulator::new(scenario, 17).capture(100);

    let amp = |cap: &wimi::phy::csi::CsiCapture, a: usize| {
        wimi::dsp::stats::mean(&cap.amplitude_series(a, 15))
    };
    // Water's bulk loss is far below the floor, so the floor is active…
    assert!(amp(&tar, 1) > 0.01, "through-signal collapsed");
    // …and the differential still matches the equations.
    let measured = ((amp(&tar, 0) / amp(&tar, 1)) / (amp(&base, 0) / amp(&base, 1))).ln();
    let expected = -(paths[0] - paths[1]).value() * (pc.alpha - air.alpha);
    assert!(
        (measured - expected).abs() / expected.abs() < 0.25,
        "measured lnΔΨ {measured:.3}, expected {expected:.3}"
    );
}

#[test]
fn packet_averaging_suppresses_dynamic_multipath() {
    // Phase-difference spread must shrink roughly as 1/√N with packet
    // count — the mechanism behind the paper's Fig. 18.
    let mut b = Scenario::builder();
    b.environment(wimi::phy::channel::Environment::Library);
    let scenario = b.build();

    let spread_for = |n: usize, seed: u64| -> f64 {
        let trials = 24;
        let mut means = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut sim = Simulator::new(scenario.clone(), seed + t as u64);
            sim.set_liquid(Some(Liquid::Milk.into()));
            let cap = sim.capture(n);
            means.push(mean_phase_diff(&cap, 0, 1, 15));
        }
        // Spread of the per-capture circular means across trials.
        1.0 - wimi::dsp::stats::circular_resultant(&means)
    };
    let small = spread_for(4, 100);
    let large = spread_for(32, 100);
    assert!(
        large < small,
        "averaging should tighten estimates: 4 pkts → {small:.4}, 32 pkts → {large:.4}"
    );
}
