//! Integration tests for the wimi-obs observability layer: recording must
//! never change pipeline output, and enabled-recorder snapshots must be
//! byte-identical for any worker thread count.

use std::sync::Arc;
use wimi::core::{PairSelection, WiMi, WiMiConfig};
use wimi::obs::{validate_json, CounterId, IssueId, Recorder};
use wimi::phy::csi::{CsiCapture, CsiSource};
use wimi::phy::material::Liquid;
use wimi::phy::scenario::{Scenario, Simulator};
use wimi_experiments::harness::{run_identification, Material, RunOptions};

fn capture_pair(seed: u64, n: usize) -> (CsiCapture, CsiCapture) {
    let mut sim = Simulator::new(Scenario::builder().build(), seed);
    let base = sim.capture(n);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let tar = sim.capture(n);
    (base, tar)
}

/// Zeroes one subcarrier on one antenna in every packet.
fn kill_subcarrier(cap: &CsiCapture, antenna: usize, subcarrier: usize) -> CsiCapture {
    cap.packets()
        .map(|mut p| {
            *p.get_mut(antenna, subcarrier) = wimi::phy::complex::Complex::ZERO;
            p
        })
        .collect()
}

#[test]
fn recording_never_changes_pipeline_output() {
    let (base, tar) = capture_pair(11, 20);
    let plain = WiMi::new(WiMiConfig::default());
    let mut recorded = WiMi::new(WiMiConfig::default());
    recorded.set_recorder(Some(Arc::new(Recorder::enabled())));
    let a = plain.measure(&base, &tar);
    let b = recorded.measure(&base, &tar);
    assert_eq!(a, b, "recorder must be a pure observer");
    // Training too: same model predictions with and without a recorder.
    let materials = vec![
        Material::catalog(Liquid::PureWater),
        Material::catalog(Liquid::Honey),
    ];
    let opts = |rec: Option<Arc<Recorder>>| RunOptions {
        n_train: 3,
        n_test: 2,
        packets: 10,
        recorder: rec,
        ..RunOptions::default()
    };
    let r_plain = run_identification(&materials, &opts(None));
    let r_rec = run_identification(&materials, &opts(Some(Arc::new(Recorder::enabled()))));
    assert_eq!(r_plain.confusion, r_rec.confusion);
    assert_eq!(r_plain.dropped_trials, r_rec.dropped_trials);
    let _ = plain;
}

#[test]
fn snapshot_json_is_thread_count_invariant() {
    let materials = vec![
        Material::catalog(Liquid::PureWater),
        Material::catalog(Liquid::Oil),
    ];
    let run = || {
        let rec = Arc::new(Recorder::enabled());
        let opts = RunOptions {
            n_train: 3,
            n_test: 2,
            packets: 10,
            recorder: Some(Arc::clone(&rec)),
            ..RunOptions::default()
        };
        let _ = run_identification(&materials, &opts);
        rec.snapshot().to_json()
    };
    wimi::core::par::set_thread_override(Some(1));
    let t1 = run();
    wimi::core::par::set_thread_override(Some(4));
    let t4 = run();
    wimi::core::par::set_thread_override(None);
    assert_eq!(t1, t4, "snapshot must not depend on worker count");
    validate_json(&t1).expect("snapshot validates against wimi-obs/1");
}

#[test]
fn measurement_quality_flows_into_the_recorder() {
    let (base, tar) = capture_pair(1, 40);
    let base = kill_subcarrier(&base, 0, 5);
    let tar = kill_subcarrier(&tar, 0, 5);
    let rec = Arc::new(Recorder::enabled());
    let mut wimi = WiMi::new(WiMiConfig {
        pairs: PairSelection::Best,
        ..WiMiConfig::default()
    });
    wimi.set_recorder(Some(Arc::clone(&rec)));
    let m = wimi.measure(&base, &tar);
    assert!(m.is_ok(), "dead subcarrier must not sink the measurement");

    let snap = rec.snapshot();
    let get = |name: &str| {
        snap.counter(name)
            .unwrap_or_else(|| panic!("counter {name}"))
    };
    assert_eq!(get("measurements_attempted"), 1);
    assert_eq!(get("measurements_ok"), 1);
    assert_eq!(get("subcarriers_rejected"), 1);
    assert!(get("pairs_attempted") >= 1);
    assert_eq!(
        snap.issues[IssueId::RejectedSubcarriers as usize].1,
        1,
        "triage issue must tally under rejected_subcarriers"
    );
    // The γ and dispersion histograms saw exactly one feature.
    assert_eq!(snap.gamma.counts.iter().sum::<u64>(), 1);
    assert_eq!(snap.dispersion.counts.iter().sum::<u64>(), 1);
}

#[test]
fn simulator_reports_captures_and_packets() {
    let rec = Arc::new(Recorder::enabled());
    let mut sim = Simulator::new(Scenario::builder().build(), 3);
    sim.set_recorder(Some(Arc::clone(&rec)));
    let a = sim.capture(7);
    let b = sim.capture(5);
    assert_eq!(a.len(), 7);
    assert_eq!(b.len(), 5);
    let snap = rec.snapshot();
    assert_eq!(snap.counters[CounterId::CapturesTaken as usize].1, 2);
    assert_eq!(snap.counters[CounterId::PacketsSimulated as usize].1, 12);
    // With the deterministic null clock, capture spans cost zero ns.
    assert_eq!(snap.stages[0].calls, 2);
    assert_eq!(snap.stages[0].total_ns, 0);
}
