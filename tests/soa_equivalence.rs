//! Property suite: the structure-of-arrays (SoA) capture layout and the
//! scratch-arena hot paths are bit-for-bit equivalent to the per-packet
//! array-of-structs reference layout — across random scenarios, fault
//! plans, packet/antenna selections, thread counts and chunk sizes.
//!
//! The owned-[`CsiPacket`] accessors (`packet`/`packets`) *are* the legacy
//! layout, retained as the reference the flat planes are checked against;
//! production code reads the planes directly.

use std::sync::Mutex;

use proptest::prelude::*;
use wimi::core::{WiMi, WiMiConfig};
use wimi::phy::csi::{CsiCapture, CsiSource};
use wimi::phy::fault::FaultPlan;
use wimi::phy::material::LIQUIDS;
use wimi::phy::scenario::{Scenario, Simulator};

fn sim_capture(seed: u64, packets: usize, liquid: usize) -> CsiCapture {
    let mut sim = Simulator::new(Scenario::builder().build(), seed);
    if liquid < LIQUIDS.len() {
        sim.set_liquid(Some(LIQUIDS[liquid].into()));
    }
    sim.capture(packets)
}

proptest! {
    // Every plane-walking series accessor must reproduce, bit for bit,
    // what the same math gives on materialised per-packet copies.
    #[test]
    fn plane_series_match_owned_packet_reference(
        seed in 0u64..300,
        packets in 1usize..10,
        liquid in 0usize..11, // index 10 = no liquid (baseline scenario)
    ) {
        let cap = sim_capture(seed, packets, liquid);
        let owned: Vec<_> = cap.packets().collect();
        for a in 0..cap.n_antennas() {
            for k in 0..cap.n_subcarriers() {
                let amp = cap.amplitude_series(a, k);
                let ph = cap.phase_series(a, k);
                for (m, p) in owned.iter().enumerate() {
                    prop_assert_eq!(cap.get(m, a, k), p.get(a, k));
                    prop_assert_eq!(amp[m].to_bits(), p.get(a, k).abs().to_bits());
                    prop_assert_eq!(ph[m].to_bits(), p.get(a, k).arg().to_bits());
                }
            }
        }
        for a in 0..cap.n_antennas() {
            for b in 0..cap.n_antennas() {
                if a == b {
                    continue;
                }
                for k in 0..cap.n_subcarriers() {
                    let series = cap.phase_difference_series(a, b, k);
                    for (m, p) in owned.iter().enumerate() {
                        let reference = (p.get(a, k) * p.get(b, k).conj()).arg();
                        prop_assert_eq!(series[m].to_bits(), reference.to_bits());
                    }
                }
            }
        }
    }

    // The one-pass SoA packet/antenna rebuild used by screening must
    // equal filtering materialised packets and re-assembling them.
    #[test]
    fn soa_selection_matches_per_packet_rebuild(
        seed in 0u64..200,
        packets in 1usize..10,
        mask_bits in 0u32..1024,
        ants_idx in 0usize..6,
    ) {
        let cap = sim_capture(seed, packets, 3);
        let keep: Vec<bool> = (0..packets).map(|m| mask_bits >> m & 1 == 1).collect();
        let choices: [&[usize]; 6] = [&[0], &[1], &[2], &[0, 1], &[1, 2], &[0, 1, 2]];
        let ants = choices[ants_idx];
        let sel = cap.select_packets_antennas(&keep, ants);
        let reference = CsiCapture::from_packets(
            cap.packets()
                .enumerate()
                .filter(|(m, _)| keep[*m])
                .map(|(_, p)| p.select_antennas(ants))
                .collect(),
        );
        if reference.is_empty() {
            prop_assert!(sel.is_empty());
        } else {
            prop_assert_eq!(sel, reference);
        }
    }
}

/// Serialises the shape-twiddling fan-out tests: the thread/chunk
/// overrides are process-global, and the test harness runs sibling tests
/// on other threads.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs one measurement under an explicit fan-out shape and returns its
/// full Debug rendering (f64 Debug is shortest-roundtrip, so equal strings
/// mean bitwise-equal outputs for the finite values the pipeline emits).
fn measure_digest(
    wimi: &WiMi,
    base: &CsiCapture,
    tar: &CsiCapture,
    threads: usize,
    chunk: usize,
) -> String {
    wimi::core::par::set_thread_override(Some(threads));
    wimi::core::par::set_chunk_override(Some(chunk));
    let m = wimi.measure(base, tar);
    wimi::core::par::set_thread_override(None);
    wimi::core::par::set_chunk_override(None);
    format!("{m:?}")
}

proptest! {
    // The full measurement — feature and quality report — must not
    // depend on the fan-out shape, even on fault-degraded captures that
    // exercise the screening/salvage paths.
    #[test]
    fn measurement_invariant_to_fanout_shape_under_faults(
        seed in 0u64..64,
        packets in 8usize..16,
        intensity in 0.0f64..0.6,
        nonce in 0u64..8,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let mut sim = Simulator::new(Scenario::builder().build(), seed);
        let base = sim.capture(packets);
        sim.set_liquid(Some(LIQUIDS[(seed as usize) % LIQUIDS.len()].into()));
        let clean_tar = sim.capture(packets);
        let plan = FaultPlan::hostile(seed).scaled(intensity);
        let tar = plan.apply(&clean_tar, nonce);

        let wimi = WiMi::new(WiMiConfig::default());
        let reference = measure_digest(&wimi, &base, &tar, 1, 1);
        for (threads, chunk) in [(1, 7), (2, 1), (3, 2), (4, 3), (4, 64)] {
            let digest = measure_digest(&wimi, &base, &tar, threads, chunk);
            prop_assert_eq!(&digest, &reference, "threads={} chunk={}", threads, chunk);
        }
    }
}
