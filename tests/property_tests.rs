//! Property-based tests over core invariants of the DSP, physics, and
//! geometry substrates.

use proptest::prelude::*;
use wimi::dsp::stats::{circular_resultant, circular_std, mean, pearson, variance, wrap_to_pi};
use wimi::dsp::wavelet::{swt_decompose, swt_reconstruct, Wavelet};
use wimi::phy::geometry::{Cylinder, Point, Ray};
use wimi::phy::material::{Permittivity, PropagationConstants};
use wimi::phy::units::{Hertz, Meters};

proptest! {
    #[test]
    fn swt_perfect_reconstruction(
        xs in proptest::collection::vec(-100.0f64..100.0, 8..120),
        levels in 1usize..5,
        wavelet_idx in 0usize..4,
    ) {
        let wavelet = Wavelet::ALL[wavelet_idx];
        let dec = swt_decompose(&xs, wavelet, levels);
        let back = swt_reconstruct(&dec);
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "reconstruction error {}", (a - b).abs());
        }
    }

    #[test]
    fn wrap_to_pi_is_idempotent_and_bounded(theta in -1000.0f64..1000.0) {
        let w = wrap_to_pi(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_to_pi(w) - w).abs() < 1e-12);
        // Wrapping preserves the angle modulo 2π.
        let diff = (theta - w) / std::f64::consts::TAU;
        prop_assert!((diff - diff.round()).abs() < 1e-9);
    }

    #[test]
    fn circular_resultant_is_within_unit_interval(
        angles in proptest::collection::vec(-10.0f64..10.0, 1..200),
    ) {
        let r = circular_resultant(&angles);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
    }

    #[test]
    fn circular_std_never_nan_on_finite_input(
        angles in proptest::collection::vec(-10.0f64..10.0, 1..200),
    ) {
        // Regression: a resultant rounded above 1 made √(−2·ln R) NaN.
        let s = circular_std(&angles);
        prop_assert!(s.is_finite() && s >= 0.0, "std = {s}");
        // Identical angles are the worst case for the rounding overflow.
        let aligned = vec![angles[0]; angles.len().max(2)];
        let s = circular_std(&aligned);
        prop_assert!(s.is_finite() && s >= 0.0, "aligned std = {s}");
    }

    #[test]
    fn pearson_never_nan_on_finite_input(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..100),
        constant in -100.0f64..100.0,
    ) {
        // Regression: a constant series divided by zero and returned NaN.
        let ys: Vec<f64> = vec![constant; xs.len()];
        let r = pearson(&xs, &ys);
        prop_assert!(r.is_finite(), "constant series gave {r}");
        let r = pearson(&xs, &xs);
        prop_assert!(r.is_finite() && r.abs() <= 1.0 + 1e-12, "self-corr {r}");
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..100),
        shift in -50.0f64..50.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v0 = variance(&xs);
        let v1 = variance(&shifted);
        prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0.abs()), "{v0} vs {v1}");
        prop_assert!((mean(&shifted) - mean(&xs) - shift).abs() < 1e-9);
    }

    #[test]
    fn propagation_constants_monotone_in_loss(
        eps_real in 1.5f64..90.0,
        loss_a in 0.0f64..20.0,
        loss_gap in 0.1f64..20.0,
    ) {
        let f = Hertz::from_ghz(5.24);
        let low = PropagationConstants::from_permittivity(
            Permittivity::new(eps_real, loss_a), f);
        let high = PropagationConstants::from_permittivity(
            Permittivity::new(eps_real, loss_a + loss_gap), f);
        // More loss → more attenuation, and β never decreases.
        prop_assert!(high.alpha > low.alpha);
        prop_assert!(high.beta >= low.beta);
    }

    #[test]
    fn beta_grows_with_permittivity(
        eps_a in 1.5f64..80.0,
        gap in 0.5f64..20.0,
    ) {
        let f = Hertz::from_ghz(5.24);
        let low = PropagationConstants::from_permittivity(Permittivity::new(eps_a, 0.0), f);
        let high = PropagationConstants::from_permittivity(Permittivity::new(eps_a + gap, 0.0), f);
        prop_assert!(high.beta > low.beta);
    }

    #[test]
    fn chord_length_bounded_by_diameter(
        center_y in -0.2f64..0.2,
        radius_cm in 1.0f64..20.0,
        ray_y in -0.5f64..0.5,
    ) {
        let cyl = Cylinder::new(Point::new(1.0, center_y), Meters::from_cm(radius_cm));
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, ray_y));
        let chord = cyl.chord_length(ray);
        prop_assert!(chord.value() >= 0.0);
        prop_assert!(chord.value() <= 2.0 * cyl.radius.value() + 1e-12);
    }

    #[test]
    fn chord_shrinks_as_ray_moves_off_center(
        radius_cm in 3.0f64..15.0,
        off1 in 0.0f64..0.02,
        extra in 0.001f64..0.05,
    ) {
        let cyl = Cylinder::new(Point::new(1.0, 0.0), Meters::from_cm(radius_cm));
        // Horizontal rays at increasing |y| offsets.
        let near = Ray::new(Point::new(0.0, off1), Point::new(2.0, off1));
        let far = Ray::new(Point::new(0.0, off1 + extra), Point::new(2.0, off1 + extra));
        prop_assert!(cyl.chord_length(far).value() <= cyl.chord_length(near).value() + 1e-12);
    }

    #[test]
    fn material_feature_positive_for_lossy_dense_media(
        eps_real in 2.0f64..90.0,
        eps_imag in 0.05f64..40.0,
    ) {
        let f = Hertz::from_ghz(5.24);
        let pc = PropagationConstants::from_permittivity(
            Permittivity::new(eps_real, eps_imag), f);
        let air = PropagationConstants::air(f);
        let omega = pc.material_feature(air);
        prop_assert!(omega > 0.0, "omega = {omega}");
        prop_assert!(omega.is_finite());
    }
}
