//! Telemetry integration tests (ISSUE PR10 acceptance):
//!
//! - the rendered `wimi-metrics/1` timeline is byte-identical across
//!   worker/chunk shapes (the override seam stands in for the
//!   `WIMI_THREADS`/`WIMI_CHUNK` processes CI compares), both for the
//!   plain synthetic fleet and for a fault-injected campaign fleet;
//! - the ring-buffer window evicts the oldest ticks deterministically
//!   and the artifact records the eviction count;
//! - the SLO layer names the first breaching tick and fails closed on
//!   environments it has never seen;
//! - the fleet report joins per-session stats with the timeline into
//!   per-environment × per-material rows.

use std::sync::Mutex;
use wimi::metrics::{parse_and_validate, parse_policy, render, render_report, slo, SessionRow};
use wimi::serve::{run_campaign_fleet, run_fleet, FleetConfig, FleetReport, ServeConfig};

/// Serialises tests that twiddle the process-global fan-out overrides.
static FANOUT_LOCK: Mutex<()> = Mutex::new(());

fn tiny_fleet() -> FleetConfig {
    FleetConfig {
        sessions: 6,
        measurements: 3,
        packets: 8,
        serve: ServeConfig {
            shards: 3,
            train_per_class: 2,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Renders the report's timeline exactly the way the CLI does: with the
/// engine's obs snapshot embedded as the final cross-check line.
fn render_timeline(report: &FleetReport) -> String {
    render(&report.timeline, Some(&report.engine_snapshot.to_json()))
}

/// Runs `f` under each worker/chunk shape and asserts the rendered
/// timeline never changes by a byte.
fn assert_shape_independent<F: Fn() -> FleetReport>(f: F) {
    let _guard = match FANOUT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut timelines = Vec::new();
    for (threads, chunk) in [(1usize, 1usize), (4, 2), (3, 7), (4, 64)] {
        wimi::core::par::set_thread_override(Some(threads));
        wimi::core::par::set_chunk_override(Some(chunk));
        timelines.push(render_timeline(&f()));
    }
    wimi::core::par::set_thread_override(None);
    wimi::core::par::set_chunk_override(None);
    parse_and_validate(&timelines[0]).expect("timeline validates");
    for t in &timelines[1..] {
        assert_eq!(
            &timelines[0], t,
            "timeline must not depend on worker/chunk shape"
        );
    }
}

#[test]
fn fleet_timeline_is_byte_identical_across_fanout_shapes() {
    assert_shape_independent(|| run_fleet(&tiny_fleet()));
}

#[test]
fn faulted_campaign_timeline_is_byte_identical_across_fanout_shapes() {
    // The degradation campaign injects hostile fault plans, which drive
    // retries and exhaustions through the timeline's retry series — the
    // byte-identity contract must hold under that traffic too.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/campaigns/degradation.campaign"
    ))
    .expect("read shipped campaign");
    let campaign = wimi::campaign::parse(&text).expect("shipped campaign parses");
    let cfg = FleetConfig {
        measurements: 2,
        ..tiny_fleet()
    };
    assert_shape_independent(move || run_campaign_fleet(&campaign, &cfg));
}

#[test]
fn metrics_window_evicts_the_oldest_ticks_deterministically() {
    let cfg = FleetConfig {
        measurements: 5,
        metrics_window: 2,
        ..tiny_fleet()
    };
    let report = run_fleet(&cfg);
    assert_eq!(report.timeline.ticks.len(), 2, "window keeps newest 2");
    assert_eq!(report.timeline.evicted, 3);
    assert_eq!(report.timeline.first_tick(), Some(3));
    let rendered = render_timeline(&report);
    assert!(rendered.contains("\"evicted\":3"), "{rendered}");
    let parsed = parse_and_validate(&rendered).expect("windowed timeline validates");
    assert_eq!(parsed.evicted, 3);

    // The same run with an unbounded window retains every tick, and its
    // retained tail matches the windowed run tick for tick.
    let full = run_fleet(&FleetConfig {
        metrics_window: 1024,
        ..cfg
    });
    assert_eq!(full.timeline.evicted, 0);
    assert_eq!(full.timeline.ticks.len(), 5);
    assert_eq!(full.timeline.ticks[3..], report.timeline.ticks[..]);
}

#[test]
fn slo_breaches_name_the_first_breaching_tick() {
    // One shard bounded to a single slot sheds five of six requests on
    // every tick, so any shed budget breaches immediately at tick 0.
    let cfg = FleetConfig {
        serve: ServeConfig {
            shards: 1,
            queue_bound: 1,
            train_per_class: 2,
            ..ServeConfig::default()
        },
        ..tiny_fleet()
    };
    let report = run_fleet(&cfg);
    let rows: Vec<SessionRow> = report.per_session.iter().map(|s| s.metrics_row()).collect();

    let policy = parse_policy("max_shed_fraction 0.1\nmax_queue_peak 64\n").expect("policy");
    let breaches = slo::evaluate(&policy, &report.timeline, &rows);
    assert_eq!(breaches.len(), 1, "{breaches:?}");
    assert_eq!(breaches[0].rule, "max_shed_fraction");
    assert_eq!(breaches[0].tick, Some(0), "first breaching tick");

    // A policy the run satisfies reports no breaches at all.
    let policy = parse_policy("max_shed_fraction 1.0\nmax_queue_peak 64\n").expect("policy");
    assert!(slo::evaluate(&policy, &report.timeline, &rows).is_empty());

    // An accuracy floor for an environment the fleet never ran is a
    // breach, not a silent pass: the gate fails closed.
    let policy = parse_policy("min_accuracy Cellar 0.5\n").expect("policy");
    let breaches = slo::evaluate(&policy, &report.timeline, &rows);
    assert_eq!(breaches.len(), 1);
    assert_eq!(breaches[0].rule, "min_accuracy");
}

#[test]
fn fleet_report_joins_sessions_and_timeline() {
    let report = run_fleet(&tiny_fleet());
    let rows: Vec<SessionRow> = report.per_session.iter().map(|s| s.metrics_row()).collect();
    let rendered = render_report(&rows, Some(&report.timeline));
    assert!(rendered.contains("environment/material"), "{rendered}");
    assert!(rendered.contains("Lab/"), "{rendered}");
    assert!(rendered.contains("Hall/"), "{rendered}");
    assert!(rendered.contains("total"), "{rendered}");
    assert!(rendered.contains("queue_peak"), "timeline join: {rendered}");
    // Synthesis is a pure function of its inputs.
    assert_eq!(rendered, render_report(&rows, Some(&report.timeline)));
}
