//! Campaign-level integration tests (ISSUE PR7 acceptance):
//!
//! - a scheduled fault ramp inside one cell reproduces the shape of the
//!   PR2 degradation curve (accuracy decays as the ramp climbs);
//! - per-cell artifacts are byte-identical across `WIMI_THREADS` settings
//!   and when a single cell is replayed in isolation from its seed;
//! - malformed campaign text fails with single-line errors, mirroring the
//!   obs-validate conventions.

use wimi_campaign::{expand, parse};
use wimi_experiments::campaign::{run_campaign, run_cell};

/// One cell, five materials, a fault ramp at measurement boundaries 4 and
/// 8. Trial counts are chosen so each segment holds 4 trials × 5
/// materials = 20 measurements.
const RAMP: &str = "campaign ramp\n\
                    seed 0xACC0\n\
                    fault_seed 0xFA17\n\
                    train 10\n\
                    test 12\n\
                    axis materials = PureWater+Milk+Honey+Oil+Soy\n\
                    axis packets = 20\n\
                    at 4 fault 0.2\n\
                    at 8 fault 0.5\n";

#[test]
fn scheduled_fault_ramp_reproduces_degradation_curve() {
    let c = parse(RAMP).expect("ramp campaign parses");
    let cells = expand(&c);
    assert_eq!(cells.len(), 1);
    let outcome = run_cell(&c, &cells[0]);

    assert_eq!(outcome.segments.len(), 3, "base + two ramp segments");
    let accs: Vec<f64> = outcome.segments.iter().map(|s| s.accuracy()).collect();
    assert!(
        accs[0] > 0.6,
        "clean segment should classify well, got {accs:?}"
    );
    // The PR2 degradation shape: accuracy decays as the ramp climbs, with
    // a small allowance for per-segment sampling noise.
    assert!(
        accs.windows(2).all(|w| w[1] <= w[0] + 0.05),
        "accuracy should decay along the ramp, got {accs:?}"
    );
    assert!(
        accs[2] < accs[0],
        "the hostile end of the ramp must cost accuracy, got {accs:?}"
    );
}

/// All `WIMI_THREADS` manipulation lives in this one test so no other
/// test in the binary races the environment. The determinism contract
/// makes the setting output-invariant anyway — that is what is asserted.
#[test]
fn cell_artifacts_are_byte_identical_across_thread_counts_and_replay() {
    const GRID: &str = "campaign grid\n\
                        seed 31337\n\
                        train 3\n\
                        test 3\n\
                        axis materials = PureWater+Honey, Milk+Oil\n\
                        axis intensity = 0, 0.4\n\
                        axis packets = 10\n\
                        at 1 dropout 0.5\n";
    let c = parse(GRID).expect("grid campaign parses");

    wimi::core::par::set_thread_override(Some(4));
    let parallel = run_campaign(&c);
    wimi::core::par::set_thread_override(Some(1));
    let serial = run_campaign(&c);
    wimi::core::par::set_thread_override(None);

    assert_eq!(parallel.cells.len(), 4);
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(
            a.artifact, b.artifact,
            "cell {} artifact differs between WIMI_THREADS=1 and 4",
            a.index
        );
    }

    // Replaying one cell in isolation from its recorded seed reproduces
    // the full run's artifact byte for byte.
    let cells = expand(&c);
    let replayed = run_cell(&c, &cells[2]);
    assert_eq!(replayed.seed, parallel.cells[2].seed);
    assert_eq!(replayed.artifact, parallel.cells[2].artifact);
}

#[test]
fn malformed_campaigns_fail_with_single_line_errors() {
    let cases = [
        "",
        "seed 4\n",
        "campaign x\nseed beef\n",
        "campaign x\naxis moon = 1\n",
        "campaign x\naxis materials = Vinegar\n",
        "campaign x\ntest 3\nat 9 fault 0.5\n",
        "campaign x\nat 0 explode 1\n",
        "campaign x\naxis intensity = 99\n",
    ];
    for text in cases {
        let err = parse(text).expect_err(text);
        let msg = err.to_string();
        assert!(!msg.contains('\n'), "multi-line error for {text:?}: {msg}");
        assert!(
            msg.starts_with("line ") && msg.contains(", col "),
            "error must carry a position: {msg}"
        );
    }
}
