//! Integration tests for the wimi-trace flight-recorder layer: tracing
//! must never change pipeline output, rendered traces must be
//! byte-identical for any worker thread count, a disabled sink must stay
//! perfectly silent, and a fault-injected run that exhausts its retry
//! policy must produce a valid dump whose last events localize the
//! failing stage and issue.

use std::sync::Arc;
use wimi::core::{WiMi, WiMiConfig};
use wimi::phy::csi::{CsiCapture, CsiSource};
use wimi::phy::fault::FaultPlan;
use wimi::phy::material::Liquid;
use wimi::phy::scenario::{Scenario, Simulator};
use wimi::trace::{artifact, TraceSink};
use wimi_experiments::harness::{run_identification, Material, RunOptions};
use wimi_experiments::trace::{
    render_artifact, trace_campaign, trace_campaign_with, write_failure_dump,
};
use wimi_experiments::Effort;

fn capture_pair(seed: u64, n: usize) -> (CsiCapture, CsiCapture) {
    let mut sim = Simulator::new(Scenario::builder().build(), seed);
    let base = sim.capture(n);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let tar = sim.capture(n);
    (base, tar)
}

#[test]
fn tracing_never_changes_pipeline_output() {
    let (base, tar) = capture_pair(23, 20);
    let plain = WiMi::new(WiMiConfig::default());
    let mut traced = WiMi::new(WiMiConfig::default());
    traced.set_trace(Some(TraceSink::enabled()));
    assert_eq!(
        plain.measure(&base, &tar),
        traced.measure(&base, &tar),
        "the trace sink must be a pure observer"
    );
    // Full runs too: same confusion matrix with and without a sink.
    let materials = vec![
        Material::catalog(Liquid::PureWater),
        Material::catalog(Liquid::Honey),
    ];
    let opts = |trace: Option<Arc<TraceSink>>| RunOptions {
        n_train: 3,
        n_test: 2,
        packets: 10,
        trace,
        ..RunOptions::default()
    };
    let r_plain = run_identification(&materials, &opts(None));
    let r_traced = run_identification(&materials, &opts(Some(TraceSink::enabled())));
    assert_eq!(r_plain.confusion, r_traced.confusion);
    assert_eq!(r_plain.dropped_trials, r_traced.dropped_trials);
    assert_eq!(
        r_plain.rejected_measurements,
        r_traced.rejected_measurements
    );
}

#[test]
fn disabled_sink_adds_zero_events_on_the_hot_path() {
    let sink = TraceSink::disabled();
    let materials = vec![
        Material::catalog(Liquid::PureWater),
        Material::catalog(Liquid::Oil),
    ];
    let opts = RunOptions {
        n_train: 3,
        n_test: 2,
        packets: 10,
        trace: Some(Arc::clone(&sink)),
        ..RunOptions::default()
    };
    let _ = run_identification(&materials, &opts);
    assert_eq!(sink.events_emitted(), 0, "disabled sink must stay silent");
    assert_eq!(sink.failures(), 0);
    let log = sink.flush();
    assert!(
        log.tasks.is_empty(),
        "disabled sink must allocate no streams"
    );
}

#[test]
fn rendered_traces_are_thread_count_invariant() {
    wimi::core::par::set_thread_override(Some(1));
    let serial = render_artifact(&trace_campaign(Effort::quick())).expect("valid artifact");
    wimi::core::par::set_thread_override(Some(4));
    let parallel = render_artifact(&trace_campaign(Effort::quick())).expect("valid artifact");
    wimi::core::par::set_thread_override(None);
    assert_eq!(
        serial, parallel,
        "traces must be byte-identical under any WIMI_THREADS"
    );
}

#[test]
fn faulted_run_dumps_a_valid_artifact_localizing_the_failure() {
    // A hostile fault plan makes some measurements exhaust the retry
    // policy, which is exactly when the dump-on-failure protocol fires.
    let campaign = trace_campaign_with(Effort::quick(), Some(FaultPlan::hostile(0xBAD)));
    assert!(
        campaign.sink.failures() > 0,
        "hostile faults must exhaust at least one retry policy"
    );
    let path = std::env::temp_dir().join(format!(
        "wimi-trace-faulted-dump-{}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_str().expect("utf-8 path");
    let bytes = write_failure_dump(&campaign, path_str)
        .expect("dump must succeed")
        .expect("failures must produce a dump");
    let text = std::fs::read_to_string(&path).expect("dump written");
    let _ = std::fs::remove_file(&path);
    assert_eq!(text.len(), bytes);

    // The dump is schema-valid and embeds the final obs snapshot.
    let parsed = artifact::parse_and_validate(&text).expect("dump validates");
    assert_eq!(parsed.header.failures, campaign.sink.failures());
    assert!(parsed.obs != wimi::obs::json::Json::Null);

    // The last events of some task stream name the exhausted retries and
    // the stage/issue that refused — the failure is localized, not just
    // counted.
    let summary = wimi::trace::analyze::summary(&text).expect("summary renders");
    assert!(
        summary.contains("failing tasks (stream tails):"),
        "summary must single out failing tasks:\n{summary}"
    );
    assert!(
        summary.contains("retries exhausted after"),
        "tails must show the exhausted policy:\n{summary}"
    );
    assert!(
        summary.contains("FAILED at "),
        "tails must name the failing stage and issue:\n{summary}"
    );
}
