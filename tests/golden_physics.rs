//! Golden-value physics tests: the propagation constants `(α, β)` of every
//! catalog liquid at the paper's 5.24 GHz carrier, pinned both against an
//! independent in-test recomputation of the Debye closed form and against
//! hard-coded golden numbers. The pins catch silent drift in the dielectric
//! catalog or in the `α/β` derivation that the behavioural tests (which
//! only check ordering and ranges) would let through.

use wimi::phy::material::{
    Dielectric, Liquid, PropagationConstants, SaltwaterConcentration, LIQUIDS,
};
use wimi::phy::units::Hertz;

/// The paper's carrier (Intel 5300, channel 48 band).
const F: Hertz = Hertz(5.24e9);

/// Independent recomputation of `(α, β)` from raw Debye parameters, written
/// out from the closed forms in the paper (Eq. 2–4) without reusing any
/// library helper beyond the shared physical constants:
///
/// - `ε_r(ω) = ε_∞ + (ε_s − ε_∞)/(1 + (ωτ)²)`  (real part)
/// - `ε_i(ω) = (ε_s − ε_∞)·ωτ/(1 + (ωτ)²) + σ/(ω·ε₀)`
/// - `α = (ω/c)·√(ε_r/2)·√(√(1 + tan²δ) − 1)`, `tan δ = ε_i/ε_r`
/// - `β = (ω/c)·√(ε_r/2)·√(√(1 + tan²δ) + 1)`
fn debye_alpha_beta(eps_s: f64, eps_inf: f64, tau_ps: f64, sigma: f64) -> (f64, f64) {
    const C: f64 = 299_792_458.0;
    const EPS0: f64 = 8.854_187_812_8e-12;
    let w = std::f64::consts::TAU * F.value();
    let wt = w * tau_ps * 1e-12;
    let denom = 1.0 + wt * wt;
    let er = eps_inf + (eps_s - eps_inf) / denom;
    let ei = (eps_s - eps_inf) * wt / denom + sigma / (w * EPS0);
    let tan_d = ei / er;
    let root = (1.0 + tan_d * tan_d).sqrt();
    let scale = (w / C) * (er / 2.0).sqrt();
    (scale * (root - 1.0).sqrt(), scale * (root + 1.0).sqrt())
}

fn assert_close(label: &str, what: &str, got: f64, want: f64, rel_tol: f64) {
    let rel = (got - want).abs() / want.abs().max(1e-12);
    assert!(
        rel < rel_tol,
        "{label} {what}: got {got:.6}, pinned {want:.6} (rel err {rel:.2e})"
    );
}

/// Golden `(α [Np/m], β [rad/m])` for each catalog liquid at 5.24 GHz,
/// computed from the catalog's Debye parameters via the closed form above.
const LIQUID_GOLDEN: [(Liquid, f64, f64); 10] = [
    (Liquid::Vinegar, 172.499718, 899.149381),
    (Liquid::Honey, 76.584117, 339.586225),
    (Liquid::Soy, 216.629093, 846.782956),
    (Liquid::Milk, 183.412801, 854.591579),
    (Liquid::Pepsi, 132.639818, 930.882666),
    (Liquid::Liquor, 217.404330, 558.007803),
    (Liquid::PureWater, 118.008885, 947.691539),
    (Liquid::Oil, 2.709257, 174.563384),
    (Liquid::Coke, 139.798692, 928.966813),
    (Liquid::SweetWater, 147.107718, 904.396276),
];

/// Golden values for the Fig. 16 saltwater grades (g NaCl / 100 ml).
const SALTWATER_GOLDEN: [(f64, f64, f64); 3] = [
    (1.2, 155.191311, 941.657474),
    (2.7, 201.896744, 936.188216),
    (5.9, 300.925006, 932.068706),
];

#[test]
fn liquid_constants_match_pinned_golden_values() {
    for (liquid, alpha, beta) in LIQUID_GOLDEN {
        let pc = liquid.propagation(F);
        assert_close(liquid.name(), "alpha", pc.alpha, alpha, 1e-6);
        assert_close(liquid.name(), "beta", pc.beta, beta, 1e-6);
    }
}

#[test]
fn liquid_constants_match_independent_debye_recomputation() {
    for liquid in LIQUIDS {
        let m = liquid.debye();
        let (alpha, beta) = debye_alpha_beta(
            m.eps_static,
            m.eps_infinity,
            m.relaxation.value() * 1e12,
            m.conductivity,
        );
        let pc = liquid.propagation(F);
        assert_close(liquid.name(), "alpha", pc.alpha, alpha, 1e-9);
        assert_close(liquid.name(), "beta", pc.beta, beta, 1e-9);
    }
}

#[test]
fn saltwater_constants_match_pinned_golden_values() {
    for (grams, alpha, beta) in SALTWATER_GOLDEN {
        let c = SaltwaterConcentration::new(grams);
        let pc = c.propagation(F);
        let label = format!("saltwater {grams} g/100ml");
        assert_close(&label, "alpha", pc.alpha, alpha, 1e-6);
        assert_close(&label, "beta", pc.beta, beta, 1e-6);
    }
}

#[test]
fn air_beta_is_the_free_space_wavenumber() {
    let air = PropagationConstants::air(F);
    assert_close("air", "beta", air.beta, 109.851708, 1e-6);
    assert!(air.alpha.abs() < 1e-9, "air alpha = {}", air.alpha);
}

#[test]
fn golden_table_covers_the_whole_catalog() {
    // If a liquid is ever added to (or removed from) the catalog, this
    // forces the golden table to follow.
    assert_eq!(LIQUID_GOLDEN.len(), LIQUIDS.len());
    for liquid in LIQUIDS {
        assert!(
            LIQUID_GOLDEN.iter().any(|(l, _, _)| *l == liquid),
            "{liquid} missing from the golden table"
        );
    }
}
