//! End-to-end integration tests: the full capture → preprocess → feature →
//! classify pipeline across all crates.

use rand::{Rng, SeedableRng};
use wimi::core::{FeatureError, MaterialDatabase, MaterialFeature, WiMi, WiMiConfig};
use wimi::phy::csi::CsiSource;
use wimi::phy::material::{ContainerMaterial, Liquid};
use wimi::phy::scenario::{Beaker, LiquidSpec, Scenario, Simulator};
use wimi::phy::units::Meters;
use wimi_experiments::harness::RetryPolicy;

fn measure(
    extractor: &WiMi,
    spec: &LiquidSpec,
    seed: u64,
    rng: &mut rand::rngs::StdRng,
    modify: impl Fn(&mut wimi::phy::scenario::ScenarioBuilder),
) -> Option<MaterialFeature> {
    // Bounded by the shared retry policy (its default packet budget allows
    // the same four attempts the old hard-coded loop made at 20 packets).
    for attempt in 0..RetryPolicy::default().allowed_attempts(20) as u64 {
        let mut builder = Scenario::builder();
        builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.5..0.5)));
        modify(&mut builder);
        let mut sim = Simulator::new(builder.build(), seed * 127 + attempt * 7919);
        let baseline = sim.capture(20);
        sim.set_liquid(Some(spec.clone()));
        let target = sim.capture(20);
        if let Ok(f) = extractor.extract_feature(&baseline, &target) {
            return Some(f);
        }
    }
    None
}

#[test]
fn three_distinct_liquids_classify_reliably() {
    let liquids = [Liquid::PureWater, Liquid::Honey, Liquid::Oil];
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let mut db = MaterialDatabase::new();
    for trial in 0..10u64 {
        for liquid in liquids {
            if let Some(f) = measure(&extractor, &liquid.into(), 100 + trial, &mut rng, |_| {}) {
                db.add(liquid.name(), f);
            }
        }
    }
    let mut wimi = WiMi::new(WiMiConfig::default());
    wimi.train(&db);

    let mut correct = 0usize;
    let mut total = 0usize;
    for trial in 0..8u64 {
        for liquid in liquids {
            if let Some(f) = measure(&extractor, &liquid.into(), 9_000 + trial, &mut rng, |_| {}) {
                total += 1;
                let label = wimi.classify_feature(&f).expect("trained");
                correct += (db.name(label) == liquid.name()) as usize;
            }
        }
    }
    assert!(total >= 18, "too many dropped measurements: {total}");
    let acc = correct as f64 / total as f64;
    assert!(acc >= 0.9, "easy-triplet accuracy only {acc}");
}

#[test]
fn feature_is_size_independent_across_beakers() {
    // The headline claim: the same liquid in different beakers yields the
    // same feature. Compare 14.3 cm against 11 cm beakers (the paper's
    // size 1 vs size 2); medians guard against the occasional wrong-wrap
    // accept that slips past the consistency gates.
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);

    let mut big = Vec::new();
    let mut small = Vec::new();
    for trial in 0..12u64 {
        if let Some(f) = measure(
            &extractor,
            &Liquid::Milk.into(),
            50 + trial,
            &mut rng,
            |_| {},
        ) {
            big.push(f.omega_mean());
        }
        if let Some(f) = measure(
            &extractor,
            &Liquid::Milk.into(),
            500 + trial,
            &mut rng,
            |b| {
                b.beaker(Beaker::paper_default().with_diameter(Meters::from_cm(11.0)));
            },
        ) {
            small.push(f.omega_mean());
        }
    }
    assert!(big.len() >= 6 && small.len() >= 6);
    let m_big = wimi::dsp::stats::median(&big);
    let m_small = wimi::dsp::stats::median(&small);
    let rel = (m_big - m_small).abs() / m_big;
    assert!(
        rel < 0.15,
        "size leaked into the feature: 14.3 cm → {m_big:.4}, 11 cm → {m_small:.4}"
    );
}

#[test]
fn metal_container_is_refused_not_misclassified() {
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut refused = 0usize;
    let total = 8usize;
    for trial in 0..total as u64 {
        let mut builder = Scenario::builder();
        builder.beaker(Beaker::paper_default().with_material(ContainerMaterial::Metal));
        builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.3..0.3)));
        let mut sim = Simulator::new(builder.build(), 40 + trial);
        let baseline = sim.capture(20);
        sim.set_liquid(Some(Liquid::PureWater.into()));
        let target = sim.capture(20);
        if extractor.extract_feature(&baseline, &target).is_err() {
            refused += 1;
        }
    }
    assert!(
        refused * 2 > total,
        "metal containers should usually be refused: {refused}/{total}"
    );
}

#[test]
fn untrained_identifier_reports_not_trained() {
    let wimi = WiMi::new(WiMiConfig::default());
    let mut sim = Simulator::new(Scenario::builder().build(), 7);
    let baseline = sim.capture(10);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let target = sim.capture(10);
    let err = wimi.identify(&baseline, &target).unwrap_err();
    assert_eq!(err.to_string(), "identifier has not been trained");
}

#[test]
fn empty_captures_are_rejected_cleanly() {
    let wimi = WiMi::new(WiMiConfig::default());
    let empty = wimi::phy::csi::CsiCapture::new();
    let err = wimi.extract_feature(&empty, &empty).unwrap_err();
    assert_eq!(err, FeatureError::EmptyCapture);
}

#[test]
fn flowing_liquid_degrades_or_refuses() {
    // Paper §VI: moving liquid breaks the measurement. The pipeline should
    // refuse far more often than for a static liquid.
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut refusals = [0usize; 2];
    for (i, flow) in [0.0f64, 0.9].iter().enumerate() {
        for trial in 0..8u64 {
            let mut builder = Scenario::builder();
            builder.flow_noise(*flow);
            builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.3..0.3)));
            let mut sim = Simulator::new(builder.build(), 60 + trial);
            let baseline = sim.capture(20);
            sim.set_liquid(Some(Liquid::Milk.into()));
            let target = sim.capture(20);
            if extractor.extract_feature(&baseline, &target).is_err() {
                refusals[i] += 1;
            }
        }
    }
    assert!(
        refusals[1] > refusals[0],
        "flow should cause more refusals: static {} vs flowing {}",
        refusals[0],
        refusals[1]
    );
}

#[test]
fn two_antenna_receiver_still_works() {
    // The Fixed-pair path serves two-antenna hardware.
    let config = WiMiConfig {
        pairs: wimi::core::PairSelection::Fixed(0, 1),
        ..WiMiConfig::default()
    };
    let extractor = WiMi::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut got = 0usize;
    for trial in 0..8u64 {
        if let Some(f) = measure(
            &extractor,
            &Liquid::Honey.into(),
            80 + trial,
            &mut rng,
            |b| {
                b.antennas(2, Meters::from_cm(2.9));
            },
        ) {
            assert!(f.omega_mean().is_finite());
            got += 1;
        }
    }
    assert!(got >= 4, "two-antenna extraction too fragile: {got}/8");
}
