//! WiMi facade crate: re-exports the full WiMi stack.
pub use wimi_campaign as campaign;
pub use wimi_core as core;
pub use wimi_dsp as dsp;
pub use wimi_metrics as metrics;
pub use wimi_ml as ml;
pub use wimi_obs as obs;
pub use wimi_phy as phy;
pub use wimi_serve as serve;
pub use wimi_trace as trace;
