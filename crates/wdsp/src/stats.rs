//! Descriptive and circular statistics.
//!
//! Phase data lives on the circle, so the WiMi pipeline needs circular
//! moments (mean direction, circular variance) alongside ordinary linear
//! statistics; both live here.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n − 1`). Returns `NaN` for slices with
/// fewer than two elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (interpolated for even lengths). Returns `NaN` for an empty
/// slice. `O(n log n)`.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median computed through a caller-owned scratch buffer — identical to
/// [`median`] but with no allocation once `buf` has grown to the series
/// length.
// wlint: allow(panic-reach) — n/2 and n/2-1 are in bounds: the slice is non-empty and the n%2 branch guards the even case
pub fn median_in(xs: &[f64], buf: &mut Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    buf.clear();
    buf.extend_from_slice(xs);
    buf.sort_by(f64::total_cmp);
    let n = buf.len();
    if n % 2 == 1 {
        buf[n / 2]
    } else {
        (buf[n / 2 - 1] + buf[n / 2]) / 2.0
    }
}

/// Median absolute deviation (unscaled).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let med = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&dev)
}

/// Robust standard-deviation estimate from the MAD of `xs`:
/// `σ̂ = MAD / 0.6745` (consistent for Gaussian data). This is the robust
/// median estimator the paper's wavelet denoiser uses for its noise
/// threshold (citing Xu et al. 1994).
pub fn robust_std(xs: &[f64]) -> f64 {
    mad(xs) / 0.6745
}

/// [`robust_std`] through a caller-owned scratch buffer. The median only
/// depends on the sorted order, so reusing one buffer for both the series
/// copy and the absolute deviations returns the same bits as the
/// allocating version.
pub fn robust_std_in(xs: &[f64], buf: &mut Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let med = median_in(xs, buf);
    buf.clear();
    buf.extend(xs.iter().map(|x| (x - med).abs()));
    buf.sort_by(f64::total_cmp);
    let n = buf.len();
    let mad = if n % 2 == 1 {
        buf[n / 2]
    } else {
        (buf[n / 2 - 1] + buf[n / 2]) / 2.0
    };
    mad / 0.6745
}

/// Linear Pearson correlation of two equal-length series.
///
/// Returns 0 when either series is constant (or so nearly constant that
/// the product of squared deviations underflows): a constant series
/// carries no linear association, and the denominator would otherwise
/// divide by zero and return NaN.
///
/// # Panics
///
/// Panics if lengths differ or are below 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    assert!(xs.len() >= 2, "correlation needs at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx2 += (x - mx) * (x - mx);
        dy2 += (y - my) * (y - my);
    }
    if dx2 * dy2 <= 0.0 {
        return 0.0;
    }
    num / (dx2 * dy2).sqrt()
}

/// Wraps an angle to `(−π, π]`.
pub fn wrap_to_pi(theta: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut t = theta % tau;
    if t > std::f64::consts::PI {
        t -= tau;
    } else if t <= -std::f64::consts::PI {
        t += tau;
    }
    t
}

/// Mean resultant length `R ∈ [0, 1]` of a set of angles: 1 for perfectly
/// aligned angles, ~0 for uniformly spread ones.
pub fn circular_resultant(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return f64::NAN;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    (s * s + c * c).sqrt() / angles.len() as f64
}

/// Circular mean direction in `(−π, π]`.
pub fn circular_mean(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return f64::NAN;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    s.atan2(c)
}

/// Circular variance `1 − R ∈ [0, 1]`.
pub fn circular_variance(angles: &[f64]) -> f64 {
    1.0 - circular_resultant(angles)
}

/// Circular standard deviation `√(−2·ln R)` (radians). Returns `NaN` for
/// an empty slice.
///
/// The resultant is clamped to `[1e-300, 1.0]`: float rounding can push
/// `R` infinitesimally above 1 for perfectly aligned angles, which would
/// make `−2·ln R` negative and the square root NaN.
pub fn circular_std(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return f64::NAN;
    }
    let r = circular_resultant(angles).clamp(1e-300, 1.0);
    (-2.0 * r.ln()).sqrt()
}

/// Angular spread in degrees: the circular std dev expressed in degrees,
/// the unit the paper quotes ("around 18 degrees", Fig. 12).
pub fn angular_spread_deg(angles: &[f64]) -> f64 {
    circular_std(angles).to_degrees()
}

/// Robust circular mean: computes the circular mean, drops the
/// `trim_fraction` of samples most deviant from it (impulse-noise hits),
/// and recomputes on the survivors.
///
/// # Panics
///
/// Panics if `trim_fraction` is not within `[0, 0.5]`.
pub fn trimmed_circular_mean(angles: &[f64], trim_fraction: f64) -> f64 {
    assert!(
        (0.0..=0.5).contains(&trim_fraction),
        "trim fraction must be within [0, 0.5]"
    );
    if angles.is_empty() {
        return f64::NAN;
    }
    let first = circular_mean(angles);
    let n_drop = ((angles.len() as f64) * trim_fraction).floor() as usize;
    if n_drop == 0 || angles.len() - n_drop < 2 {
        return first;
    }
    let mut dev: Vec<(f64, f64)> = angles
        .iter()
        .map(|&a| (wrap_to_pi(a - first).abs(), a))
        .collect();
    dev.sort_by(|x, y| x.0.total_cmp(&y.0));
    let kept: Vec<f64> = dev[..angles.len() - n_drop]
        .iter()
        .map(|&(_, a)| a)
        .collect();
    circular_mean(&kept)
}

/// Variance of phase readings computed the paper's way (Eq. 7): linear
/// variance of the angle series after referencing each angle to the
/// circular mean (so wrap-around does not inflate it).
pub fn phase_variance(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return f64::NAN;
    }
    let m = circular_mean(angles);
    let centered: Vec<f64> = angles.iter().map(|&a| wrap_to_pi(a - m)).collect();
    centered.iter().map(|d| d * d).sum::<f64>() / centered.len() as f64
}

/// Computes [`trimmed_circular_mean`] and [`phase_variance`] of one angle
/// series in a single pass over the shared circular mean, through a
/// caller-owned deviation scratch buffer.
///
/// Both statistics reference every angle to `circular_mean(angles)`;
/// computing them together evaluates that mean (and the per-angle
/// `sin`/`cos`) once instead of twice, returning exactly the bits the two
/// separate calls would.
///
/// # Panics
///
/// Panics if `trim_fraction` is not within `[0, 0.5]`.
pub fn phase_summary(angles: &[f64], trim_fraction: f64, dev: &mut Vec<(f64, f64)>) -> (f64, f64) {
    assert!(
        (0.0..=0.5).contains(&trim_fraction),
        "trim fraction must be within [0, 0.5]"
    );
    if angles.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let first = circular_mean(angles);
    let variance = angles
        .iter()
        .map(|&a| {
            let d = wrap_to_pi(a - first);
            d * d
        })
        .sum::<f64>()
        / angles.len() as f64;
    let n_drop = ((angles.len() as f64) * trim_fraction).floor() as usize;
    if n_drop == 0 || angles.len() - n_drop < 2 {
        return (first, variance);
    }
    dev.clear();
    dev.extend(angles.iter().map(|&a| (wrap_to_pi(a - first).abs(), a)));
    dev.sort_by(|x, y| x.0.total_cmp(&y.0));
    let (s, c) = dev[..angles.len() - n_drop]
        .iter()
        .fold((0.0, 0.0), |(s, c), &(_, a)| (s + a.sin(), c + a.cos()));
    (s.atan2(c), variance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((sample_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(mad(&[]).is_nan());
        assert!(circular_mean(&[]).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let dirty = [1.0, 1.1, 0.9, 1.05, 100.0];
        assert!((mad(&clean) - mad(&dirty)).abs() < 0.2);
    }

    #[test]
    fn robust_std_matches_gaussian_scale() {
        // Approximate Gaussian samples via the central limit theorem (sum
        // of 12 uniforms, variance 1): MAD/0.6745 must track the std dev.
        let mut state: u64 = 12345;
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let xs: Vec<f64> = (0..2000)
            .map(|_| (0..12).map(|_| uniform()).sum::<f64>() - 6.0)
            .collect();
        let ratio = robust_std(&xs) / std_dev(&xs);
        assert!(ratio > 0.9 && ratio < 1.1, "ratio = {ratio}");
    }

    #[test]
    fn pearson_limits() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_rejects_mismatched() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn pearson_constant_series_is_zero_not_nan() {
        // Regression: a constant series made the denominator zero and the
        // correlation NaN.
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[-2.5, -2.5, -2.5]), 0.0);
        assert_eq!(pearson(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        // Near-constant series whose squared deviations underflow the
        // product to zero must take the guard, not divide by 0.
        let tiny_x = [0.0, 1e-200];
        let tiny_y = [0.0, 1e-200];
        assert!(pearson(&tiny_x, &tiny_y).is_finite());
    }

    #[test]
    fn circular_std_perfect_alignment_is_zero_not_nan() {
        // Regression: rounding could push the resultant above 1, making
        // −2·ln R negative and the square root NaN.
        let aligned = [1.234567; 500];
        let s = circular_std(&aligned);
        assert!(s.is_finite() && (0.0..1e-6).contains(&s), "std = {s}");
        assert!(circular_std(&[]).is_nan());
    }

    #[test]
    fn wrapping() {
        assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(0.5) - 0.5).abs() < 1e-15);
        assert!(wrap_to_pi(PI + 0.1) < 0.0);
    }

    #[test]
    fn circular_stats_on_concentrated_angles() {
        let angles = [0.1, 0.12, 0.09, 0.11];
        assert!(circular_resultant(&angles) > 0.999);
        assert!((circular_mean(&angles) - 0.105).abs() < 0.01);
        assert!(circular_variance(&angles) < 0.001);
        assert!(angular_spread_deg(&angles) < 2.0);
    }

    #[test]
    fn circular_stats_on_uniform_angles() {
        let angles: Vec<f64> = (0..36).map(|k| k as f64 * PI / 18.0).collect();
        assert!(circular_resultant(&angles) < 1e-10);
        assert!(circular_variance(&angles) > 0.999);
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        // Angles clustered around ±π: linear mean would say ~0, circular
        // mean must say ~π.
        let angles = [PI - 0.05, -PI + 0.05, PI - 0.02, -PI + 0.02];
        let m = circular_mean(&angles);
        assert!(m.abs() > 3.0, "mean = {m}");
    }

    #[test]
    fn phase_variance_is_wrap_safe() {
        let wrapped = [PI - 0.01, -PI + 0.01, PI - 0.02, -PI + 0.02];
        // Near-identical directions → tiny variance despite ±π values.
        assert!(phase_variance(&wrapped) < 1e-3);
        let spread = [0.0, 1.0, 2.0, 3.0];
        assert!(phase_variance(&spread) > 0.5);
    }

    #[test]
    fn scratch_variants_match_allocating_versions_bitwise() {
        let xs: Vec<f64> = (0..97).map(|i| ((i as f64) * 1.7).sin() * 3.0).collect();
        let mut buf = Vec::new();
        assert_eq!(median_in(&xs, &mut buf).to_bits(), median(&xs).to_bits());
        assert_eq!(
            robust_std_in(&xs, &mut buf).to_bits(),
            robust_std(&xs).to_bits()
        );
        assert_eq!(
            median_in(&xs[..96], &mut buf).to_bits(),
            median(&xs[..96]).to_bits()
        );
        assert!(median_in(&[], &mut buf).is_nan());
        assert!(robust_std_in(&[], &mut buf).is_nan());
    }

    #[test]
    fn phase_summary_matches_separate_calls_bitwise() {
        let mut dev = Vec::new();
        for n in [0usize, 1, 3, 4, 10, 57] {
            let angles: Vec<f64> = (0..n).map(|i| wrap_to_pi((i as f64) * 2.9)).collect();
            for trim in [0.0, 0.2, 0.5] {
                let (m, v) = phase_summary(&angles, trim, &mut dev);
                let m_ref = trimmed_circular_mean(&angles, trim);
                let v_ref = phase_variance(&angles);
                assert_eq!(m.to_bits(), m_ref.to_bits(), "mean n={n} trim={trim}");
                assert_eq!(v.to_bits(), v_ref.to_bits(), "var n={n} trim={trim}");
            }
        }
    }

    #[test]
    fn angular_spread_deg_for_18_degree_cluster() {
        // A cluster with ~18° spread, as the paper's Fig. 12 reports after
        // phase differencing.
        let sigma = 18f64.to_radians();
        let angles: Vec<f64> = (0..200).map(|i| sigma * ((i as f64 * 0.7).sin())).collect();
        let spread = angular_spread_deg(&angles);
        assert!(spread > 8.0 && spread < 25.0, "spread = {spread}");
    }
}
