//! Spatially-selective wavelet-correlation denoising.
//!
//! Implements the denoiser of the paper's §III-C, which follows the
//! wavelet-domain correlation filter of Xu et al. (1994): useful signal is
//! correlated across adjacent wavelet scales while noise is weakly
//! correlated, so multiplying adjacent-scale coefficients sharpens signal
//! locations. Points where the (power-normalised) correlation dominates
//! the coefficient itself are extracted as signal; iterating until the
//! residual band power falls to the noise floor (estimated by the robust
//! median rule) leaves only noise behind, which is discarded before
//! inverse transform.

use super::{analyze_into, swt_decompose, swt_reconstruct, synthesize_into, Wavelet};
use crate::stats::{robust_std, robust_std_in};

/// Configuration of the correlation denoiser.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationDenoiser {
    /// Wavelet family (paper default: Daubechies).
    pub wavelet: Wavelet,
    /// Decomposition levels (the last level's details are treated as
    /// signal-dominated and kept).
    pub levels: usize,
    /// Maximum extraction iterations per scale.
    pub max_iterations: usize,
    /// Multiplier on the robust noise-power estimate that serves as the
    /// stopping threshold per scale.
    pub threshold_scale: f64,
}

impl Default for CorrelationDenoiser {
    fn default() -> Self {
        CorrelationDenoiser {
            wavelet: Wavelet::Db4,
            levels: 4,
            max_iterations: 24,
            threshold_scale: 1.0,
        }
    }
}

/// Reusable work area for [`CorrelationDenoiser::denoise_into`]. Holds the
/// decomposition bands, filter taps and temporaries so a steady-state
/// denoise call performs no heap allocation once the buffers have grown to
/// the working size.
#[derive(Debug, Clone, Default)]
pub struct DenoiseScratch {
    details: Vec<Vec<f64>>,
    approx: Vec<f64>,
    tmp: Vec<f64>,
    corr: Vec<f64>,
    sort: Vec<f64>,
    highpass: Vec<f64>,
}

impl CorrelationDenoiser {
    /// Creates a denoiser with a given wavelet and level count, default
    /// iteration/threshold settings.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` (the method needs adjacent scales).
    pub fn new(wavelet: Wavelet, levels: usize) -> Self {
        assert!(levels >= 2, "correlation denoising needs at least 2 levels");
        CorrelationDenoiser {
            wavelet,
            levels,
            ..CorrelationDenoiser::default()
        }
    }

    /// Denoises a signal. Signals shorter than 8 samples are returned
    /// unchanged (too short to estimate scale correlation).
    ///
    /// The decomposition depth is clamped so the coarsest level's
    /// upsampled filter still fits the signal — deeper levels would wrap
    /// circularly several times and smear energy instead of separating it.
    pub fn denoise(&self, xs: &[f64]) -> Vec<f64> {
        let mut scratch = DenoiseScratch::default();
        let mut out = Vec::new();
        self.denoise_into(xs, &mut scratch, &mut out);
        out
    }

    /// [`Self::denoise`] through caller-owned buffers: the cleaned series
    /// is written into `out` and every intermediate band lives in
    /// `scratch`. Returns the same bits as the allocating version with no
    /// steady-state heap traffic.
    // wlint: hot
    // wlint: allow(panic-reach) — detail-band indices are bounded by the resize_with(levels) above them; downstream kernels assert their length invariants
    pub fn denoise_into(&self, xs: &[f64], scratch: &mut DenoiseScratch, out: &mut Vec<f64>) {
        out.clear();
        if xs.len() < 8 {
            out.extend_from_slice(xs);
            return;
        }
        let taps = self.wavelet.lowpass().len();
        let mut max_levels = 1usize;
        while (taps - 1) * (1usize << max_levels) < xs.len() {
            max_levels += 1;
        }
        let levels = self.levels.min(max_levels);
        if levels < 2 {
            // Cannot form an adjacent-scale correlation; leave untouched.
            out.extend_from_slice(xs);
            return;
        }
        let h = self.wavelet.lowpass();
        self.wavelet.highpass_into(&mut scratch.highpass);
        if scratch.details.len() < levels {
            scratch.details.resize_with(levels, Vec::new);
        }
        scratch.approx.clear();
        scratch.approx.extend_from_slice(xs);
        for l in 0..levels {
            let stride = 1usize << l;
            analyze_into(
                &scratch.approx,
                &scratch.highpass,
                stride,
                &mut scratch.details[l],
            );
            analyze_into(&scratch.approx, h, stride, &mut scratch.tmp);
            std::mem::swap(&mut scratch.approx, &mut scratch.tmp);
        }

        // Robust per-coefficient noise σ from the finest detail band
        // (Donoho's median rule, which the paper cites via Xu et al.).
        let sigma = robust_std_in(&scratch.details[0], &mut scratch.sort);
        let n = xs.len() as f64;

        for l in 0..levels - 1 {
            let (fine, coarse) = scratch.details.split_at_mut(l + 1);
            self.suppress_noise_at_scale_in(
                &mut fine[l],
                &coarse[0],
                self.threshold_scale * n * sigma * sigma,
                &mut scratch.corr,
            );
        }
        // Coarsest detail band: dominated by signal; keep as-is. Inverse
        // transform level by level: `out` carries the low-pass branch,
        // `tmp` the detail branch.
        for l in (0..levels).rev() {
            let stride = 1usize << l;
            synthesize_into(&scratch.approx, h, stride, out);
            synthesize_into(
                &scratch.details[l],
                &scratch.highpass,
                stride,
                &mut scratch.tmp,
            );
            scratch.approx.clear();
            scratch
                .approx
                .extend(out.iter().zip(&scratch.tmp).map(|(a, d)| 0.5 * (a + d)));
        }
        out.clear();
        out.extend_from_slice(&scratch.approx);
    }

    /// Iterative noise suppression on one detail band, using the adjacent
    /// coarser band as the correlation reference (paper Eq. 11–13).
    ///
    /// Per iteration: `Corr = W_l ⊙ W_{l+1}` is power-normalised to
    /// `NCorr = Corr·√(PW/PCorr)`; a coefficient whose own magnitude
    /// *dominates* its normalised correlation (`|w| ≥ |NCorr|`) is not
    /// confirmed by the coarser scale — it is noise (e.g. an impulse
    /// concentrated at fine scale) and is zeroed. Coefficients the coarser
    /// scale confirms survive. Iterate until the band power `PW` falls to
    /// the robust noise-power threshold.
    fn suppress_noise_at_scale_in(
        &self,
        w: &mut [f64],
        coarser: &[f64],
        noise_power_threshold: f64,
        corr: &mut Vec<f64>,
    ) {
        for _ in 0..self.max_iterations {
            let pw: f64 = w.iter().map(|v| v * v).sum();
            if pw <= noise_power_threshold {
                break;
            }
            corr.clear();
            corr.extend(w.iter().zip(coarser.iter()).map(|(a, b)| a * b));
            let pcorr: f64 = corr.iter().map(|c| c * c).sum();
            // A sum of squares is non-negative; non-positive means nothing
            // correlates.
            if pcorr <= 0.0 {
                // Nothing correlates with the coarser scale: all noise.
                w.iter_mut().for_each(|v| *v = 0.0);
                break;
            }
            let norm = (pw / pcorr).sqrt();
            let mut zeroed = 0usize;
            for m in 0..w.len() {
                if w[m].abs() > 0.0 && w[m].abs() >= (corr[m] * norm).abs() {
                    w[m] = 0.0;
                    zeroed += 1;
                }
            }
            if zeroed == 0 {
                break;
            }
        }
    }
}

/// Denoises with the paper's correlation method using default settings.
pub fn correlation_denoise(xs: &[f64]) -> Vec<f64> {
    CorrelationDenoiser::default().denoise(xs)
}

/// Baseline comparison: universal soft-threshold wavelet denoising
/// (Donoho–Johnstone): threshold `σ̂·√(2·ln n)` applied to all detail
/// bands.
pub fn soft_threshold_denoise(xs: &[f64], wavelet: Wavelet, levels: usize) -> Vec<f64> {
    if xs.len() < 8 {
        return xs.to_vec();
    }
    let mut dec = swt_decompose(xs, wavelet, levels);
    let sigma = robust_std(&dec.details[0]);
    let thr = sigma * (2.0 * (xs.len() as f64).ln()).sqrt();
    for d in &mut dec.details {
        for w in d.iter_mut() {
            let mag = (w.abs() - thr).max(0.0);
            *w = w.signum() * mag;
        }
    }
    swt_reconstruct(&dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::rms;

    /// Deterministic pseudo-noise (uniform-ish) without pulling in `rand`.
    fn pseudo_noise(n: usize, seed: u64, amp: f64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                amp * ((state as f64 / u64::MAX as f64) - 0.5) * 2.0
            })
            .collect()
    }

    fn clean_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                1.0 + 0.3 * (2.0 * std::f64::consts::PI * 2.0 * t).sin()
            })
            .collect()
    }

    fn add_impulses(xs: &mut [f64], seed: u64, count: usize, magnitude: f64) {
        let mut state = seed | 1;
        for _ in 0..count {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let idx = (state as usize) % xs.len();
            let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
            xs[idx] += sign * magnitude;
        }
    }

    fn error_rms(a: &[f64], b: &[f64]) -> f64 {
        let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        rms(&diff)
    }

    /// The pre-scratch denoiser, kept verbatim as the bitwise reference
    /// for the arena-based rewrite.
    fn denoise_reference(cfg: &CorrelationDenoiser, xs: &[f64]) -> Vec<f64> {
        if xs.len() < 8 {
            return xs.to_vec();
        }
        let taps = cfg.wavelet.lowpass().len();
        let mut max_levels = 1usize;
        while (taps - 1) * (1usize << max_levels) < xs.len() {
            max_levels += 1;
        }
        let levels = cfg.levels.min(max_levels);
        if levels < 2 {
            return xs.to_vec();
        }
        let mut dec = swt_decompose(xs, cfg.wavelet, levels);
        let sigma = robust_std(&dec.details[0]);
        let n = xs.len() as f64;
        for l in 0..levels - 1 {
            let mut w = dec.details[l].clone();
            let threshold = cfg.threshold_scale * n * sigma * sigma;
            for _ in 0..cfg.max_iterations {
                let pw: f64 = w.iter().map(|v| v * v).sum();
                if pw <= threshold {
                    break;
                }
                let corr: Vec<f64> = w
                    .iter()
                    .zip(&dec.details[l + 1])
                    .map(|(a, b)| a * b)
                    .collect();
                let pcorr: f64 = corr.iter().map(|c| c * c).sum();
                if pcorr <= 0.0 {
                    w.iter_mut().for_each(|v| *v = 0.0);
                    break;
                }
                let norm = (pw / pcorr).sqrt();
                let mut zeroed = 0usize;
                for m in 0..w.len() {
                    if w[m].abs() > 0.0 && w[m].abs() >= (corr[m] * norm).abs() {
                        w[m] = 0.0;
                        zeroed += 1;
                    }
                }
                if zeroed == 0 {
                    break;
                }
            }
            dec.details[l] = w;
        }
        swt_reconstruct(&dec)
    }

    #[test]
    fn scratch_denoiser_matches_reference_bitwise_across_reuse() {
        let mut scratch = DenoiseScratch::default();
        let mut out = Vec::new();
        for cfg in [
            CorrelationDenoiser::default(),
            CorrelationDenoiser::new(Wavelet::Haar, 3),
            CorrelationDenoiser::new(Wavelet::Sym4, 2),
        ] {
            // Reusing one scratch across lengths and seeds must not leak
            // state between calls.
            for (n, seed) in [(5usize, 1u64), (64, 2), (256, 3), (33, 4), (128, 5)] {
                let mut noisy = clean_signal(n.max(1));
                noisy
                    .iter_mut()
                    .zip(pseudo_noise(n.max(1), seed, 0.05))
                    .for_each(|(x, e)| *x += e);
                add_impulses(&mut noisy, seed + 17, n / 16, 0.5);
                cfg.denoise_into(&noisy, &mut scratch, &mut out);
                let reference = denoise_reference(&cfg, &noisy);
                assert_eq!(out.len(), reference.len(), "{} n={n}", cfg.wavelet);
                for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} n={n} i={i}", cfg.wavelet);
                }
            }
        }
    }

    #[test]
    fn removes_impulse_noise() {
        let clean = clean_signal(256);
        let mut noisy = clean.clone();
        noisy
            .iter_mut()
            .zip(pseudo_noise(256, 7, 0.02))
            .for_each(|(x, n)| *x += n);
        add_impulses(&mut noisy, 99, 12, 0.5);

        let denoised = correlation_denoise(&noisy);
        let before = error_rms(&noisy, &clean);
        let after = error_rms(&denoised, &clean);
        assert!(
            after < 0.5 * before,
            "denoise must cut error at least 2x: before {before}, after {after}"
        );
    }

    #[test]
    fn beats_or_matches_soft_threshold_on_impulses() {
        let clean = clean_signal(256);
        let mut noisy = clean.clone();
        add_impulses(&mut noisy, 3, 16, 0.6);
        let corr = correlation_denoise(&noisy);
        let soft = soft_threshold_denoise(&noisy, Wavelet::Db4, 4);
        let e_corr = error_rms(&corr, &clean);
        let e_soft = error_rms(&soft, &clean);
        assert!(
            e_corr < 1.3 * e_soft,
            "correlation ({e_corr}) should be competitive with soft threshold ({e_soft})"
        );
    }

    #[test]
    fn preserves_clean_signal() {
        let clean = clean_signal(128);
        let out = correlation_denoise(&clean);
        assert!(
            error_rms(&out, &clean) < 0.05,
            "clean signal distorted by {}",
            error_rms(&out, &clean)
        );
    }

    #[test]
    fn preserves_sharp_signal_edges_better_than_heavy_smoothing() {
        // A step edge is legitimate signal: the correlation method should
        // keep it (scale-correlated) while removing isolated impulses.
        let mut signal: Vec<f64> = vec![1.0; 128];
        signal[64..].iter_mut().for_each(|x| *x = 2.0);
        let mut noisy = signal.clone();
        add_impulses(&mut noisy, 5, 8, 0.5);
        let out = correlation_denoise(&noisy);
        // The edge must survive: difference across it stays large.
        let edge = out[70] - out[58];
        assert!(edge > 0.6, "edge flattened to {edge}");
    }

    #[test]
    fn short_signals_pass_through() {
        let xs = vec![1.0, 2.0, 3.0];
        assert_eq!(correlation_denoise(&xs), xs);
        assert_eq!(soft_threshold_denoise(&xs, Wavelet::Haar, 2), xs);
    }

    #[test]
    fn custom_settings_work() {
        let d = CorrelationDenoiser::new(Wavelet::Haar, 3);
        let clean = clean_signal(64);
        let mut noisy = clean.clone();
        add_impulses(&mut noisy, 11, 5, 0.4);
        let out = d.denoise(&noisy);
        assert!(error_rms(&out, &clean) < error_rms(&noisy, &clean));
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn rejects_single_level() {
        let _ = CorrelationDenoiser::new(Wavelet::Haar, 1);
    }

    #[test]
    fn soft_threshold_reduces_broadband_noise() {
        let clean = clean_signal(256);
        let mut noisy = clean.clone();
        noisy
            .iter_mut()
            .zip(pseudo_noise(256, 21, 0.15))
            .for_each(|(x, n)| *x += n);
        let out = soft_threshold_denoise(&noisy, Wavelet::Db4, 4);
        assert!(error_rms(&out, &clean) < error_rms(&noisy, &clean));
    }
}
