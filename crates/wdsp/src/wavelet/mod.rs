//! Stationary (undecimated) wavelet transform.
//!
//! The paper's amplitude denoiser (§III-C) multiplies wavelet coefficients
//! of *adjacent scales* pointwise, which requires coefficients of every
//! scale to be aligned sample-by-sample with the input — exactly what the
//! undecimated (à trous / stationary) transform provides. For orthonormal
//! filter pairs the transform implemented here is perfectly invertible for
//! any signal length (circular extension).

pub mod denoise;

pub use denoise::{
    correlation_denoise, soft_threshold_denoise, CorrelationDenoiser, DenoiseScratch,
};

/// Orthonormal wavelet families available for the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Wavelet {
    /// Haar (2 taps): sharpest in time, used for impulse localisation.
    Haar,
    /// Daubechies-2 (4 taps).
    #[default]
    Db2,
    /// Daubechies-4 (8 taps): the default of the WiMi denoiser.
    Db4,
    /// Symlet-4 (8 taps): near-symmetric variant.
    Sym4,
}

impl Wavelet {
    /// All families, for ablation sweeps.
    pub const ALL: [Wavelet; 4] = [Wavelet::Haar, Wavelet::Db2, Wavelet::Db4, Wavelet::Sym4];

    /// Orthonormal low-pass decomposition filter `h` (`Σh = √2`,
    /// `‖h‖ = 1`).
    pub fn lowpass(self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &[
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ],
            Wavelet::Db2 => &[
                0.482_962_913_144_690_25,
                0.836_516_303_737_469,
                0.224_143_868_041_857_35,
                -0.129_409_522_550_921_45,
            ],
            Wavelet::Db4 => &[
                0.230_377_813_308_855_23,
                0.714_846_570_552_541_5,
                0.630_880_767_929_590_4,
                -0.027_983_769_416_983_85,
                -0.187_034_811_718_881_14,
                0.030_841_381_835_986_965,
                0.032_883_011_666_982_945,
                -0.010_597_401_784_997_278,
            ],
            Wavelet::Sym4 => &[
                -0.075_765_714_789_273_33,
                -0.029_635_527_645_998_51,
                0.497_618_667_632_015_45,
                0.803_738_751_805_916_1,
                0.297_857_795_605_277_36,
                -0.099_219_543_576_847_22,
                -0.012_603_967_262_037_833,
                0.032_223_100_604_042_7,
            ],
        }
    }

    /// Quadrature-mirror high-pass filter `g[k] = (−1)^k · h[L−1−k]`.
    pub fn highpass(self) -> Vec<f64> {
        let mut out = Vec::new();
        self.highpass_into(&mut out);
        out
    }

    /// [`Self::highpass`] written into a caller-owned buffer.
    pub fn highpass_into(self, out: &mut Vec<f64>) {
        let h = self.lowpass();
        let l = h.len();
        out.clear();
        out.extend((0..l).map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * h[l - 1 - k]
        }));
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Wavelet::Haar => "haar",
            Wavelet::Db2 => "db2",
            Wavelet::Db4 => "db4",
            Wavelet::Sym4 => "sym4",
        }
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A multilevel stationary wavelet decomposition.
///
/// `details[l]` holds the scale-`l+1` detail coefficients (finest first);
/// every band has the same length as the input.
#[derive(Debug, Clone, PartialEq)]
pub struct SwtDecomposition {
    /// Detail bands, finest scale first; each has the input's length.
    pub details: Vec<Vec<f64>>,
    /// Approximation band at the coarsest scale.
    pub approx: Vec<f64>,
    wavelet: Wavelet,
}

impl SwtDecomposition {
    /// The wavelet family used.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Signal length.
    pub fn len(&self) -> usize {
        self.approx.len()
    }

    /// Returns `true` if the decomposition is of an empty signal.
    pub fn is_empty(&self) -> bool {
        self.approx.is_empty()
    }

    /// Energy `‖W_l‖²` of the detail band at `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or exceeds [`Self::levels`].
    pub fn detail_power(&self, level: usize) -> f64 {
        assert!(
            (1..=self.levels()).contains(&level),
            "level must be in 1..={}",
            self.levels()
        );
        self.details[level - 1].iter().map(|w| w * w).sum()
    }
}

/// Adds `hk · rot(x, off)` into `y`, where `rot` rotates `x` left by
/// `off`: `y[i] += hk · x[(i + off) mod N]`.
///
/// The modular index walk is split at the wrap point into two contiguous
/// slice passes so the compiler can vectorise both. Because the tap loop
/// in [`analyze_into`]/[`synthesize_into`] is *outside* this call, every
/// output element still accumulates its taps in the exact order the naive
/// `Σ_k h[k]·x[…]` sum would — outputs are bitwise identical.
// wlint: allow(panic-reach) — split = n - off is valid: both callers reduce off mod x.len() first
#[inline]
fn accumulate_rotated(y: &mut [f64], x: &[f64], hk: f64, off: usize) {
    let n = x.len();
    let split = n - off;
    for (yi, &xi) in y[..split].iter_mut().zip(&x[off..]) {
        *yi += hk * xi;
    }
    for (yi, &xi) in y[split..].iter_mut().zip(&x[..off]) {
        *yi += hk * xi;
    }
}

/// Circular correlation of `x` with filter `h` upsampled by `stride`:
/// `y[n] = Σ_k h[k]·x[(n + k·stride) mod N]`, written into `out`.
// wlint: hot
pub(crate) fn analyze_into(x: &[f64], h: &[f64], stride: usize, out: &mut Vec<f64>) {
    let n = x.len();
    out.clear();
    out.resize(n, 0.0);
    for (k, &hk) in h.iter().enumerate() {
        accumulate_rotated(out, x, hk, (k * stride) % n);
    }
}

/// Adjoint of [`analyze_into`]: circular convolution
/// `y[n] = Σ_k h[k]·x[(n − k·stride) mod N]`, written into `out`.
// wlint: hot
pub(crate) fn synthesize_into(x: &[f64], h: &[f64], stride: usize, out: &mut Vec<f64>) {
    let n = x.len();
    out.clear();
    out.resize(n, 0.0);
    for (k, &hk) in h.iter().enumerate() {
        let off = (n - (k * stride) % n) % n;
        accumulate_rotated(out, x, hk, off);
    }
}

fn analyze(x: &[f64], h: &[f64], stride: usize) -> Vec<f64> {
    let mut out = Vec::new();
    analyze_into(x, h, stride, &mut out);
    out
}

fn synthesize(x: &[f64], h: &[f64], stride: usize) -> Vec<f64> {
    let mut out = Vec::new();
    synthesize_into(x, h, stride, &mut out);
    out
}

/// Multilevel stationary wavelet decomposition.
///
/// # Panics
///
/// Panics if `levels` is zero or the signal is shorter than 2 samples.
///
/// # Examples
///
/// ```
/// use wimi_dsp::wavelet::{swt_decompose, swt_reconstruct, Wavelet};
///
/// let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
/// let dec = swt_decompose(&x, Wavelet::Db4, 3);
/// let y = swt_reconstruct(&dec);
/// let err: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
/// assert!(err < 1e-10);
/// ```
pub fn swt_decompose(x: &[f64], wavelet: Wavelet, levels: usize) -> SwtDecomposition {
    assert!(levels > 0, "need at least one decomposition level");
    assert!(x.len() >= 2, "signal must have at least 2 samples");
    let h = wavelet.lowpass();
    let g = wavelet.highpass();
    let mut approx = x.to_vec();
    let mut details = Vec::with_capacity(levels);
    for l in 0..levels {
        let stride = 1usize << l;
        let d = analyze(&approx, &g, stride);
        let a = analyze(&approx, h, stride);
        details.push(d);
        approx = a;
    }
    SwtDecomposition {
        details,
        approx,
        wavelet,
    }
}

/// Inverse stationary wavelet transform (perfect reconstruction for
/// orthonormal families).
pub fn swt_reconstruct(dec: &SwtDecomposition) -> Vec<f64> {
    let h = dec.wavelet.lowpass();
    let g = dec.wavelet.highpass();
    let mut approx = dec.approx.clone();
    for l in (0..dec.levels()).rev() {
        let stride = 1usize << l;
        let from_a = synthesize(&approx, h, stride);
        let from_d = synthesize(&dec.details[l], &g, stride);
        approx = from_a
            .iter()
            .zip(&from_d)
            .map(|(a, d)| 0.5 * (a + d))
            .collect();
    }
    approx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (3.0 + 10.0 * t) * t).sin()
            })
            .collect()
    }

    /// Naive modular-index reference for [`analyze_into`] — the loop the
    /// wrap-split kernel must match bit-for-bit.
    fn analyze_ref(x: &[f64], h: &[f64], stride: usize) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                h.iter()
                    .enumerate()
                    .map(|(k, &hk)| hk * x[(i + k * stride) % n])
                    .sum()
            })
            .collect()
    }

    /// Naive reference for [`synthesize_into`].
    fn synthesize_ref(x: &[f64], h: &[f64], stride: usize) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                h.iter()
                    .enumerate()
                    .map(|(k, &hk)| {
                        let idx = (i + n * h.len() * stride - k * stride) % n;
                        hk * x[idx]
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn wrap_split_kernels_match_naive_reference_bitwise() {
        for &n in &[2usize, 7, 13, 33, 64, 101] {
            let x = chirp(n);
            for w in Wavelet::ALL {
                let h = w.lowpass();
                let g = w.highpass();
                for level in 0..5 {
                    let stride = 1usize << level;
                    for f in [h, &g[..]] {
                        let mut fast = Vec::new();
                        analyze_into(&x, f, stride, &mut fast);
                        assert_eq!(fast, analyze_ref(&x, f, stride), "{w} n={n} s={stride}");
                        synthesize_into(&x, f, stride, &mut fast);
                        assert_eq!(fast, synthesize_ref(&x, f, stride), "{w} n={n} s={stride}");
                    }
                }
            }
        }
    }

    #[test]
    fn filters_are_orthonormal() {
        for w in Wavelet::ALL {
            let h = w.lowpass();
            let norm: f64 = h.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-12, "{w} norm = {norm}");
            let sum: f64 = h.iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-10,
                "{w} sum = {sum}"
            );
        }
    }

    #[test]
    fn highpass_is_orthogonal_to_lowpass() {
        for w in Wavelet::ALL {
            let h = w.lowpass();
            let g = w.highpass();
            let dot: f64 = h.iter().zip(&g).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-12, "{w} <h,g> = {dot}");
            let gsum: f64 = g.iter().sum();
            assert!(gsum.abs() < 1e-10, "{w} Σg = {gsum}");
        }
    }

    #[test]
    fn perfect_reconstruction_all_families() {
        let x = chirp(100);
        for w in Wavelet::ALL {
            let dec = swt_decompose(&x, w, 4);
            let y = swt_reconstruct(&dec);
            let err = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "{w}: max reconstruction error {err}");
        }
    }

    #[test]
    fn perfect_reconstruction_odd_lengths() {
        // Stationary transform must not care about divisibility.
        for &n in &[7usize, 13, 33, 101] {
            let x = chirp(n);
            let dec = swt_decompose(&x, Wavelet::Db4, 3);
            let y = swt_reconstruct(&dec);
            let err = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n = {n}: error {err}");
        }
    }

    #[test]
    fn bands_have_input_length() {
        let x = chirp(50);
        let dec = swt_decompose(&x, Wavelet::Db2, 3);
        assert_eq!(dec.levels(), 3);
        assert_eq!(dec.len(), 50);
        for d in &dec.details {
            assert_eq!(d.len(), 50);
        }
        assert_eq!(dec.approx.len(), 50);
    }

    #[test]
    fn energy_is_preserved() {
        // Parseval for the union of bands, accounting for the 2× redundancy
        // per level: ‖a_l‖² + ‖d_l‖² = 2·‖a_{l−1}‖² in the undecimated
        // transform with unit-norm filters... verified empirically: the
        // level-1 split preserves energy doubled.
        let x = chirp(64);
        let dec = swt_decompose(&x, Wavelet::Haar, 1);
        let in_e: f64 = x.iter().map(|v| v * v).sum();
        let out_e: f64 = dec.detail_power(1) + dec.approx.iter().map(|v| v * v).sum::<f64>();
        assert!(
            (out_e - 2.0 * in_e).abs() / in_e < 1e-9,
            "in {in_e}, out {out_e}"
        );
    }

    #[test]
    fn smooth_signal_energy_concentrates_in_approx() {
        let x: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 128.0).sin())
            .collect();
        let dec = swt_decompose(&x, Wavelet::Db4, 4);
        let approx_e: f64 = dec.approx.iter().map(|v| v * v).sum();
        let detail_e: f64 = (1..=4).map(|l| dec.detail_power(l)).sum();
        assert!(approx_e > 10.0 * detail_e);
    }

    #[test]
    fn impulse_is_localised_in_fine_details() {
        let mut x = vec![0.0; 128];
        x[64] = 1.0;
        let dec = swt_decompose(&x, Wavelet::Haar, 4);
        // The finest band's largest coefficient sits at the impulse.
        let (argmax, _) = dec.details[0]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert!((argmax as i64 - 64).abs() <= 2, "argmax = {argmax}");
        // And the band is sparse: few non-negligible coefficients.
        let active = dec.details[0].iter().filter(|w| w.abs() > 1e-9).count();
        assert!(active <= 4, "active = {active}");
    }

    #[test]
    #[should_panic(expected = "at least one decomposition level")]
    fn zero_levels_rejected() {
        let _ = swt_decompose(&[1.0, 2.0], Wavelet::Haar, 0);
    }

    #[test]
    #[should_panic(expected = "level must be in")]
    fn detail_power_bounds() {
        let dec = swt_decompose(&chirp(16), Wavelet::Haar, 2);
        let _ = dec.detail_power(3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Wavelet::Db4.to_string(), "db4");
        assert_eq!(Wavelet::default(), Wavelet::Db2);
    }
}
