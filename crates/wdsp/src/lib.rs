//! # wimi-dsp
//!
//! Signal-processing substrate for the WiMi reproduction: descriptive and
//! circular statistics, outlier rejection, classic smoothing filters, and
//! the stationary wavelet transform with the spatially-selective
//! correlation denoiser of the paper's §III-C.
//!
//! # Example: denoising an impulse-corrupted amplitude series
//!
//! ```
//! use wimi_dsp::outlier::reject_outliers_3sigma;
//! use wimi_dsp::wavelet::correlation_denoise;
//!
//! let mut series: Vec<f64> = (0..64).map(|i| 1.0 + 0.05 * (i as f64 * 0.3).sin()).collect();
//! series[20] += 2.5; // impulse
//! let cleaned = correlation_denoise(&reject_outliers_3sigma(&series));
//! assert!((cleaned[20] - 1.0).abs() < 0.3);
//! ```

pub mod filters;
pub mod outlier;
pub mod stats;
pub mod wavelet;

pub use filters::{butterworth_filtfilt, median_filter, slide_filter};
pub use outlier::reject_outliers_3sigma;
pub use wavelet::{correlation_denoise, CorrelationDenoiser, Wavelet};
