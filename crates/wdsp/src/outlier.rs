//! Outlier rejection for amplitude series.
//!
//! The paper's first amplitude-denoising step (§III-C) keeps samples inside
//! `[μ − 3σ, μ + 3σ]` and discards the rest. To keep series lengths stable
//! for the downstream wavelet stage, rejected samples are replaced by
//! linear interpolation of their surviving neighbours. A Hampel filter is
//! provided as a robust windowed alternative (used in ablations).

use crate::stats::{mean, median, std_dev};

/// Marks samples outside `μ ± k·σ`. Returns a keep-mask.
pub fn sigma_mask(xs: &[f64], k: f64) -> Vec<bool> {
    assert!(k > 0.0, "sigma multiplier must be positive");
    if xs.is_empty() {
        return Vec::new();
    }
    let m = mean(xs);
    let s = std_dev(xs);
    xs.iter().map(|&x| (x - m).abs() <= k * s).collect()
}

/// The paper's 3σ outlier rule: samples outside `[μ−3σ, μ+3σ]` are
/// replaced by linear interpolation between the nearest kept neighbours
/// (edge outliers take the nearest kept value).
///
/// # Examples
///
/// ```
/// use wimi_dsp::outlier::reject_outliers_3sigma;
/// let mut xs = vec![1.0, 1.02, 0.98, 9.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.01, 1.0, 0.99];
/// let cleaned = reject_outliers_3sigma(&xs);
/// assert!(cleaned[3] < 1.5);
/// ```
pub fn reject_outliers_3sigma(xs: &[f64]) -> Vec<f64> {
    reject_outliers(xs, 3.0)
}

/// Scratch buffers for the allocation-free outlier-rejection variants.
#[derive(Debug, Clone, Default)]
pub struct OutlierScratch {
    keep: Vec<bool>,
    kept: Vec<usize>,
}

/// [`reject_outliers`] writing into a caller-owned output buffer, using
/// `scratch` for the keep-mask and kept-index list. Returns the same bits
/// as the allocating version.
///
/// # Panics
///
/// Panics if `k` is not positive.
pub fn reject_outliers_into(xs: &[f64], k: f64, scratch: &mut OutlierScratch, out: &mut Vec<f64>) {
    assert!(k > 0.0, "sigma multiplier must be positive");
    out.clear();
    out.extend_from_slice(xs);
    if xs.is_empty() {
        return;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    scratch.keep.clear();
    scratch
        .keep
        .extend(xs.iter().map(|&x| (x - m).abs() <= k * s));
    interpolate_masked_in(xs, &scratch.keep, &mut scratch.kept, out);
}

/// Generalised σ-rule outlier rejection with interpolation repair.
///
/// # Panics
///
/// Panics if `k` is not positive.
pub fn reject_outliers(xs: &[f64], k: f64) -> Vec<f64> {
    let mask = sigma_mask(xs, k);
    interpolate_masked(xs, &mask)
}

/// Replaces masked-out (`false`) samples by linear interpolation between
/// the nearest `true` neighbours. If everything is masked out, the input
/// is returned unchanged (there is nothing to anchor a repair on).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn interpolate_masked(xs: &[f64], keep: &[bool]) -> Vec<f64> {
    let mut out = xs.to_vec();
    let mut kept = Vec::new();
    interpolate_masked_in(xs, keep, &mut kept, &mut out);
    out
}

/// In-place core of [`interpolate_masked`]: `out` must already hold a copy
/// of `xs`; repaired samples are written over it. `kept_idx` is a reusable
/// scratch list of kept indices.
// wlint: allow(panic-reach) — every index is drawn from 0..n or kept_idx ⊂ 0..n; mask length is asserted equal at entry
fn interpolate_masked_in(xs: &[f64], keep: &[bool], kept_idx: &mut Vec<usize>, out: &mut [f64]) {
    assert_eq!(xs.len(), keep.len(), "mask length must match data length");
    if xs.is_empty() || keep.iter().all(|&k| !k) {
        return;
    }
    let n = xs.len();
    kept_idx.clear();
    kept_idx.extend((0..n).filter(|&i| keep[i]));
    for i in 0..n {
        if keep[i] {
            continue;
        }
        // Nearest kept neighbour on each side.
        let left = kept_idx.iter().rev().find(|&&j| j < i).copied();
        let right = kept_idx.iter().find(|&&j| j > i).copied();
        out[i] = match (left, right) {
            (Some(l), Some(r)) => {
                let t = (i - l) as f64 / (r - l) as f64;
                xs[l] + t * (xs[r] - xs[l])
            }
            (Some(l), None) => xs[l],
            (None, Some(r)) => xs[r],
            (None, None) => xs[i],
        };
    }
}

/// Hampel filter: windowed median/MAD outlier repair. Each sample farther
/// than `k` scaled MADs from the window median is replaced by that median.
///
/// # Panics
///
/// Panics if `half_window` is zero or `k` is not positive.
pub fn hampel_filter(xs: &[f64], half_window: usize, k: f64) -> Vec<f64> {
    assert!(half_window > 0, "half window must be positive");
    assert!(k > 0.0, "threshold multiplier must be positive");
    let n = xs.len();
    let mut out = xs.to_vec();
    for i in 0..n {
        let lo = i.saturating_sub(half_window);
        let hi = (i + half_window + 1).min(n);
        let window = &xs[lo..hi];
        let med = median(window);
        let scaled_mad =
            1.4826 * median(&window.iter().map(|x| (x - med).abs()).collect::<Vec<_>>());
        if scaled_mad > 0.0 && (xs[i] - med).abs() > k * scaled_mad {
            out[i] = med;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_outlier() -> Vec<f64> {
        let mut xs: Vec<f64> = (0..50)
            .map(|i| 1.0 + 0.01 * ((i as f64) * 0.3).sin())
            .collect();
        xs[20] = 10.0;
        xs
    }

    #[test]
    fn sigma_mask_flags_the_spike() {
        let xs = series_with_outlier();
        let mask = sigma_mask(&xs, 3.0);
        assert!(!mask[20]);
        assert_eq!(mask.iter().filter(|&&m| !m).count(), 1);
    }

    #[test]
    fn rejection_repairs_by_interpolation() {
        let xs = series_with_outlier();
        let cleaned = reject_outliers_3sigma(&xs);
        assert!((cleaned[20] - 1.0).abs() < 0.05);
        // Non-outliers untouched.
        assert_eq!(cleaned[0], xs[0]);
        assert_eq!(cleaned[49], xs[49]);
    }

    #[test]
    fn edge_outliers_take_nearest_value() {
        let xs = vec![100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let cleaned = reject_outliers(&xs, 1.5);
        assert_eq!(cleaned[0], 1.0);
    }

    #[test]
    fn interpolate_masked_linear_ramp() {
        let xs = vec![0.0, 99.0, 99.0, 3.0];
        let keep = vec![true, false, false, true];
        let out = interpolate_masked(&xs, &keep);
        assert!((out[1] - 1.0).abs() < 1e-12);
        assert!((out[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_masked_returns_input() {
        let xs = vec![1.0, 2.0];
        let out = interpolate_masked(&xs, &[false, false]);
        assert_eq!(out, xs);
    }

    #[test]
    fn empty_input_ok() {
        assert!(reject_outliers_3sigma(&[]).is_empty());
        assert!(sigma_mask(&[], 3.0).is_empty());
    }

    #[test]
    fn scratch_variant_matches_allocating_version_bitwise() {
        let mut scratch = OutlierScratch::default();
        let mut out = Vec::new();
        for xs in [series_with_outlier(), vec![5.0; 4], Vec::new()] {
            for k in [1.5, 3.0] {
                reject_outliers_into(&xs, k, &mut scratch, &mut out);
                let reference = reject_outliers(&xs, k);
                assert_eq!(out.len(), reference.len());
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn hampel_repairs_spike_without_touching_trend() {
        let mut xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        xs[15] = 50.0;
        let out = hampel_filter(&xs, 3, 3.0);
        assert!((out[15] - 1.5).abs() < 0.3, "repaired to {}", out[15]);
        assert!((out[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hampel_leaves_clean_series_unchanged() {
        let xs: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let out = hampel_filter(&xs, 4, 5.0);
        assert_eq!(out, xs);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn interpolate_rejects_mismatched_mask() {
        let _ = interpolate_masked(&[1.0, 2.0], &[true]);
    }
}
