//! Classic smoothing filters: median, sliding mean, Butterworth.
//!
//! These are the three baselines the paper compares its wavelet denoiser
//! against in Fig. 7 ("median filter", "slide filter", "Butterworth
//! filter").

/// Windowed median filter (odd window, edges use the available part).
///
/// # Panics
///
/// Panics if `window` is zero or even.
pub fn median_filter(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    assert!(window % 2 == 1, "window must be odd");
    let half = window / 2;
    let n = xs.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            crate::stats::median(&xs[lo..hi])
        })
        .collect()
}

/// Sliding-mean ("slide") filter: windowed moving average.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn slide_filter(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    let n = xs.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            crate::stats::mean(&xs[lo..hi])
        })
        .collect()
}

/// A second-order IIR section (biquad) in Direct Form II transposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients (a0 normalised to 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// Designs a 2nd-order Butterworth low-pass section with cutoff
    /// `fc_norm` (normalised to the Nyquist frequency, `0 < fc_norm < 1`)
    /// via the bilinear transform.
    ///
    /// # Panics
    ///
    /// Panics if `fc_norm` is outside `(0, 1)`.
    pub fn butterworth_lowpass(fc_norm: f64) -> Self {
        assert!(
            fc_norm > 0.0 && fc_norm < 1.0,
            "normalised cutoff must be in (0, 1), got {fc_norm}"
        );
        // Pre-warped analogue prototype, Q = 1/√2.
        let k = (std::f64::consts::PI * fc_norm / 2.0).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        let b0 = k * k * norm;
        Biquad {
            b: [b0, 2.0 * b0, b0],
            a: [2.0 * (k * k - 1.0) * norm, (1.0 - k / q + k * k) * norm],
        }
    }

    /// Filters a signal (single pass, causal).
    // wlint: allow(panic-reach) — b and a are fixed-size [3]/[2] arrays indexed by constants
    // wlint: allow(hot-path-alloc) — no real hot caller: the hot edge is an iterator-adapter name collision (`.filter`); actual callers (filtfilt, notch) are cold setup paths
    pub fn filter(&self, xs: &[f64]) -> Vec<f64> {
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        xs.iter()
            .map(|&x| {
                let y = self.b[0] * x + s1;
                s1 = self.b[1] * x - self.a[0] * y + s2;
                s2 = self.b[2] * x - self.a[1] * y;
                y
            })
            .collect()
    }
}

/// Zero-phase Butterworth low-pass: 4th order (two cascaded biquads),
/// applied forward and backward (filtfilt) with reflected-edge padding so
/// the output has no phase lag or edge transients.
///
/// # Panics
///
/// Panics if `fc_norm` is outside `(0, 1)`.
pub fn butterworth_filtfilt(xs: &[f64], fc_norm: f64) -> Vec<f64> {
    if xs.len() < 8 {
        // Too short for the filter transient to settle; pass through.
        let _ = Biquad::butterworth_lowpass(fc_norm); // still validate cutoff
        return xs.to_vec();
    }
    let bq = Biquad::butterworth_lowpass(fc_norm);
    let pad = (xs.len() / 4).clamp(1, 64);
    let padded = reflect_pad(xs, pad);

    let fwd = bq.filter(&bq.filter(&padded));
    let mut rev: Vec<f64> = fwd.into_iter().rev().collect();
    rev = bq.filter(&bq.filter(&rev));
    rev.reverse();
    rev[pad..pad + xs.len()].to_vec()
}

/// Reflects `pad` samples at each end of the signal.
fn reflect_pad(xs: &[f64], pad: usize) -> Vec<f64> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n + 2 * pad);
    for i in (1..=pad).rev() {
        out.push(xs[i.min(n - 1)]);
    }
    out.extend_from_slice(xs);
    for i in 0..pad {
        let idx = n.saturating_sub(2).saturating_sub(i);
        out.push(xs[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::rms;

    fn noisy_step() -> Vec<f64> {
        (0..200)
            .map(|i| {
                let base = if i < 100 { 1.0 } else { 2.0 };
                base + 0.2 * ((i as f64 * 7.77).sin() * (i as f64 * 3.1).cos())
            })
            .collect()
    }

    #[test]
    fn median_filter_kills_single_spikes() {
        let mut xs = vec![1.0; 21];
        xs[10] = 50.0;
        let out = median_filter(&xs, 5);
        assert!(out.iter().all(|&y| (y - 1.0).abs() < 1e-12));
    }

    #[test]
    fn median_filter_preserves_constant() {
        let xs = vec![3.3; 10];
        assert_eq!(median_filter(&xs, 3), xs);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn median_filter_rejects_even_window() {
        let _ = median_filter(&[1.0, 2.0], 2);
    }

    #[test]
    fn slide_filter_smooths() {
        let xs = noisy_step();
        let out = slide_filter(&xs, 9);
        let noise_in: Vec<f64> = xs[..90].iter().map(|x| x - 1.0).collect();
        let noise_out: Vec<f64> = out[..90].iter().map(|x| x - 1.0).collect();
        assert!(rms(&noise_out) < rms(&noise_in) * 0.7);
    }

    #[test]
    fn butterworth_dc_gain_is_unity() {
        let bq = Biquad::butterworth_lowpass(0.2);
        let dc = vec![1.0; 500];
        let y = bq.filter(&dc);
        assert!((y[499] - 1.0).abs() < 1e-6, "dc gain = {}", y[499]);
    }

    #[test]
    fn butterworth_attenuates_high_frequency() {
        let bq = Biquad::butterworth_lowpass(0.1);
        // High-frequency tone near Nyquist.
        let hf: Vec<f64> = (0..500)
            .map(|i| (std::f64::consts::PI * 0.9 * i as f64).sin())
            .collect();
        let y = bq.filter(&hf);
        assert!(rms(&y[100..]) < 0.05 * rms(&hf[100..]));
    }

    #[test]
    fn filtfilt_has_zero_phase() {
        // A slow sine should come through nearly unchanged and unshifted.
        let xs: Vec<f64> = (0..400)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 200.0).sin())
            .collect();
        let y = butterworth_filtfilt(&xs, 0.3);
        assert_eq!(y.len(), xs.len());
        let err: Vec<f64> = xs.iter().zip(&y).map(|(a, b)| a - b).collect();
        assert!(rms(&err) < 0.02, "rms error = {}", rms(&err));
    }

    #[test]
    fn filtfilt_smooths_noise() {
        let xs = noisy_step();
        let y = butterworth_filtfilt(&xs, 0.1);
        let noise_in: Vec<f64> = xs[10..90].iter().map(|x| x - 1.0).collect();
        let noise_out: Vec<f64> = y[10..90].iter().map(|x| x - 1.0).collect();
        assert!(rms(&noise_out) < rms(&noise_in) * 0.6);
    }

    #[test]
    fn filtfilt_handles_short_and_empty() {
        assert!(butterworth_filtfilt(&[], 0.2).is_empty());
        // Signals too short for the transient pass through unchanged.
        let one = butterworth_filtfilt(&[5.0], 0.2);
        assert_eq!(one, vec![5.0]);
        let few = butterworth_filtfilt(&[1.0, 2.0, 3.0], 0.2);
        assert_eq!(few, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "normalised cutoff")]
    fn butterworth_rejects_bad_cutoff() {
        let _ = Biquad::butterworth_lowpass(1.5);
    }

    #[test]
    fn reflect_pad_shape() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let p = reflect_pad(&xs, 2);
        assert_eq!(p.len(), 8);
        assert_eq!(&p[2..6], &xs[..]);
        assert_eq!(p[1], 2.0); // reflection of index 1
        assert_eq!(p[6], 3.0);
    }
}
