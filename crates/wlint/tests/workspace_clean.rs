//! Self-check: the workspace the linter ships in must itself be clean.
//!
//! This is the test-suite twin of the CI `lint` job — `cargo test` alone
//! catches a freshly introduced violation without needing the binary run.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wimi_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        report.files.len() > 40,
        "walk looks truncated: only {} files",
        report.files.len()
    );
    assert!(
        report.is_clean(),
        "unsuppressed lint violations:\n{}",
        report.render_text()
    );
}

#[test]
fn every_suppression_carries_a_justification() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wimi_lint::lint_workspace(&root).expect("workspace walk");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} [{}] suppressed without a reason",
            s.file,
            s.line,
            s.rule.name()
        );
    }
}
