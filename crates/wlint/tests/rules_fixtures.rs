//! Fixture-driven rule coverage: every rule has a known-bad snippet that
//! must fire and a clean (or pragma-suppressed) snippet that must pass.

use wimi_lint::{lint_source, Rule};

/// Reads `tests/fixtures/<rule>/<kind>.rs`.
fn fixture(rule: &str, kind: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{}/{}.rs",
        env!("CARGO_MANIFEST_DIR"),
        rule,
        kind
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The virtual workspace path each rule's fixture is linted under (rules
/// are scoped by crate and file name).
fn virtual_path(rule: Rule) -> &'static str {
    match rule {
        Rule::FloatCast => "crates/wiphy/src/csi.rs",
        // App crate: the site-level panic/wall-clock rules stay quiet, so
        // the interprocedural fixtures exercise exactly one rule each.
        Rule::PanicReach | Rule::DeterminismTaint => "crates/experiments/src/fixture.rs",
        _ => "crates/wiphy/src/fixture.rs",
    }
}

fn check_rule(rule: Rule) {
    let path = virtual_path(rule);

    let bad = lint_source(path, &fixture(rule.name(), "bad"));
    assert!(
        bad.violations.iter().any(|v| v.rule == rule),
        "{}/bad.rs must fire [{}]; got {:?}",
        rule.name(),
        rule.name(),
        bad.violations
    );

    let clean = lint_source(path, &fixture(rule.name(), "clean"));
    assert!(
        clean.violations.is_empty(),
        "{}/clean.rs must pass; got {:?}",
        rule.name(),
        clean.violations
    );
}

#[test]
fn wall_clock_fixture() {
    check_rule(Rule::WallClock);
}

#[test]
fn ambient_rng_fixture() {
    check_rule(Rule::AmbientRng);
}

#[test]
fn hash_collections_fixture() {
    check_rule(Rule::HashCollections);
}

#[test]
fn thread_spawn_fixture() {
    check_rule(Rule::ThreadSpawn);
}

#[test]
fn panic_fixture() {
    check_rule(Rule::Panic);
}

#[test]
fn float_eq_fixture() {
    check_rule(Rule::FloatEq);
}

#[test]
fn float_cast_fixture() {
    check_rule(Rule::FloatCast);
}

#[test]
fn unit_newtype_fixture() {
    check_rule(Rule::UnitNewtype);
}

#[test]
fn bad_pragma_fixture() {
    check_rule(Rule::BadPragma);
}

#[test]
fn hot_path_alloc_fixture() {
    check_rule(Rule::HotPathAlloc);
}

#[test]
fn panic_reach_fixture() {
    check_rule(Rule::PanicReach);
}

#[test]
fn determinism_taint_fixture() {
    check_rule(Rule::DeterminismTaint);
}

#[test]
fn panic_reach_message_carries_the_full_call_path() {
    let bad = lint_source(
        virtual_path(Rule::PanicReach),
        &fixture("panic-reach", "bad"),
    );
    let v = bad
        .violations
        .iter()
        .find(|v| v.rule == Rule::PanicReach)
        .expect("panic-reach fires");
    assert!(
        v.message.contains("hot `hot_entry` → `step` → `pick`"),
        "2-hop path missing from: {}",
        v.message
    );
    assert_eq!(v.line, 14, "violation anchors at the sink, not the root");
}

#[test]
fn hot_marker_before_impl_is_reported_unbound_not_rebound() {
    // Regression: the marker must not skip the `impl` line and silently
    // mark the method inside it hot.
    let report = lint_source(
        "crates/wiphy/src/fixture.rs",
        &fixture("hot-path-alloc", "impl_marker"),
    );
    assert_eq!(
        report.violations.len(),
        1,
        "exactly the unbound-marker finding; got {:?}",
        report.violations
    );
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::HotPathAlloc);
    assert_eq!(v.line, 6, "anchors at the marker line");
    assert!(v.message.contains("does not precede"), "got: {}", v.message);
    assert!(v.message.contains("`impl`"), "got: {}", v.message);
}

#[test]
fn pragma_suppressions_are_recorded_not_dropped() {
    // The pragma'd clean fixtures must report their suppressions so the
    // allow-list stays auditable.
    for rule in [Rule::Panic, Rule::FloatCast, Rule::BadPragma] {
        let clean = lint_source(virtual_path(rule), &fixture(rule.name(), "clean"));
        assert!(
            !clean.suppressed.is_empty(),
            "{}/clean.rs should record a suppression",
            rule.name()
        );
        for s in &clean.suppressed {
            assert!(!s.reason.is_empty(), "suppression must carry a reason");
        }
    }
}

#[test]
fn thread_spawn_is_allowed_inside_wml_par() {
    let bad = fixture("thread-spawn", "bad");
    let in_par = lint_source("crates/wml/src/par.rs", &bad);
    assert!(
        in_par.violations.is_empty(),
        "wml::par is the sanctioned spawn site; got {:?}",
        in_par.violations
    );
}

#[test]
fn panic_rule_is_scoped_to_library_crates() {
    let bad = fixture("panic", "bad");
    let in_app = lint_source("crates/experiments/src/fixture.rs", &bad);
    assert!(
        !in_app.violations.iter().any(|v| v.rule == Rule::Panic),
        "experiments is not a library crate; got {:?}",
        in_app.violations
    );
}

#[test]
fn wtrace_is_covered_as_a_library_crate() {
    // The flight-recorder crate ships in the deterministic hot path, so
    // the panic-freedom and wall-clock rules must fire there exactly as
    // they do for the other library crates.
    for rule_name in ["panic", "wall-clock"] {
        let bad = lint_source("crates/wtrace/src/fixture.rs", &fixture(rule_name, "bad"));
        assert!(
            !bad.violations.is_empty(),
            "{rule_name}/bad.rs must fire inside wtrace; got {:?}",
            bad.violations
        );
        let clean = lint_source("crates/wtrace/src/fixture.rs", &fixture(rule_name, "clean"));
        assert!(
            clean.violations.is_empty(),
            "{rule_name}/clean.rs must pass inside wtrace; got {:?}",
            clean.violations
        );
    }
}

#[test]
fn float_cast_rule_is_scoped_to_quantisation_files() {
    let bad = fixture("float-cast", "bad");
    let elsewhere = lint_source("crates/wiphy/src/fixture.rs", &bad);
    assert!(
        elsewhere.violations.is_empty(),
        "float-cast only applies to csi.rs/hardware.rs; got {:?}",
        elsewhere.violations
    );
}
