//! Integration tests for the interprocedural rules over small fixture
//! workspaces under `tests/fixtures/graph/`. Each tree is a miniature
//! `crates/*/src` layout linted through the same entry point the CLI
//! uses, so resolution, BFS attribution, and path rendering are all
//! exercised end to end.

use std::path::PathBuf;

use wimi_lint::{lint_workspace, LintReport, Rule};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_workspace(&fixture_root(name)).expect("fixture tree lints")
}

#[test]
fn hot_path_alloc_crosses_crates_through_a_use_rename() {
    let report = lint("hot2");
    let hpa: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::HotPathAlloc)
        .collect();
    assert_eq!(hpa.len(), 1, "violations: {:#?}", report.violations);
    let v = hpa[0];
    // The violation is attributed to the sink site, two hops from the root.
    assert_eq!(v.file, "crates/appb/src/helpers.rs");
    assert!(
        v.message.contains("hot `hot_entry` → `mid` → `grow`"),
        "full call path missing from: {}",
        v.message
    );
    assert!(v.message.contains("`vec!`"), "sink detail: {}", v.message);
}

#[test]
fn panic_reach_crosses_two_hops_from_a_hot_root() {
    let report = lint("panic2");
    let pr: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::PanicReach)
        .collect();
    assert_eq!(pr.len(), 1, "violations: {:#?}", report.violations);
    let v = pr[0];
    assert!(
        v.message.contains("hot `hot_entry` → `step` → `pick`"),
        "full call path missing from: {}",
        v.message
    );
    assert!(
        v.message.contains("slice index"),
        "sink detail: {}",
        v.message
    );
}

#[test]
fn determinism_taint_crosses_crates_from_an_artifact_root() {
    let report = lint("taint2");
    let dt: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::DeterminismTaint)
        .collect();
    assert_eq!(dt.len(), 1, "violations: {:#?}", report.violations);
    let v = dt[0];
    assert!(
        v.message
            .contains("artifact `render_summary` → `append_header` → `uptime_label`"),
        "full call path missing from: {}",
        v.message
    );
    assert!(
        v.message.contains("Instant::now()"),
        "sink detail: {}",
        v.message
    );
}

#[test]
fn path_level_pragma_suppresses_the_whole_chain() {
    let report = lint("suppressed");
    assert!(
        report.violations.is_empty(),
        "expected clean tree, got: {:#?}",
        report.violations
    );
    let s: Vec<_> = report
        .suppressed
        .iter()
        .filter(|s| s.rule == Rule::HotPathAlloc)
        .collect();
    assert_eq!(s.len(), 1, "suppressed: {:#?}", report.suppressed);
    assert!(s[0].reason.contains("one-time pool growth"));
}

#[test]
fn trait_dispatch_over_approximates_and_cycles_terminate() {
    let report = lint("traits");
    let hpa: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::HotPathAlloc)
        .collect();
    // One violation through the trait impl (the receiver-less method call
    // links to every `render_out`, so the allocating `Slow` impl is
    // reachable even though the root holds a `Fast`), one through the
    // mutually recursive ping/pong cycle.
    assert_eq!(hpa.len(), 2, "violations: {:#?}", report.violations);
    let via_trait = hpa
        .iter()
        .find(|v| v.message.contains("Slow::render_out"))
        .expect("trait-impl violation present");
    assert!(
        via_trait
            .message
            .contains("hot `hot_entry` → `Slow::render_out`"),
        "trait path: {}",
        via_trait.message
    );
    let via_cycle = hpa
        .iter()
        .find(|v| v.message.contains("`grow`"))
        .expect("cycle violation present");
    assert!(
        via_cycle
            .message
            .contains("hot `hot_cycle` → `ping` → `pong` → `grow`"),
        "cycle path: {}",
        via_cycle.message
    );
    assert!(via_cycle.message.contains(".to_vec()"));
}
