//! Clean: the same call chain with the panic site handled — the fallible
//! lookup degrades to a default instead of aborting.

// wlint: hot
fn hot_entry(v: &[f64]) -> f64 {
    step(v)
}

fn step(v: &[f64]) -> f64 {
    pick(v)
}

fn pick(v: &[f64]) -> f64 {
    v.first().copied().unwrap_or(0.0)
}
