//! Known-bad: a hot entry point reaches an `.unwrap()` two call hops down.
//! The violation must carry the full `hot_entry → step → pick` path.

// wlint: hot
fn hot_entry(v: &[f64]) -> f64 {
    step(v)
}

fn step(v: &[f64]) -> f64 {
    pick(v)
}

fn pick(v: &[f64]) -> f64 {
    *v.first().unwrap()
}
