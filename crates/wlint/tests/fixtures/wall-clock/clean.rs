fn deterministic_tick(counter: u64) -> u64 {
    counter + 1
}
