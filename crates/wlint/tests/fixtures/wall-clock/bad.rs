use std::time::{Instant, SystemTime};

fn elapsed_wall() -> f64 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_secs_f64()
}
