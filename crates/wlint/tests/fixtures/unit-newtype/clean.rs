use crate::units::{Hertz, Meters};

pub fn los_response(freq: Hertz, dist: Meters, gain: f64) -> f64 {
    freq.value() * dist.value() * gain
}
