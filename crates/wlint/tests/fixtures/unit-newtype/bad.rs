pub fn los_response(freq: f64, dist_m: f64, gain: f64) -> f64 {
    freq * dist_m * gain
}
