use rand::rngs::StdRng;
use rand::SeedableRng;

fn noise(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
