fn is_origin(x: f64, y: f64) -> bool {
    assert!(x == 0.0 || x > 0.0, "exact contract check is exempt");
    x.abs() <= f64::EPSILON && (y - 1.0).abs() <= f64::EPSILON
}
