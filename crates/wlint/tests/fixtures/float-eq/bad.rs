fn is_origin(x: f64, y: f64) -> bool {
    x == 0.0 || y != 1.0
}
