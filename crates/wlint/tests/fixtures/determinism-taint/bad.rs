//! Known-bad: an artifact renderer reaches a non-allowlisted `env::var`
//! two call hops down — host identity would leak into a byte-stable
//! artifact.

// wlint: artifact
fn render(out: &mut String) {
    header(out);
}

fn header(out: &mut String) {
    stamp(out);
}

fn stamp(out: &mut String) {
    let host = std::env::var("HOSTNAME").unwrap_or_default();
    out.push_str(&host);
}
