//! Clean: the only environment read on the renderer's paths is the
//! `WIMI_THREADS` allowlist entry, which may steer scheduling but is
//! pinned by the determinism CI job.

// wlint: artifact
fn render(out: &mut String) {
    header(out);
}

fn header(out: &mut String) {
    let threads = std::env::var("WIMI_THREADS").unwrap_or_default();
    out.push_str(&threads);
}
