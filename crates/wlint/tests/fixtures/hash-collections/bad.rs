use std::collections::{HashMap, HashSet};

fn tally(keys: &[u32]) -> HashMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut m = HashMap::new();
    for &k in keys {
        if seen.insert(k) {
            m.insert(k, 1);
        }
    }
    m
}
