// wlint: allow(panic)
fn a() {}
// wlint: suppress(everything)
fn b() {}
