// wlint: allow(hash-collections) — ordering is irrelevant for this scratch set
use std::collections::HashSet as Scratch;

fn a() -> Scratch<u32> {
    Scratch::new()
}
