fn fan_out(jobs: Vec<u32>) -> Vec<u32> {
    jobs.into_iter().map(|j| j + 1).collect()
}
