fn first(v: &[u32]) -> u32 {
    if v.len() > 3 {
        panic!("too many");
    }
    let head = *v.first().unwrap();
    let tail = *v.last().expect("non-empty");
    head + tail
}
