fn first(v: &[u32]) -> Option<u32> {
    // wlint: allow(panic) — slice verified non-empty one line above
    let head = if v.is_empty() { 0 } else { *v.first().unwrap() };
    v.last().map(|&t| head + t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
