//! The nondeterminism source: an `Instant::now` read that would leak
//! scheduling-dependent bits into the artifact.

pub fn uptime_label() -> String {
    let t = std::time::Instant::now();
    format!("{:?}", t)
}
