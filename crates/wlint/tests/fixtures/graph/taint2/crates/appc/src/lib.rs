//! Artifact renderer reaching a wall-clock read two hops and one crate
//! away.

use appd::clock::uptime_label;

// wlint: artifact
pub fn render_summary(out: &mut String) {
    append_header(out);
}

fn append_header(out: &mut String) {
    out.push_str(&uptime_label());
}
