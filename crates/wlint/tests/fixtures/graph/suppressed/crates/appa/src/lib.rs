//! Same shape as the hot2 tree, but with a path-level suppression on the
//! intermediate fn: the pragma vouches every violation routed through
//! `mid`, so the workspace lints clean with one recorded suppression.

// wlint: hot
pub fn hot_entry(out: &mut Vec<f64>) {
    mid(out);
}

// wlint: allow(hot-path-alloc) — one-time pool growth vouched for the whole path
fn mid(out: &mut Vec<f64>) {
    grow(out);
}

fn grow(out: &mut Vec<f64>) {
    let v = vec![0.0];
    out.extend_from_slice(&v);
}
