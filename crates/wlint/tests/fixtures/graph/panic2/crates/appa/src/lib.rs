//! Hot entry reaching a slice index two hops down.

// wlint: hot
pub fn hot_entry(v: &[f64]) -> f64 {
    step(v)
}

fn step(v: &[f64]) -> f64 {
    pick(v)
}

fn pick(v: &[f64]) -> f64 {
    v[0]
}
