//! Trait-method dispatch and mutual recursion: the receiver-less method
//! call over-approximates to every `render_out` impl, and the ping/pong
//! cycle collapses to one SCC without losing the path to the allocation
//! behind it.

pub struct Fast;
pub struct Slow;

pub trait Render {
    fn render_out(&self, out: &mut Vec<f64>);
}

impl Render for Fast {
    fn render_out(&self, out: &mut Vec<f64>) {
        out.clear();
    }
}

impl Render for Slow {
    fn render_out(&self, out: &mut Vec<f64>) {
        let v = vec![1.0];
        out.extend_from_slice(&v);
    }
}

// wlint: hot
pub fn hot_entry(r: &Fast, out: &mut Vec<f64>) {
    r.render_out(out);
}

// wlint: hot
pub fn hot_cycle(n: u32, out: &mut Vec<f64>) {
    ping(n, out);
}

fn ping(n: u32, out: &mut Vec<f64>) {
    if n > 0 {
        pong(n - 1, out);
    }
}

fn pong(n: u32, out: &mut Vec<f64>) {
    out.push(f64::from(n));
    if n > 0 {
        ping(n - 1, out);
    }
    grow(out);
}

fn grow(out: &mut Vec<f64>) {
    let copy = out.to_vec();
    out.extend_from_slice(&copy);
}
