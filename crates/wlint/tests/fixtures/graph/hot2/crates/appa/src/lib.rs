//! Hot entry whose allocation sits two hops and one crate away, reached
//! through a cross-crate `use` rename.

use appb::helpers::grow as grow_buf;

// wlint: hot
pub fn hot_entry(out: &mut Vec<f64>) {
    mid(out);
}

fn mid(out: &mut Vec<f64>) {
    grow_buf(out);
}
