//! The allocating helper the hot entry reaches.

pub fn grow(out: &mut Vec<f64>) {
    let v = vec![0.0];
    out.extend_from_slice(&v);
}
