struct Scratch {
    bands: Vec<Vec<f64>>,
    tmp: Vec<f64>,
}

// wlint: hot
fn denoise_packet(xs: &[f64], scratch: &mut Scratch, out: &mut Vec<f64>) {
    // Growing the band pool with a constructor *path* (no call parens) is
    // legal: steady-state reuses the pool without reallocating.
    scratch.bands.resize_with(4, Vec::new);
    scratch.tmp.clear();
    scratch.tmp.extend(xs.iter().map(|x| x * 0.5));
    out.clear();
    out.extend_from_slice(&scratch.tmp);
}

// Unmarked functions may allocate freely.
fn cold_setup(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0.0);
    v
}
