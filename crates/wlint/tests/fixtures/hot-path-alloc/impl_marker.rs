//! Regression for the marker-binding bugfix: a `// wlint: hot` marker
//! followed by an `impl` must NOT bind past it onto the method inside.
//! The marker is reported as unbound and `grow` stays cold — its `vec!`
//! must not fire hot-path-alloc.

// wlint: hot
impl Pool {
    fn grow(&mut self) {
        self.slots = vec![0.0];
    }
}
