// wlint: hot
fn denoise_packet(xs: &[f64], out: &mut Vec<f64>) {
    let tmp: Vec<f64> = xs.iter().map(|x| x * 0.5).collect();
    out.clear();
    out.extend_from_slice(&tmp);
}
