fn quantize(x: f64) -> i8 {
    let clamped = (x * 127.0).round().clamp(-128.0, 127.0);
    // wlint: allow(float-cast) — clamped to the i8 range one line above
    clamped as i8
}
