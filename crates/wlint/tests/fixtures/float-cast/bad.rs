fn quantize(x: f64) -> i8 {
    (x * 127.0).round() as i8
}
