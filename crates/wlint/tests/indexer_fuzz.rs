//! Property tests: the lexer, indexer, and full interprocedural pass
//! must never panic on hostile input. Sources here are arbitrary
//! character soup — truncated tokens, unbalanced brackets, stray
//! pragmas — fed through the same single-file entry the CLI uses.

use proptest::prelude::*;

proptest! {
    #[test]
    fn lint_source_never_panics_on_arbitrary_text(
        codes in proptest::collection::vec(0u32..0x11_0000u32, 0..400usize)
    ) {
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let report = wimi_lint::lint_source("crates/wiphy/src/fuzz.rs", &src);
        // Line numbers in findings must point into the source.
        let lines = src.lines().count() as u32 + 1;
        for v in &report.violations {
            prop_assert!(v.line <= lines.max(1));
        }
    }

    #[test]
    fn lint_source_never_panics_on_rust_shaped_soup(
        pieces in proptest::collection::vec(0usize..16usize, 0..60usize)
    ) {
        const FRAGMENTS: [&str; 16] = [
            "fn f(", ") {", "}", "vec![", "]", "// wlint: hot\n",
            "// wlint: allow(panic) — x\n", "impl T {", "::", "x.unwrap()",
            "std::time::Instant::now()", "v[i]", "Vec::<f64>::new(",
            "use a::b as c;", "\"unterminated", "'a ",
        ];
        let src: String = pieces
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = wimi_lint::lint_source("crates/experiments/src/fuzz.rs", &src);
    }
}
