//! End-to-end tests of the `wimi-lint` binary: exit codes, `--explain`,
//! `--list-rules`, `--graph`, and the byte-stability contract of
//! `--sarif` output across repeated runs and thread settings.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_wimi-lint")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(args: &[&str], threads: Option<&str>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    match threads {
        Some(t) => {
            cmd.env("WIMI_THREADS", t);
        }
        None => {
            cmd.env_remove("WIMI_THREADS");
        }
    }
    cmd.output().expect("binary runs")
}

#[test]
fn explain_prints_rule_documentation() {
    let out = run(&["--explain", "hot-path-alloc"], None);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("hot-path-alloc — "), "got: {text}");
    assert!(
        text.len() > 120,
        "explain text should be substantial, got {} bytes",
        text.len()
    );
}

#[test]
fn explain_unknown_rule_exits_2() {
    let out = run(&["--explain", "no-such-rule"], None);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown rule `no-such-rule`"), "got: {err}");
    assert!(err.contains("--list-rules"), "got: {err}");
}

#[test]
fn list_rules_includes_the_interprocedural_rules() {
    let out = run(&["--list-rules"], None);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for rule in ["hot-path-alloc", "panic-reach", "determinism-taint"] {
        assert!(text.contains(rule), "missing {rule} in: {text}");
    }
}

#[test]
fn sarif_is_byte_identical_across_runs_and_thread_settings() {
    let root = workspace_root();
    let root = root.to_str().unwrap();
    let first = run(&["--sarif", "--root", root], Some("1"));
    assert!(
        first.status.success(),
        "workspace should lint clean; stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = run(&["--sarif", "--root", root], Some("1"));
    assert_eq!(first.stdout, second.stdout, "sarif differs run-to-run");
    let threaded = run(&["--sarif", "--root", root], Some("4"));
    assert_eq!(
        first.stdout, threaded.stdout,
        "sarif differs across WIMI_THREADS"
    );
    let text = String::from_utf8(first.stdout).unwrap();
    assert!(text.contains("https://json.schemastore.org/sarif-2.1.0.json"));
    assert!(text.contains("\"name\": \"wimi-lint\""));
}

#[test]
fn graph_dump_is_deterministic() {
    let root = workspace_root();
    let root = root.to_str().unwrap();
    let a = run(&["--graph", "--root", root], None);
    assert!(a.status.success());
    let b = run(&["--graph", "--root", root], None);
    assert_eq!(a.stdout, b.stdout);
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("->"), "graph edges missing: {text}");
}

#[test]
fn violating_fixture_tree_exits_1() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph/hot2");
    let out = run(&["--root", fixture.to_str().unwrap()], None);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("hot-path-alloc"), "got: {text}");
}
