//! SARIF 2.1.0 emitter (`--sarif`) for GitHub code-scanning upload.
//!
//! Hand-built JSON against the minimal required surface of the schema:
//! `$schema`/`version`, one run with a tool driver declaring every rule,
//! and one `result` per violation (suppressed occurrences are included
//! with an `inSource` suppression object so the audit trail survives the
//! upload). Everything is emitted from pre-sorted vectors on one thread,
//! so the output is byte-identical run to run and across `WIMI_THREADS`
//! settings — CI diffs two consecutive runs to enforce that.

use crate::json_str;
use crate::rules::Rule;
use crate::LintReport;

/// Renders the report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"wimi-lint\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str(
        "          \"informationUri\": \"https://github.com/wimi-rs/wimi\",\n          \"rules\": [\n",
    );
    let rules = rule_ids();
    for (i, rule) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \"helpUri\": \"https://github.com/wimi-rs/wimi/blob/main/DESIGN.md#14-static-analysis-the-workspace-call-graph\"}}{}\n",
            json_str(rule.name()),
            json_str(rule.description()),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");

    let total = report.violations.len() + report.suppressed.len();
    let mut emitted = 0usize;
    let mut push_result = |rule: Rule,
                           file: &str,
                           line: u32,
                           message: &str,
                           suppression: Option<&str>| {
        emitted += 1;
        let idx = rules
            .iter()
            .position(|r| *r == rule)
            .expect("every rule is declared in the driver");
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": {}, \"ruleIndex\": {},\n",
            json_str(rule.name()),
            idx
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(message)
        ));
        out.push_str(&format!(
                "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]{}\n",
                json_str(file),
                line,
                if suppression.is_some() { "," } else { "" }
            ));
        if let Some(reason) = suppression {
            out.push_str(&format!(
                "          \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}]\n",
                json_str(reason)
            ));
        }
        out.push_str(&format!(
            "        }}{}\n",
            if emitted < total { "," } else { "" }
        ));
    };

    for v in &report.violations {
        push_result(v.rule, &v.file, v.line, &v.message, None);
    }
    for s in &report.suppressed {
        push_result(s.rule, &s.file, s.line, &s.message, Some(&s.reason));
    }

    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// The driver's rule table: every rule, in `Rule::ALL` order.
fn rule_ids() -> Vec<Rule> {
    Rule::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Suppression, Violation};

    fn sample() -> LintReport {
        let mut r = LintReport::default();
        r.files.push("crates/x/src/lib.rs".to_string());
        r.violations.push(Violation {
            rule: Rule::Panic,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            message: "msg with \"quotes\"".to_string(),
        });
        r.suppressed.push(Suppression {
            rule: Rule::WallClock,
            file: "crates/x/src/lib.rs".to_string(),
            line: 9,
            reason: "why".to_string(),
            message: "m".to_string(),
        });
        r
    }

    #[test]
    fn sarif_has_required_fields_and_declared_rules() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"wimi-lint\""));
        for rule in Rule::ALL {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", rule.name())),
                "rule {} missing from driver",
                rule.name()
            );
        }
        assert!(s.contains("\"ruleId\": \"panic\""));
        assert!(s.contains("msg with \\\"quotes\\\""));
        assert!(s.contains("\"kind\": \"inSource\""));
        assert!(s.contains("\"startLine\": 3"));
    }

    #[test]
    fn sarif_is_deterministic() {
        let r = sample();
        assert_eq!(render_sarif(&r), render_sarif(&r));
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let s = render_sarif(&LintReport::default());
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
