//! The lint rules and the per-file scanning engine.
//!
//! Every rule is named, documented and individually suppressable with an
//! inline pragma on (or immediately above) the offending line:
//!
//! ```text
//! // wlint: allow(<rule>) — <why this occurrence is sound>
//! ```
//!
//! The justification is mandatory; a pragma without one is itself reported.

use crate::lexer::{lex, Pragma, Tok, Token};

/// The library crates whose non-test code must stay panic-free and
/// wall-clock-free: errors flow through the `wimi_core::error` taxonomy and
/// results must be bitwise reproducible under any thread count.
pub const LIBRARY_CRATES: [&str; 7] = [
    "wiphy",
    "wdsp",
    "wml",
    "core",
    "wobs",
    "wtrace",
    "wcampaign",
];

/// Crates whose public `f64` parameters must use the `units.rs` newtypes
/// when dimensionally named.
pub const UNIT_SAFE_CRATES: [&str; 2] = ["wiphy", "core"];

/// The one module allowed to spawn OS threads (the deterministic scoped
/// fan-out all parallel code must route through).
pub const THREAD_SPAWN_ALLOWED: &str = "crates/wml/src/par.rs";

/// Parameter-name segments (split on `_`) that denote a physical dimension
/// and therefore demand a `Meters`/`Hertz`/`Seconds` newtype over raw `f64`.
const DIMENSIONAL_SEGMENTS: [&str; 24] = [
    "freq",
    "freqs",
    "frequency",
    "dist",
    "distance",
    "delay",
    "delays",
    "len",
    "length",
    "d",
    "dur",
    "duration",
    "sec",
    "secs",
    "seconds",
    "wavelength",
    "spacing",
    "radius",
    "diameter",
    "height",
    "width",
    "depth",
    "offset",
    "time",
];

/// Integer types a bare `as` cast can silently truncate a float into.
const INT_TYPES: [&str; 12] = [
    "i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64", "i128", "u128", "isize", "usize",
];

/// Assert-family macros inside which exact float comparison is a contract
/// check that fails loudly, not a silent logic fork — exempt from
/// `float-eq`.
const ASSERT_MACROS: [&str; 8] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "prop_assert",
    "prop_assert_eq",
];

/// Every rule the linter enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `SystemTime` / `Instant::now` in library crates: wall-clock reads
    /// break bitwise reproducibility of the parallel fan-out.
    WallClock,
    /// `thread_rng` / `OsRng` / `from_entropy`: ambient entropy escapes the
    /// seeded-RNG discipline.
    AmbientRng,
    /// `HashMap` / `HashSet` anywhere: iteration order is unspecified, so
    /// any fold over one is a determinism hazard; use `BTreeMap`/`BTreeSet`
    /// or a sorted `Vec`.
    HashCollections,
    /// `thread::spawn` outside `wml::par`: unscoped threads bypass the
    /// `WIMI_THREADS`-bounded deterministic fan-out.
    ThreadSpawn,
    /// `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in library non-test code: failures must flow
    /// through the `Stage`/`IssueKind` error taxonomy.
    Panic,
    /// `==` / `!=` against a float literal outside assert macros: exact
    /// float comparison forks logic on representation noise.
    FloatEq,
    /// Bare `as` integer cast in the CSI quantisation paths: lossy
    /// truncation must go through a checked helper.
    FloatCast,
    /// A public `fn` in a unit-safe crate taking a dimensionally named raw
    /// `f64` parameter instead of a `units.rs` newtype.
    UnitNewtype,
    /// A malformed `wlint:` pragma (bad syntax or missing justification).
    BadPragma,
    /// Heap allocation inside a `// wlint: hot` function: the hot path
    /// runs per packet/subcarrier and must reuse caller-provided scratch.
    HotPathAlloc,
}

impl Rule {
    /// The rule's stable name, used in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashCollections => "hash-collections",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::Panic => "panic",
            Rule::FloatEq => "float-eq",
            Rule::FloatCast => "float-cast",
            Rule::UnitNewtype => "unit-newtype",
            Rule::BadPragma => "bad-pragma",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }

    /// All rules, for `--list-rules` style reporting.
    pub const ALL: [Rule; 10] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::HashCollections,
        Rule::ThreadSpawn,
        Rule::Panic,
        Rule::FloatEq,
        Rule::FloatCast,
        Rule::UnitNewtype,
        Rule::BadPragma,
        Rule::HotPathAlloc,
    ];

    /// One-line description of the invariant the rule protects.
    pub fn description(self) -> &'static str {
        match self {
            Rule::WallClock => "no wall-clock reads (SystemTime/Instant::now) in library crates",
            Rule::AmbientRng => {
                "no ambient entropy (thread_rng/OsRng/from_entropy) in library crates"
            }
            Rule::HashCollections => "no HashMap/HashSet anywhere (unspecified iteration order)",
            Rule::ThreadSpawn => "thread::spawn only inside wml::par",
            Rule::Panic => "no unwrap/expect/panic!/unreachable! in library non-test code",
            Rule::FloatEq => "no ==/!= against float literals outside assert macros",
            Rule::FloatCast => "no bare `as` integer casts in CSI quantisation paths",
            Rule::UnitNewtype => "dimensional public fn params must use unit newtypes, not f64",
            Rule::BadPragma => "wlint pragmas must name a rule and give a justification",
            Rule::HotPathAlloc => {
                "no heap allocation (Vec::new()/vec!/collect/to_vec) in `// wlint: hot` functions"
            }
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
}

/// One suppressed (pragma-allowed) occurrence, recorded for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule that would have fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the suppressed occurrence.
    pub line: u32,
    /// The justification written in the pragma.
    pub reason: String,
    /// What the violation would have said.
    pub message: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed violations.
    pub violations: Vec<Violation>,
    /// Pragma-suppressed occurrences.
    pub suppressed: Vec<Suppression>,
}

/// Derives the crate short name from a workspace-relative path
/// (`crates/wiphy/src/csi.rs` → `wiphy`; the facade `src/lib.rs` → `wimi`).
fn crate_of(rel_path: &str) -> &str {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1]
    } else {
        "wimi"
    }
}

/// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].kind != Tok::Punct("#") || tokens[i + 1].kind != Tok::Punct("[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        let mut attr_end = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct("[") => depth += 1,
                Tok::Punct("]") => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(j);
                        break;
                    }
                }
                Tok::Ident(s) => attr_idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => attr_idents.contains(&"test") && !attr_idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Find the item body: the first `{` before a top-level `;`.
        let mut k = attr_end + 1;
        let mut body_open = None;
        while k < tokens.len() {
            match tokens[k].kind {
                Tok::Punct("{") => {
                    body_open = Some(k);
                    break;
                }
                Tok::Punct(";") => break,
                _ => k += 1,
            }
        }
        let Some(open) = body_open else {
            i = attr_end + 1;
            continue;
        };
        let mut brace = 0usize;
        let mut close = open;
        for (n, t) in tokens.iter().enumerate().skip(open) {
            match t.kind {
                Tok::Punct("{") => brace += 1,
                Tok::Punct("}") => {
                    brace -= 1;
                    if brace == 0 {
                        close = n;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push((attr_start_line, tokens[close].line));
        i = close + 1;
    }
    regions
}

/// Token-index spans lying inside assert-family macro invocations.
fn assert_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        let is_assert =
            matches!(&tokens[i].kind, Tok::Ident(s) if ASSERT_MACROS.contains(&s.as_str()));
        if is_assert && tokens[i + 1].kind == Tok::Punct("!") {
            let open = &tokens[i + 2].kind;
            let (o, c) = match open {
                Tok::Punct("(") => ("(", ")"),
                Tok::Punct("[") => ("[", "]"),
                Tok::Punct("{") => ("{", "}"),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < tokens.len() {
                if tokens[j].kind == Tok::Punct(o) {
                    depth += 1;
                } else if tokens[j].kind == Tok::Punct(c) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            spans.push((i, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Lints one file's source. `rel_path` must be workspace-relative with
/// forward slashes (it drives crate/file scoping).
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let krate = crate_of(rel_path);
    let is_lib = LIBRARY_CRATES.contains(&krate);
    let is_unit_safe = UNIT_SAFE_CRATES.contains(&krate);
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let is_quant_path = file_name == "csi.rs" || file_name == "hardware.rs";

    let regions = test_regions(tokens);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| line >= a && line <= b);
    let asserts = assert_spans(tokens);
    let in_assert = |idx: usize| asserts.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut found: Vec<Violation> = Vec::new();
    let mut push = |rule: Rule, line: u32, message: String| {
        found.push(Violation {
            rule,
            file: rel_path.to_string(),
            line,
            message,
        });
    };

    for (line, msg) in &lexed.bad_pragmas {
        push(Rule::BadPragma, *line, msg.clone());
    }

    for idx in 0..tokens.len() {
        let t = &tokens[idx];
        let line = t.line;
        let next = tokens.get(idx + 1);
        let next2 = tokens.get(idx + 2);
        match &t.kind {
            Tok::Ident(s) => {
                let s = s.as_str();
                // Determinism: wall clock and ambient entropy in library
                // crates (test code included — timed or entropy-seeded
                // tests are exactly the flaky kind CI's determinism job
                // exists to prevent).
                if is_lib {
                    if s == "SystemTime" {
                        push(
                            Rule::WallClock,
                            line,
                            "`SystemTime` read in a library crate".to_string(),
                        );
                    }
                    if s == "Instant"
                        && matches!(next.map(|t| &t.kind), Some(Tok::Punct("::")))
                        && matches!(next2.map(|t| &t.kind), Some(Tok::Ident(n)) if n == "now")
                    {
                        push(
                            Rule::WallClock,
                            line,
                            "`Instant::now()` in a library crate".to_string(),
                        );
                    }
                    if s == "thread_rng" || s == "OsRng" || s == "from_entropy" {
                        push(
                            Rule::AmbientRng,
                            line,
                            format!("ambient entropy source `{s}` in a library crate"),
                        );
                    }
                }
                // Determinism: hashed collections everywhere.
                if s == "HashMap" || s == "HashSet" {
                    push(
                        Rule::HashCollections,
                        line,
                        format!("`{s}` has unspecified iteration order; use BTreeMap/BTreeSet or a sorted Vec"),
                    );
                }
                // Determinism: thread::spawn outside wml::par.
                if s == "thread"
                    && matches!(next.map(|t| &t.kind), Some(Tok::Punct("::")))
                    && matches!(next2.map(|t| &t.kind), Some(Tok::Ident(n)) if n == "spawn")
                    && !rel_path.ends_with(THREAD_SPAWN_ALLOWED)
                {
                    push(
                        Rule::ThreadSpawn,
                        line,
                        "`thread::spawn` outside `wml::par` bypasses the deterministic fan-out"
                            .to_string(),
                    );
                }
                // Panic-freedom in library non-test code.
                if is_lib && !in_test(line) {
                    let is_macro_bang = matches!(next.map(|t| &t.kind), Some(Tok::Punct("!")));
                    if (s == "panic" || s == "unreachable" || s == "todo" || s == "unimplemented")
                        && is_macro_bang
                    {
                        push(
                            Rule::Panic,
                            line,
                            format!(
                                "`{s}!` in library non-test code; return a taxonomy error instead"
                            ),
                        );
                    }
                }
                // Lossy casts in quantisation paths.
                if is_quant_path
                    && !in_test(line)
                    && s == "as"
                    && matches!(next.map(|t| &t.kind), Some(Tok::Ident(ty)) if INT_TYPES.contains(&ty.as_str()))
                {
                    let ty = match next.map(|t| &t.kind) {
                        Some(Tok::Ident(ty)) => ty.clone(),
                        _ => String::new(),
                    };
                    push(
                        Rule::FloatCast,
                        line,
                        format!("bare `as {ty}` cast in a quantisation path; use a checked helper"),
                    );
                }
            }
            Tok::Punct(".") => {
                // `.unwrap()` / `.expect(` in library non-test code.
                match next.map(|t| &t.kind) {
                    Some(Tok::Ident(m))
                        if (m == "unwrap" || m == "expect") && is_lib && !in_test(line) =>
                    {
                        push(
                            Rule::Panic,
                            line,
                            format!(
                                "`.{m}()` in library non-test code; return a taxonomy error instead"
                            ),
                        );
                    }
                    _ => {}
                }
            }
            Tok::Punct(op @ ("==" | "!=")) => {
                if in_test(line) || in_assert(idx) {
                    continue;
                }
                let prev_float =
                    idx > 0 && matches!(tokens[idx - 1].kind, Tok::Num { is_float: true });
                let next_float = match next.map(|t| &t.kind) {
                    Some(Tok::Num { is_float }) => *is_float,
                    Some(Tok::Punct("-")) => {
                        matches!(next2.map(|t| &t.kind), Some(Tok::Num { is_float: true }))
                    }
                    _ => false,
                };
                if prev_float || next_float {
                    push(
                        Rule::FloatEq,
                        line,
                        format!("`{op}` against a float literal; compare with a tolerance or an ordering"),
                    );
                }
            }
            _ => {}
        }
    }

    if is_unit_safe {
        scan_unit_newtype(rel_path, tokens, &in_test, &mut found);
    }

    scan_hot_path_alloc(rel_path, tokens, &lexed.hot_markers, &mut found);

    apply_pragmas(rel_path, found, &lexed.pragmas)
}

/// Constructors whose *call* allocates; a bare path (e.g. `Vec::new` passed
/// to `resize_with` as a constructor function) does not fire.
const ALLOC_CTOR_TYPES: [&str; 7] = [
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Constructor method names that allocate when called on an
/// [`ALLOC_CTOR_TYPES`] type.
const ALLOC_CTOR_METHODS: [&str; 3] = ["new", "with_capacity", "from"];

/// Method calls that allocate a fresh buffer regardless of receiver.
const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_owned", "to_string"];

/// How many lines below a `// wlint: hot` marker the marked `fn` may start
/// (attributes and visibility qualifiers sit in between).
const HOT_MARKER_WINDOW: u32 = 5;

/// Enforces allocation-freedom inside `// wlint: hot` functions: the body
/// of the `fn` following each marker must not call `Vec::new()`/`vec![]`/
/// `.collect()`/`.to_vec()`/... — hot-path code reuses caller scratch.
fn scan_hot_path_alloc(
    rel_path: &str,
    tokens: &[Token],
    hot_markers: &[u32],
    found: &mut Vec<Violation>,
) {
    for &marker in hot_markers {
        // Bind the marker to the first `fn` on a later line, within a small
        // window so a stray marker cannot silently cover distant code.
        let fn_idx = tokens.iter().position(|t| {
            t.line > marker
                && t.line <= marker + HOT_MARKER_WINDOW
                && matches!(&t.kind, Tok::Ident(s) if s == "fn")
        });
        let Some(fn_idx) = fn_idx else {
            found.push(Violation {
                rule: Rule::HotPathAlloc,
                file: rel_path.to_string(),
                line: marker,
                message: format!(
                    "`// wlint: hot` marker does not precede a `fn` within {HOT_MARKER_WINDOW} lines"
                ),
            });
            continue;
        };
        let fn_name = match tokens.get(fn_idx + 1).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => s.clone(),
            _ => String::from("?"),
        };
        // Find the body: first `{` before a top-level `;` (a `;` means a
        // bodiless trait-method signature — nothing to scan).
        let mut k = fn_idx + 1;
        let mut open = None;
        while k < tokens.len() {
            match tokens[k].kind {
                Tok::Punct("{") => {
                    open = Some(k);
                    break;
                }
                Tok::Punct(";") => break,
                _ => k += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut close = tokens.len().saturating_sub(1);
        for (n, t) in tokens.iter().enumerate().skip(open) {
            match t.kind {
                Tok::Punct("{") => depth += 1,
                Tok::Punct("}") => {
                    depth -= 1;
                    if depth == 0 {
                        close = n;
                        break;
                    }
                }
                _ => {}
            }
        }

        for idx in open..=close {
            let t = &tokens[idx];
            let next = tokens.get(idx + 1).map(|t| &t.kind);
            let next2 = tokens.get(idx + 2).map(|t| &t.kind);
            let next3 = tokens.get(idx + 3).map(|t| &t.kind);
            let what: Option<String> = match &t.kind {
                // `vec![...]` / `format!(...)` macro allocations.
                Tok::Ident(s)
                    if (s == "vec" || s == "format") && next == Some(&Tok::Punct("!")) =>
                {
                    Some(format!("{s}!"))
                }
                // `Vec::new(...)`, `String::from(...)`, ... — the trailing
                // `(` is required, so passing `Vec::new` as a constructor
                // function (e.g. to `resize_with`) stays legal.
                Tok::Ident(s) if ALLOC_CTOR_TYPES.contains(&s.as_str()) => {
                    match (next, next2, next3) {
                        (Some(Tok::Punct("::")), Some(Tok::Ident(m)), Some(Tok::Punct("(")))
                            if ALLOC_CTOR_METHODS.contains(&m.as_str()) =>
                        {
                            Some(format!("{s}::{m}()"))
                        }
                        _ => None,
                    }
                }
                // `.collect()`, `.to_vec()`, `.to_owned()`, `.to_string()`.
                Tok::Punct(".") => match next {
                    Some(Tok::Ident(m)) if ALLOC_METHODS.contains(&m.as_str()) => {
                        Some(format!(".{m}()"))
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(what) = what {
                found.push(Violation {
                    rule: Rule::HotPathAlloc,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{what}` allocates inside hot-path fn `{fn_name}`; reuse caller-provided scratch"
                    ),
                });
            }
        }
    }
}

/// Scans for `pub fn` signatures taking dimensionally named raw `f64`
/// parameters.
fn scan_unit_newtype(
    rel_path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(&tokens[i].kind, Tok::Ident(s) if s == "pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip a `pub(crate)` / `pub(super)` visibility qualifier.
        if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct("("))) {
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].kind {
                    Tok::Punct("(") => depth += 1,
                    Tok::Punct(")") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Skip `const` / `async` / `unsafe` / `extern` qualifiers.
        while matches!(
            tokens.get(j).map(|t| &t.kind),
            Some(Tok::Ident(s)) if matches!(s.as_str(), "const" | "async" | "unsafe" | "extern")
        ) {
            j += 1;
        }
        if !matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Ident(s)) if s == "fn") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(fn_name)) = tokens.get(j + 1).map(|t| &t.kind) else {
            i = j + 1;
            continue;
        };
        let fn_name = fn_name.clone();
        let fn_line = tokens[j].line;
        // Skip generics (angle depth; `->`/`=>` are fused so `>` inside
        // them cannot miscount) to reach the parameter list.
        let mut k = j + 2;
        if matches!(tokens.get(k).map(|t| &t.kind), Some(Tok::Punct("<"))) {
            let mut angle = 0isize;
            while k < tokens.len() {
                match tokens[k].kind {
                    Tok::Punct("<") | Tok::Punct("<=") => angle += 1,
                    Tok::Punct(">") | Tok::Punct(">=") => {
                        angle -= 1;
                        if angle == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        if !matches!(tokens.get(k).map(|t| &t.kind), Some(Tok::Punct("("))) {
            i = k;
            continue;
        }
        // Walk the parameter list, splitting on top-level commas.
        let mut depth = 0usize;
        let mut param: Vec<&Token> = Vec::new();
        let mut params: Vec<Vec<&Token>> = Vec::new();
        while k < tokens.len() {
            let t = &tokens[k];
            match t.kind {
                Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                    if depth > 0 {
                        param.push(t);
                    }
                    depth += 1;
                }
                Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    param.push(t);
                }
                Tok::Punct(",") if depth == 1 => {
                    params.push(std::mem::take(&mut param));
                }
                _ => {
                    if depth >= 1 {
                        param.push(t);
                    }
                }
            }
            k += 1;
        }
        if !param.is_empty() {
            params.push(param);
        }
        if !in_test(fn_line) {
            for p in &params {
                check_param(rel_path, &fn_name, p, found);
            }
        }
        i = k + 1;
    }
}

/// Flags a single `name: f64` parameter whose name is dimensional.
fn check_param(rel_path: &str, fn_name: &str, param: &[&Token], found: &mut Vec<Violation>) {
    // Find the top-level `:` separating pattern from type.
    let colon = param.iter().position(|t| t.kind == Tok::Punct(":"));
    let Some(colon) = colon else { return };
    // The type must be exactly `f64`.
    let ty: Vec<&&Token> = param[colon + 1..].iter().collect();
    if ty.len() != 1 || !matches!(&ty[0].kind, Tok::Ident(s) if s == "f64") {
        return;
    }
    // The binding name is the last identifier before the colon.
    let Some(name_tok) = param[..colon]
        .iter()
        .rev()
        .find(|t| matches!(t.kind, Tok::Ident(_)))
    else {
        return;
    };
    let Tok::Ident(name) = &name_tok.kind else {
        return;
    };
    if name == "self" {
        return;
    }
    let dimensional = name
        .split('_')
        .any(|seg| DIMENSIONAL_SEGMENTS.contains(&seg));
    if dimensional {
        found.push(Violation {
            rule: Rule::UnitNewtype,
            file: rel_path.to_string(),
            line: name_tok.line,
            message: format!(
                "`pub fn {fn_name}` takes dimensional parameter `{name}: f64`; use a units.rs newtype (Meters/Hertz/Seconds)"
            ),
        });
    }
}

/// Splits raw findings into suppressed and surviving sets using the file's
/// pragmas. A standalone pragma covers the next code line(s) down to the
/// first line it can bind to; a trailing pragma covers its own line.
fn apply_pragmas(rel_path: &str, found: Vec<Violation>, pragmas: &[Pragma]) -> FileReport {
    let mut report = FileReport::default();
    for v in found {
        let hit = pragmas.iter().find(|p| {
            p.rule == v.rule.name()
                && if p.standalone {
                    // A standalone pragma suppresses occurrences on the
                    // lines immediately following it (a small window lets
                    // one pragma cover a wrapped statement).
                    v.line > p.line && v.line <= p.line + 3
                } else {
                    v.line == p.line
                }
        });
        match hit {
            Some(p) => report.suppressed.push(Suppression {
                rule: v.rule,
                file: rel_path.to_string(),
                line: v.line,
                reason: p.reason.clone(),
                message: v.message,
            }),
            None => report.violations.push(v),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/wiphy/src/fake.rs";
    const APP: &str = "crates/experiments/src/fake.rs";

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests() {
        let src = "
fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = \"x\".parse::<u32>().unwrap(); }
}
";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, Rule::Panic);
        assert_eq!(r.violations[0].line, 2);
        // Same code in a non-library crate is fine.
        assert!(lint_source(APP, src).violations.is_empty());
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source(APP, src).violations.len(), 1);
        assert_eq!(lint_source(LIB, src).violations.len(), 1);
    }

    #[test]
    fn pragma_suppresses_and_is_recorded() {
        let src = "
// wlint: allow(panic) — slice is non-empty by construction
fn f(v: &[u32]) -> u32 { *v.first().unwrap() }
";
        let r = lint_source(LIB, src);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0].reason.contains("non-empty"));
    }

    #[test]
    fn pragma_without_reason_is_a_violation() {
        let src = "
// wlint: allow(panic)
fn f(v: &[u32]) -> u32 { *v.first().unwrap() }
";
        let r = lint_source(LIB, src);
        let rules: Vec<Rule> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::BadPragma));
        assert!(rules.contains(&Rule::Panic));
    }

    #[test]
    fn float_eq_exempt_inside_asserts() {
        let src = "
fn f(x: f64) -> bool { x == 0.5 }
fn g(x: f64) { assert!(x == 0.5, \"exact\"); }
";
        let r = lint_source(APP, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn unit_newtype_flags_dimensional_f64() {
        let src = "pub fn los(freq_hz: f64, d_ref: f64, gain: f64) {}\n";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(r.violations.iter().all(|v| v.rule == Rule::UnitNewtype));
        // Non-unit-safe crates are not scanned.
        assert!(lint_source("crates/wml/src/fake.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn thread_spawn_allowed_only_in_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_source(APP, src).violations.len(), 1);
        assert!(lint_source("crates/wml/src/par.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn wall_clock_and_rng_only_in_lib_crates() {
        let src = "fn f() { let _ = std::time::Instant::now(); let _ = rand::thread_rng(); }\n";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 2);
        assert!(lint_source(APP, src).violations.is_empty());
    }

    #[test]
    fn hot_path_alloc_fires_only_inside_marked_fn() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<f64>) {
    let v: Vec<f64> = Vec::new();
    let w = vec![0.0];
    let c: Vec<f64> = w.iter().map(|x| x + 1.0).collect();
    out.extend(c);
    let _ = v;
}
fn cold() -> Vec<f64> {
    Vec::new()
}
";
        let r = lint_source(LIB, src);
        let hot: Vec<&Violation> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::HotPathAlloc)
            .collect();
        assert_eq!(hot.len(), 3, "{:?}", hot);
        assert!(hot.iter().all(|v| v.line >= 4 && v.line <= 6));
    }

    #[test]
    fn hot_path_alloc_permits_constructor_paths_and_scratch_reuse() {
        // `Vec::new` as a *function reference* (no call parens) is how
        // `resize_with` grows a scratch pool once — that must stay legal.
        let src = "
// wlint: hot
fn hot(scratch: &mut Scratch, out: &mut Vec<f64>) {
    scratch.details.resize_with(4, Vec::new);
    out.clear();
    out.extend_from_slice(&scratch.tmp);
}
";
        let r = lint_source(LIB, src);
        assert!(
            !r.violations.iter().any(|v| v.rule == Rule::HotPathAlloc),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn hot_path_alloc_is_pragma_suppressable() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<Vec<f64>>) {
    // wlint: allow(hot-path-alloc) — one-time pool growth, reused after
    out.resize(4, Vec::new());
}
";
        let r = lint_source(LIB, src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, Rule::HotPathAlloc);
    }

    #[test]
    fn hot_marker_must_precede_a_fn() {
        let src = "
// wlint: hot
const X: usize = 4;
";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, Rule::HotPathAlloc);
        assert!(r.violations[0].message.contains("does not precede"));
    }

    #[test]
    fn float_cast_scoped_to_quantisation_files() {
        let src = "fn q(x: f64) -> i8 { x as i8 }\n";
        assert_eq!(
            lint_source("crates/wiphy/src/csi.rs", src).violations.len(),
            1
        );
        assert!(lint_source(LIB, src).violations.is_empty());
    }
}
