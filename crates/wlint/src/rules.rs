//! The lint rules: per-file token scans plus the interprocedural rules
//! that run over the workspace call graph.
//!
//! Every rule is named, documented and individually suppressable with an
//! inline pragma on (or immediately above) the offending line:
//!
//! ```text
//! // wlint: allow(<rule>) — <why this occurrence is sound>
//! ```
//!
//! The justification is mandatory; a pragma without one is itself reported.
//! For the interprocedural rules (`hot-path-alloc`, `panic-reach`,
//! `determinism-taint`) a pragma also suppresses by *path*: placed on the
//! line of (or immediately above) any function on the reported call path,
//! it vouches for every violation routed through that function.

use std::collections::BTreeMap;

use crate::graph::{fn_label, CallGraph, DepMap};
use crate::index::{crate_of, test_regions, TaintKind, WorkspaceIndex, MARKER_WINDOW};
use crate::lexer::{lex, LexOutput, Pragma, Tok, Token};

/// The library crates whose non-test code must stay panic-free and
/// wall-clock-free: errors flow through the `wimi_core::error` taxonomy and
/// results must be bitwise reproducible under any thread count.
pub const LIBRARY_CRATES: [&str; 9] = [
    "wiphy",
    "wdsp",
    "wml",
    "core",
    "wobs",
    "wtrace",
    "wcampaign",
    "wserve",
    "wmetrics",
];

/// The crates whose *public* functions count as library entry points for
/// `panic-reach`: anything a downstream caller can invoke directly.
pub const ENTRY_CRATES: [&str; 4] = ["wiphy", "wdsp", "wml", "core"];

/// Crates whose public `f64` parameters must use the `units.rs` newtypes
/// when dimensionally named.
pub const UNIT_SAFE_CRATES: [&str; 2] = ["wiphy", "core"];

/// The one module allowed to spawn OS threads (the deterministic scoped
/// fan-out all parallel code must route through).
pub const THREAD_SPAWN_ALLOWED: &str = "crates/wml/src/par.rs";

/// Parameter-name segments (split on `_`) that denote a physical dimension
/// and therefore demand a `Meters`/`Hertz`/`Seconds` newtype over raw `f64`.
const DIMENSIONAL_SEGMENTS: [&str; 24] = [
    "freq",
    "freqs",
    "frequency",
    "dist",
    "distance",
    "delay",
    "delays",
    "len",
    "length",
    "d",
    "dur",
    "duration",
    "sec",
    "secs",
    "seconds",
    "wavelength",
    "spacing",
    "radius",
    "diameter",
    "height",
    "width",
    "depth",
    "offset",
    "time",
];

/// Integer types a bare `as` cast can silently truncate a float into.
const INT_TYPES: [&str; 12] = [
    "i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64", "i128", "u128", "isize", "usize",
];

/// Assert-family macros inside which exact float comparison is a contract
/// check that fails loudly, not a silent logic fork — exempt from
/// `float-eq`.
const ASSERT_MACROS: [&str; 8] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "prop_assert",
    "prop_assert_eq",
];

/// Every rule the linter enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `SystemTime` / `Instant::now` in library crates: wall-clock reads
    /// break bitwise reproducibility of the parallel fan-out.
    WallClock,
    /// `thread_rng` / `OsRng` / `from_entropy`: ambient entropy escapes the
    /// seeded-RNG discipline.
    AmbientRng,
    /// `HashMap` / `HashSet` anywhere: iteration order is unspecified, so
    /// any fold over one is a determinism hazard; use `BTreeMap`/`BTreeSet`
    /// or a sorted `Vec`.
    HashCollections,
    /// `thread::spawn` outside `wml::par`: unscoped threads bypass the
    /// `WIMI_THREADS`-bounded deterministic fan-out.
    ThreadSpawn,
    /// `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in library non-test code: failures must flow
    /// through the `Stage`/`IssueKind` error taxonomy.
    Panic,
    /// `==` / `!=` against a float literal outside assert macros: exact
    /// float comparison forks logic on representation noise.
    FloatEq,
    /// Bare `as` integer cast in the CSI quantisation paths: lossy
    /// truncation must go through a checked helper.
    FloatCast,
    /// A public `fn` in a unit-safe crate taking a dimensionally named raw
    /// `f64` parameter instead of a `units.rs` newtype.
    UnitNewtype,
    /// A malformed `wlint:` pragma (bad syntax or missing justification).
    BadPragma,
    /// Heap allocation reachable from a `// wlint: hot` function: the hot
    /// path runs per packet/subcarrier and must reuse caller scratch.
    HotPathAlloc,
    /// A panic site (`panic!`-family, `.unwrap()`, `.expect(`, slice index)
    /// reachable from a hot fn or a public library entry point.
    PanicReach,
    /// An ambient-nondeterminism source reachable from a
    /// `// wlint: artifact` renderer: artifacts must be byte-stable.
    DeterminismTaint,
}

impl Rule {
    /// The rule's stable name, used in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashCollections => "hash-collections",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::Panic => "panic",
            Rule::FloatEq => "float-eq",
            Rule::FloatCast => "float-cast",
            Rule::UnitNewtype => "unit-newtype",
            Rule::BadPragma => "bad-pragma",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::PanicReach => "panic-reach",
            Rule::DeterminismTaint => "determinism-taint",
        }
    }

    /// Looks a rule up by its stable name (for `--explain`).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// All rules, for `--list-rules` style reporting.
    pub const ALL: [Rule; 12] = [
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::HashCollections,
        Rule::ThreadSpawn,
        Rule::Panic,
        Rule::FloatEq,
        Rule::FloatCast,
        Rule::UnitNewtype,
        Rule::BadPragma,
        Rule::HotPathAlloc,
        Rule::PanicReach,
        Rule::DeterminismTaint,
    ];

    /// One-line description of the invariant the rule protects.
    pub fn description(self) -> &'static str {
        match self {
            Rule::WallClock => "no wall-clock reads (SystemTime/Instant::now) in library crates",
            Rule::AmbientRng => {
                "no ambient entropy (thread_rng/OsRng/from_entropy) in library crates"
            }
            Rule::HashCollections => "no HashMap/HashSet anywhere (unspecified iteration order)",
            Rule::ThreadSpawn => "thread::spawn only inside wml::par",
            Rule::Panic => "no unwrap/expect/panic!/unreachable! in library non-test code",
            Rule::FloatEq => "no ==/!= against float literals outside assert macros",
            Rule::FloatCast => "no bare `as` integer casts in CSI quantisation paths",
            Rule::UnitNewtype => "dimensional public fn params must use unit newtypes, not f64",
            Rule::BadPragma => "wlint pragmas must name a rule and give a justification",
            Rule::HotPathAlloc => {
                "no heap allocation reachable from a `// wlint: hot` function (transitive)"
            }
            Rule::PanicReach => {
                "no panic site reachable from hot fns or public library entry points"
            }
            Rule::DeterminismTaint => {
                "no nondeterminism source reachable from a `// wlint: artifact` renderer"
            }
        }
    }

    /// The long-form rationale printed by `wimi-lint --explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "Library crates must be bitwise reproducible under any WIMI_THREADS \
                 setting, and a wall-clock read (SystemTime::now, Instant::now) injects \
                 scheduling-dependent values into results. Timing belongs in the bench \
                 and experiments crates; library code takes logical clocks as inputs.\n\
                 Suppress a provably result-inert read with\n\
                 `// wlint: allow(wall-clock) — <why the value cannot reach a result>`.\n\
                 Note: an allowed wall-clock read still counts as a `determinism-taint` \
                 source — the taint rule must be suppressed separately if an artifact \
                 renderer can reach it."
            }
            Rule::AmbientRng => {
                "All randomness flows from explicit per-job seeds so any measurement can \
                 be replayed exactly. thread_rng/OsRng/from_entropy read ambient entropy \
                 the replay cannot reproduce. Thread seeded SmallRng (or the vendored \
                 stand-in) through call arguments instead."
            }
            Rule::HashCollections => {
                "std's HashMap/HashSet use randomized hashing, so iteration order differs \
                 run to run; any fold, render, or fan-out over one silently breaks the \
                 byte-identical artifact contract. Use BTreeMap/BTreeSet or a sorted Vec. \
                 The `determinism-taint` rule additionally reports hash collections that \
                 are *reachable* from artifact renderers through calls."
            }
            Rule::ThreadSpawn => {
                "wml::par::map is the single sanctioned fan-out: it bounds workers by \
                 WIMI_THREADS, assigns work deterministically, and joins in order. A raw \
                 thread::spawn anywhere else escapes that discipline and the determinism \
                 CI job's thread-count sweep."
            }
            Rule::Panic => {
                "Library crates degrade gracefully: fallible paths return the \
                 Stage/IssueKind error taxonomy so the pipeline can screen, remap, and \
                 retry. unwrap/expect/panic! turn recoverable conditions into aborts. \
                 This rule flags panic sites *where they are written*; `panic-reach` \
                 complements it by tracing reachability from entry points through the \
                 call graph. Suppress with a local impossibility proof:\n\
                 `// wlint: allow(panic) — <why this cannot fire>` — that pragma also \
                 vouches the site for `panic-reach`."
            }
            Rule::FloatEq => {
                "Exact ==/!= against a float literal forks logic on representation noise \
                 (the same value can arrive as 0.4999999...). Compare with an epsilon or \
                 restructure around an ordering. Assert macros are exempt: there the \
                 exactness IS the contract, and the failure is loud."
            }
            Rule::FloatCast => {
                "The CSI quantisation paths (csi.rs, hardware.rs) model fixed-width ADC \
                 behaviour; a bare `as iN` cast saturates/truncates silently and has \
                 already produced off-by-one quantisation bugs. Route conversions through \
                 the checked helpers that make the clamping explicit."
            }
            Rule::UnitNewtype => {
                "Public APIs in wiphy/core mix metres, hertz and seconds; a raw `f64` \
                 parameter named like a dimension (freq_hz, distance_m) invites silent \
                 unit swaps at call sites. Take the units.rs newtypes \
                 (Meters/Hertz/Seconds) instead."
            }
            Rule::BadPragma => {
                "Suppressions are part of the audit trail: every \
                 `// wlint: allow(<rule>)` must name a real rule and carry a \
                 justification after an em dash/hyphen/colon. A malformed pragma would \
                 otherwise silently suppress nothing (or the wrong thing)."
            }
            Rule::HotPathAlloc => {
                "Functions marked `// wlint: hot` run per packet/subcarrier in the \
                 steady-state identification path; PR6's scratch-arena work got them to \
                 ~2 allocations per capture, and CI gates on that budget. This rule is \
                 TRANSITIVE: an allocation site (Vec::new()/vec!/format!/.collect()/\
                 .to_vec()/.to_owned()/.to_string()) anywhere in the call graph reachable \
                 from a hot fn is flagged, with the full call path in the message. \
                 Constructor *paths* without a call (`resize_with(n, Vec::new)`) stay \
                 legal. Suppress at the site, or vouch for a whole path by placing\n\
                 `// wlint: allow(hot-path-alloc) — <reason>` on/above any fn on the \
                 reported path (e.g. a one-time pool-growth helper)."
            }
            Rule::PanicReach => {
                "Reachability version of `panic`: a panic!-family macro, .unwrap()/\
                 .expect(), or slice-index site reachable from a `// wlint: hot` fn or a \
                 public entry point of wiphy/wdsp/wml/core can abort the pipeline from a \
                 caller that never sees the dangerous code. Sites inside library crates \
                 are already flagged (or vouched) by the site-level `panic` rule, so this \
                 rule reports: panic sites that leak in through non-library helper \
                 crates, and slice-index sites reachable from hot fns (index panics in \
                 the per-packet path are both a crash and a bounds-check cost). A site \
                 pragma for `panic` or `panic-reach` vouches the site; a \
                 `// wlint: allow(panic-reach) — <reason>` on/above any fn on the \
                 reported path vouches the whole path (use for kernels whose indices are \
                 pinned by asserted invariants at the fn boundary)."
            }
            Rule::DeterminismTaint => {
                "Functions marked `// wlint: artifact` render the byte-identical \
                 wimi-obs/1, wimi-trace/1 and wimi-campaign/1 artifacts that CI diffs \
                 across runs and WIMI_THREADS settings. This rule flags ambient \
                 nondeterminism sources reachable from any artifact renderer: \
                 Instant::now/SystemTime::now, env::var outside the WIMI_THREADS/\
                 WIMI_CHUNK allowlist, thread::current (thread IDs), and HashMap/HashSet \
                 (iteration order). Deliberately asymmetric with the site rules: an \
                 `allow(wall-clock)` pragma does NOT vouch a source for this rule — a \
                 read may be harmless where it happens yet fatal once a renderer can \
                 reach it. Suppress with `allow(determinism-taint)` at the source or \
                 on/above any fn on the reported path."
            }
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
}

/// One suppressed (pragma-allowed) occurrence, recorded for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule that would have fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the suppressed occurrence.
    pub line: u32,
    /// The justification written in the pragma.
    pub reason: String,
    /// What the violation would have said.
    pub message: String,
}

/// Result of linting one file (kept for the single-file API).
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed violations.
    pub violations: Vec<Violation>,
    /// Pragma-suppressed occurrences.
    pub suppressed: Vec<Suppression>,
}

/// A raw finding before suppression: the violation plus the call path that
/// produced it (fn indices root→sink; empty for per-file findings).
struct Finding {
    v: Violation,
    path: Vec<usize>,
}

/// Aggregate result of linting a set of files together.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Unsuppressed violations, sorted by (file, line, rule, message).
    pub violations: Vec<Violation>,
    /// Pragma-suppressed occurrences, same order.
    pub suppressed: Vec<Suppression>,
    /// The symbol index (for `--graph`).
    pub index: WorkspaceIndex,
    /// The resolved call graph (for `--graph`).
    pub graph: CallGraph,
}

/// Lints one file in isolation. The interprocedural rules still run (over
/// the single-file call graph), so intra-file transitive violations fire.
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    let ws = lint_files(
        &[(rel_path.to_string(), source.to_string())],
        &DepMap::default(),
    );
    FileReport {
        violations: ws.violations,
        suppressed: ws.suppressed,
    }
}

/// Lints a set of files as one workspace: per-file token rules plus the
/// interprocedural rules over the shared call graph.
pub fn lint_files(files: &[(String, String)], deps: &DepMap) -> WorkspaceLint {
    let mut index = WorkspaceIndex::default();
    let mut findings: Vec<Finding> = Vec::new();
    for (rel_path, source) in files {
        let lexed = lex(source);
        for v in scan_file(rel_path, &lexed) {
            findings.push(Finding {
                v,
                path: Vec::new(),
            });
        }
        index.add_lexed(rel_path, &lexed);
    }
    let graph = CallGraph::build(&index, deps);
    findings.extend(interprocedural(&index, &graph));

    let (mut violations, mut suppressed) = apply_suppressions(&index, findings);
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule.name(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.name(),
            &b.message,
        ))
    });
    suppressed.sort_by(|a, b| {
        (&a.file, a.line, a.rule.name(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.name(),
            &b.message,
        ))
    });
    WorkspaceLint {
        violations,
        suppressed,
        index,
        graph,
    }
}

/// The per-file token rules (everything that needs no call graph).
fn scan_file(rel_path: &str, lexed: &LexOutput) -> Vec<Violation> {
    let tokens = &lexed.tokens;
    let krate = crate_of(rel_path);
    let is_lib = LIBRARY_CRATES.contains(&krate);
    let is_unit_safe = UNIT_SAFE_CRATES.contains(&krate);
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let is_quant_path = file_name == "csi.rs" || file_name == "hardware.rs";

    let regions = test_regions(tokens);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| line >= a && line <= b);
    let asserts = assert_spans(tokens);
    let in_assert = |idx: usize| asserts.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut found: Vec<Violation> = Vec::new();
    let mut push = |rule: Rule, line: u32, message: String| {
        found.push(Violation {
            rule,
            file: rel_path.to_string(),
            line,
            message,
        });
    };

    for (line, msg) in &lexed.bad_pragmas {
        push(Rule::BadPragma, *line, msg.clone());
    }

    for idx in 0..tokens.len() {
        let t = &tokens[idx];
        let line = t.line;
        let next = tokens.get(idx + 1);
        let next2 = tokens.get(idx + 2);
        match &t.kind {
            Tok::Ident(s) => {
                let s = s.as_str();
                // Determinism: wall clock and ambient entropy in library
                // crates (test code included — timed or entropy-seeded
                // tests are exactly the flaky kind CI's determinism job
                // exists to prevent).
                if is_lib {
                    if s == "SystemTime" {
                        push(
                            Rule::WallClock,
                            line,
                            "`SystemTime` read in a library crate".to_string(),
                        );
                    }
                    if s == "Instant"
                        && matches!(next.map(|t| &t.kind), Some(Tok::Punct("::")))
                        && matches!(next2.map(|t| &t.kind), Some(Tok::Ident(n)) if n == "now")
                    {
                        push(
                            Rule::WallClock,
                            line,
                            "`Instant::now()` in a library crate".to_string(),
                        );
                    }
                    if s == "thread_rng" || s == "OsRng" || s == "from_entropy" {
                        push(
                            Rule::AmbientRng,
                            line,
                            format!("ambient entropy source `{s}` in a library crate"),
                        );
                    }
                }
                // Determinism: hashed collections everywhere.
                if s == "HashMap" || s == "HashSet" {
                    push(
                        Rule::HashCollections,
                        line,
                        format!("`{s}` has unspecified iteration order; use BTreeMap/BTreeSet or a sorted Vec"),
                    );
                }
                // Determinism: thread::spawn outside wml::par.
                if s == "thread"
                    && matches!(next.map(|t| &t.kind), Some(Tok::Punct("::")))
                    && matches!(next2.map(|t| &t.kind), Some(Tok::Ident(n)) if n == "spawn")
                    && !rel_path.ends_with(THREAD_SPAWN_ALLOWED)
                {
                    push(
                        Rule::ThreadSpawn,
                        line,
                        "`thread::spawn` outside `wml::par` bypasses the deterministic fan-out"
                            .to_string(),
                    );
                }
                // Panic-freedom in library non-test code.
                if is_lib && !in_test(line) {
                    let is_macro_bang = matches!(next.map(|t| &t.kind), Some(Tok::Punct("!")));
                    if (s == "panic" || s == "unreachable" || s == "todo" || s == "unimplemented")
                        && is_macro_bang
                    {
                        push(
                            Rule::Panic,
                            line,
                            format!(
                                "`{s}!` in library non-test code; return a taxonomy error instead"
                            ),
                        );
                    }
                }
                // Lossy casts in quantisation paths.
                if is_quant_path
                    && !in_test(line)
                    && s == "as"
                    && matches!(next.map(|t| &t.kind), Some(Tok::Ident(ty)) if INT_TYPES.contains(&ty.as_str()))
                {
                    let ty = match next.map(|t| &t.kind) {
                        Some(Tok::Ident(ty)) => ty.clone(),
                        _ => String::new(),
                    };
                    push(
                        Rule::FloatCast,
                        line,
                        format!("bare `as {ty}` cast in a quantisation path; use a checked helper"),
                    );
                }
            }
            Tok::Punct(".") => {
                // `.unwrap()` / `.expect(` in library non-test code.
                match next.map(|t| &t.kind) {
                    Some(Tok::Ident(m))
                        if (m == "unwrap" || m == "expect") && is_lib && !in_test(line) =>
                    {
                        push(
                            Rule::Panic,
                            line,
                            format!(
                                "`.{m}()` in library non-test code; return a taxonomy error instead"
                            ),
                        );
                    }
                    _ => {}
                }
            }
            Tok::Punct(op @ ("==" | "!=")) => {
                if in_test(line) || in_assert(idx) {
                    continue;
                }
                let prev_float =
                    idx > 0 && matches!(tokens[idx - 1].kind, Tok::Num { is_float: true });
                let next_float = match next.map(|t| &t.kind) {
                    Some(Tok::Num { is_float }) => *is_float,
                    Some(Tok::Punct("-")) => {
                        matches!(next2.map(|t| &t.kind), Some(Tok::Num { is_float: true }))
                    }
                    _ => false,
                };
                if prev_float || next_float {
                    push(
                        Rule::FloatEq,
                        line,
                        format!("`{op}` against a float literal; compare with a tolerance or an ordering"),
                    );
                }
            }
            _ => {}
        }
    }

    if is_unit_safe {
        scan_unit_newtype(rel_path, tokens, &in_test, &mut found);
    }

    found
}

/// Renders a call path as `` `a` → `b` → `c` `` using short fn labels.
fn render_path(ix: &WorkspaceIndex, path: &[usize]) -> String {
    path.iter()
        .map(|&v| format!("`{}`", fn_label(&ix.fns[v])))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// A reachability root with its BFS results, computed once per root.
struct RootSearch {
    root: usize,
    hot: bool,
    dist: Vec<u32>,
    pred: Vec<usize>,
}

/// Runs the three graph rules and the marker-binding diagnostics.
fn interprocedural(ix: &WorkspaceIndex, graph: &CallGraph) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();

    // A hot/artifact marker that bound to no `fn` is a misplaced contract:
    // report rather than silently covering nothing (or the wrong item).
    for (file, line, marker, found_kind) in &ix.unbound_markers {
        let rule = if *marker == "hot" {
            Rule::HotPathAlloc
        } else {
            Rule::DeterminismTaint
        };
        let found_what = if found_kind == "nothing" {
            String::new()
        } else {
            format!(" (next item is a `{found_kind}`)")
        };
        findings.push(Finding {
            v: Violation {
                rule,
                file: file.clone(),
                line: *line,
                message: format!(
                    "`// wlint: {marker}` marker does not precede a `fn` within {MARKER_WINDOW} lines{found_what}"
                ),
            },
            path: Vec::new(),
        });
    }

    let hot_roots: Vec<usize> = (0..ix.fns.len()).filter(|&i| ix.fns[i].is_hot).collect();
    let artifact_roots: Vec<usize> = (0..ix.fns.len())
        .filter(|&i| ix.fns[i].is_artifact)
        .collect();
    let pub_roots: Vec<usize> = (0..ix.fns.len())
        .filter(|&i| {
            let f = &ix.fns[i];
            f.is_pub && !f.in_test && !f.is_hot && ENTRY_CRATES.contains(&f.crate_dir.as_str())
        })
        .collect();

    let search = |roots: &[usize], hot: bool| -> Vec<RootSearch> {
        roots
            .iter()
            .map(|&root| {
                let (dist, pred) = graph.bfs(root);
                RootSearch {
                    root,
                    hot,
                    dist,
                    pred,
                }
            })
            .collect()
    };
    let hot_searches = search(&hot_roots, true);
    let artifact_searches = search(&artifact_roots, false);
    let pub_searches = search(&pub_roots, false);

    // --- hot-path-alloc (transitive) ---
    // One violation per allocation site, attributed to the best root:
    // smallest hop count, earliest root as the tiebreak. (A site on several
    // hot paths thus reports once; a path-level suppression of the reported
    // path vouches the site everywhere — acceptable over-suppression,
    // documented in DESIGN §14.)
    let mut alloc_best: BTreeMap<(usize, u32, &str), (u32, usize)> = BTreeMap::new();
    for (order, s) in hot_searches.iter().enumerate() {
        for (fn_idx, f) in ix.fns.iter().enumerate() {
            if s.dist[fn_idx] == u32::MAX || f.in_test {
                continue;
            }
            for site in &f.alloc_sites {
                let key = (fn_idx, site.line, site.what.as_str());
                let cand = (s.dist[fn_idx], order);
                let slot = alloc_best.entry(key).or_insert(cand);
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    for ((fn_idx, line, what), (dist, order)) in &alloc_best {
        let s = &hot_searches[*order];
        let path = graph.path(s.root, *fn_idx, &s.pred);
        let f = &ix.fns[*fn_idx];
        let message = if *dist == 0 {
            format!(
                "`{what}` allocates inside hot-path fn `{}`; reuse caller-provided scratch",
                f.name
            )
        } else {
            format!(
                "hot {}: `{what}` allocates at {}:{line}; reuse caller-provided scratch",
                render_path(ix, &path),
                f.file
            )
        };
        findings.push(Finding {
            v: Violation {
                rule: Rule::HotPathAlloc,
                file: f.file.clone(),
                line: *line,
                message,
            },
            path,
        });
    }

    // --- panic-reach ---
    // Sinks: panic sites in non-library crates (library sites are governed
    // by the site-level `panic` rule), plus slice-index sites for hot roots
    // only. Hot roots win attribution over pub entry points.
    let mut panic_best: BTreeMap<(usize, u32, &str), (bool, u32, usize)> = BTreeMap::new();
    for (order, s) in hot_searches.iter().chain(pub_searches.iter()).enumerate() {
        for (fn_idx, f) in ix.fns.iter().enumerate() {
            if s.dist[fn_idx] == u32::MAX || f.in_test {
                continue;
            }
            let mut sites: Vec<(u32, &str)> = Vec::new();
            if !LIBRARY_CRATES.contains(&f.crate_dir.as_str()) {
                sites.extend(f.panic_sites.iter().map(|p| (p.line, p.what.as_str())));
            }
            if s.hot {
                sites.extend(f.index_sites.iter().map(|p| (p.line, p.what.as_str())));
            }
            for (line, what) in sites {
                let key = (fn_idx, line, what);
                // `!hot` sorts hot-rooted attributions first.
                let cand = (!s.hot, s.dist[fn_idx], order);
                let slot = panic_best.entry(key).or_insert(cand);
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    let all_searches: Vec<&RootSearch> = hot_searches.iter().chain(pub_searches.iter()).collect();
    for ((fn_idx, line, what), (_, _, order)) in &panic_best {
        let s = all_searches[*order];
        let path = graph.path(s.root, *fn_idx, &s.pred);
        let f = &ix.fns[*fn_idx];
        let root_tag = if s.hot { "hot" } else { "pub" };
        let message = format!(
            "{root_tag} {}: `{what}` may panic at {}:{line}; return a taxonomy error or prove the bound",
            render_path(ix, &path),
            f.file
        );
        findings.push(Finding {
            v: Violation {
                rule: Rule::PanicReach,
                file: f.file.clone(),
                line: *line,
                message,
            },
            path,
        });
    }

    // --- determinism-taint ---
    let mut taint_best: BTreeMap<(usize, u32, &str), (u32, usize)> = BTreeMap::new();
    for (order, s) in artifact_searches.iter().enumerate() {
        for (fn_idx, f) in ix.fns.iter().enumerate() {
            if s.dist[fn_idx] == u32::MAX || f.in_test {
                continue;
            }
            for (site, _) in &f.taint_sites {
                let key = (fn_idx, site.line, site.what.as_str());
                let cand = (s.dist[fn_idx], order);
                let slot = taint_best.entry(key).or_insert(cand);
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
    }
    for ((fn_idx, line, what), (_, order)) in &taint_best {
        let s = &artifact_searches[*order];
        let path = graph.path(s.root, *fn_idx, &s.pred);
        let f = &ix.fns[*fn_idx];
        let kind = f
            .taint_sites
            .iter()
            .find(|(site, _)| site.line == *line && site.what == *what)
            .map(|(_, k)| *k)
            .unwrap_or(TaintKind::WallClock);
        let hint = match kind {
            TaintKind::WallClock => "take a logical clock as input",
            TaintKind::EnvVar => "only WIMI_THREADS/WIMI_CHUNK may steer results",
            TaintKind::ThreadId => "thread identity is scheduling-dependent",
            TaintKind::HashIter => "iteration order is unspecified; use BTreeMap/BTreeSet",
        };
        let message = format!(
            "artifact {}: nondeterministic `{what}` at {}:{line} can taint a byte-stable artifact; {hint}",
            render_path(ix, &path),
            f.file
        );
        findings.push(Finding {
            v: Violation {
                rule: Rule::DeterminismTaint,
                file: f.file.clone(),
                line: *line,
                message,
            },
            path,
        });
    }

    findings
}

/// Splits findings into suppressed and surviving sets.
///
/// A finding is suppressed by (a) a matching pragma at the site — a
/// standalone pragma covers the next 3 lines, a trailing pragma its own
/// line — or, for interprocedural findings, (b) a matching pragma bound to
/// any function on the reported call path (standalone immediately above the
/// fn item, or trailing on the `fn` line). For `panic-reach`, a site-level
/// `allow(panic)` also vouches (its justification is a local impossibility
/// proof that holds on every path). The reverse asymmetry is deliberate:
/// `allow(wall-clock)` does NOT vouch a source for `determinism-taint`.
fn apply_suppressions(
    ix: &WorkspaceIndex,
    findings: Vec<Finding>,
) -> (Vec<Violation>, Vec<Suppression>) {
    let pragmas_of =
        |file: &str| -> &[Pragma] { ix.meta(file).map(|m| m.pragmas.as_slice()).unwrap_or(&[]) };
    let site_rule_matches = |p: &Pragma, rule: Rule| {
        p.rule == rule.name() || (rule == Rule::PanicReach && p.rule == Rule::Panic.name())
    };

    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    'findings: for finding in findings {
        let v = finding.v;
        // (a) site-level.
        for p in pragmas_of(&v.file) {
            let covers = if p.standalone {
                v.line > p.line && v.line <= p.line + 3
            } else {
                v.line == p.line
            };
            if covers && site_rule_matches(p, v.rule) {
                suppressed.push(Suppression {
                    rule: v.rule,
                    file: v.file,
                    line: v.line,
                    reason: p.reason.clone(),
                    message: v.message,
                });
                continue 'findings;
            }
        }
        // (b) path-level.
        for &fn_idx in &finding.path {
            let f = &ix.fns[fn_idx];
            for p in pragmas_of(&f.file) {
                let covers = if p.standalone {
                    f.item_line > p.line && f.item_line <= p.line + 3
                } else {
                    p.line == f.decl_line
                };
                if covers && p.rule == v.rule.name() {
                    suppressed.push(Suppression {
                        rule: v.rule,
                        file: v.file,
                        line: v.line,
                        reason: p.reason.clone(),
                        message: v.message,
                    });
                    continue 'findings;
                }
            }
        }
        violations.push(v);
    }
    (violations, suppressed)
}

/// Token-index spans lying inside assert-family macro invocations.
fn assert_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        let is_assert =
            matches!(&tokens[i].kind, Tok::Ident(s) if ASSERT_MACROS.contains(&s.as_str()));
        if is_assert && tokens[i + 1].kind == Tok::Punct("!") {
            let open = &tokens[i + 2].kind;
            let (o, c) = match open {
                Tok::Punct("(") => ("(", ")"),
                Tok::Punct("[") => ("[", "]"),
                Tok::Punct("{") => ("{", "}"),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < tokens.len() {
                if tokens[j].kind == Tok::Punct(o) {
                    depth += 1;
                } else if tokens[j].kind == Tok::Punct(c) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            spans.push((i, j));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Scans for `pub fn` signatures taking dimensionally named raw `f64`
/// parameters.
fn scan_unit_newtype(
    rel_path: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    found: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(&tokens[i].kind, Tok::Ident(s) if s == "pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip a `pub(crate)` / `pub(super)` visibility qualifier.
        if matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Punct("("))) {
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].kind {
                    Tok::Punct("(") => depth += 1,
                    Tok::Punct(")") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Skip `const` / `async` / `unsafe` / `extern` qualifiers.
        while matches!(
            tokens.get(j).map(|t| &t.kind),
            Some(Tok::Ident(s)) if matches!(s.as_str(), "const" | "async" | "unsafe" | "extern")
        ) {
            j += 1;
        }
        if !matches!(tokens.get(j).map(|t| &t.kind), Some(Tok::Ident(s)) if s == "fn") {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(fn_name)) = tokens.get(j + 1).map(|t| &t.kind) else {
            i = j + 1;
            continue;
        };
        let fn_name = fn_name.clone();
        let fn_line = tokens[j].line;
        // Skip generics (angle depth; `->`/`=>` are fused so `>` inside
        // them cannot miscount) to reach the parameter list.
        let mut k = j + 2;
        if matches!(tokens.get(k).map(|t| &t.kind), Some(Tok::Punct("<"))) {
            let mut angle = 0isize;
            while k < tokens.len() {
                match tokens[k].kind {
                    Tok::Punct("<") | Tok::Punct("<=") => angle += 1,
                    Tok::Punct(">") | Tok::Punct(">=") => {
                        angle -= 1;
                        if angle == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        if !matches!(tokens.get(k).map(|t| &t.kind), Some(Tok::Punct("("))) {
            i = k;
            continue;
        }
        // Walk the parameter list, splitting on top-level commas.
        let mut depth = 0usize;
        let mut param: Vec<&Token> = Vec::new();
        let mut params: Vec<Vec<&Token>> = Vec::new();
        while k < tokens.len() {
            let t = &tokens[k];
            match t.kind {
                Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                    if depth > 0 {
                        param.push(t);
                    }
                    depth += 1;
                }
                Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    param.push(t);
                }
                Tok::Punct(",") if depth == 1 => {
                    params.push(std::mem::take(&mut param));
                }
                _ => {
                    if depth >= 1 {
                        param.push(t);
                    }
                }
            }
            k += 1;
        }
        if !param.is_empty() {
            params.push(param);
        }
        if !in_test(fn_line) {
            for p in &params {
                check_param(rel_path, &fn_name, p, found);
            }
        }
        i = k + 1;
    }
}

/// Flags a single `name: f64` parameter whose name is dimensional.
fn check_param(rel_path: &str, fn_name: &str, param: &[&Token], found: &mut Vec<Violation>) {
    // Find the top-level `:` separating pattern from type.
    let colon = param.iter().position(|t| t.kind == Tok::Punct(":"));
    let Some(colon) = colon else { return };
    // The type must be exactly `f64`.
    let ty: Vec<&&Token> = param[colon + 1..].iter().collect();
    if ty.len() != 1 || !matches!(&ty[0].kind, Tok::Ident(s) if s == "f64") {
        return;
    }
    // The binding name is the last identifier before the colon.
    let Some(name_tok) = param[..colon]
        .iter()
        .rev()
        .find(|t| matches!(t.kind, Tok::Ident(_)))
    else {
        return;
    };
    let Tok::Ident(name) = &name_tok.kind else {
        return;
    };
    if name == "self" {
        return;
    }
    let dimensional = name
        .split('_')
        .any(|seg| DIMENSIONAL_SEGMENTS.contains(&seg));
    if dimensional {
        found.push(Violation {
            rule: Rule::UnitNewtype,
            file: rel_path.to_string(),
            line: name_tok.line,
            message: format!(
                "`pub fn {fn_name}` takes dimensional parameter `{name}: f64`; use a units.rs newtype (Meters/Hertz/Seconds)"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/wiphy/src/fake.rs";
    const APP: &str = "crates/experiments/src/fake.rs";

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests() {
        let src = "
fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = \"x\".parse::<u32>().unwrap(); }
}
";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, Rule::Panic);
        assert_eq!(r.violations[0].line, 2);
        // Same code in a non-library crate is fine.
        assert!(lint_source(APP, src).violations.is_empty());
    }

    #[test]
    fn hash_collections_flagged_everywhere() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_source(APP, src).violations.len(), 1);
        assert_eq!(lint_source(LIB, src).violations.len(), 1);
    }

    #[test]
    fn pragma_suppresses_and_is_recorded() {
        let src = "
// wlint: allow(panic) — slice is non-empty by construction
fn f(v: &[u32]) -> u32 { *v.first().unwrap() }
";
        let r = lint_source(LIB, src);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0].reason.contains("non-empty"));
    }

    #[test]
    fn pragma_without_reason_is_a_violation() {
        let src = "
// wlint: allow(panic)
fn f(v: &[u32]) -> u32 { *v.first().unwrap() }
";
        let r = lint_source(LIB, src);
        let rules: Vec<Rule> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::BadPragma));
        assert!(rules.contains(&Rule::Panic));
    }

    #[test]
    fn float_eq_exempt_inside_asserts() {
        let src = "
fn f(x: f64) -> bool { x == 0.5 }
fn g(x: f64) { assert!(x == 0.5, \"exact\"); }
";
        let r = lint_source(APP, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 2);
    }

    #[test]
    fn unit_newtype_flags_dimensional_f64() {
        let src = "pub fn los(freq_hz: f64, d_ref: f64, gain: f64) {}\n";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(r.violations.iter().all(|v| v.rule == Rule::UnitNewtype));
        // Non-unit-safe crates are not scanned.
        assert!(lint_source("crates/wml/src/fake.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn thread_spawn_allowed_only_in_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_source(APP, src).violations.len(), 1);
        assert!(lint_source("crates/wml/src/par.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn wall_clock_and_rng_only_in_lib_crates() {
        let src = "fn f() { let _ = std::time::Instant::now(); let _ = rand::thread_rng(); }\n";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 2);
        assert!(lint_source(APP, src).violations.is_empty());
    }

    #[test]
    fn hot_path_alloc_fires_only_inside_marked_fn() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<f64>) {
    let v: Vec<f64> = Vec::new();
    let w = vec![0.0];
    let c: Vec<f64> = w.iter().map(|x| x + 1.0).collect();
    out.extend(c);
    let _ = v;
}
fn cold() -> Vec<f64> {
    Vec::new()
}
";
        let r = lint_source(LIB, src);
        let hot: Vec<&Violation> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::HotPathAlloc)
            .collect();
        assert_eq!(hot.len(), 3, "{:?}", hot);
        assert!(hot.iter().all(|v| v.line >= 4 && v.line <= 6));
    }

    #[test]
    fn hot_path_alloc_is_transitive_with_path_in_message() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<f64>) {
    mid(out);
}
fn mid(out: &mut Vec<f64>) {
    leaf(out);
}
fn leaf(out: &mut Vec<f64>) {
    let v = vec![0.0];
    out.extend_from_slice(&v);
}
";
        let r = lint_source(LIB, src);
        let hot: Vec<&Violation> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::HotPathAlloc)
            .collect();
        assert_eq!(hot.len(), 1, "{:?}", hot);
        assert_eq!(hot[0].line, 10, "violation sits at the allocation site");
        assert!(
            hot[0].message.contains("`hot` → `mid` → `leaf`"),
            "message must carry the full path: {}",
            hot[0].message
        );
    }

    #[test]
    fn path_level_pragma_vouches_whole_call_chain() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<f64>) {
    grow(out);
}
// wlint: allow(hot-path-alloc) — one-time pool growth, reused afterwards
fn grow(out: &mut Vec<f64>) {
    let v = vec![0.0];
    out.extend_from_slice(&v);
}
";
        let r = lint_source(LIB, src);
        assert!(
            !r.violations.iter().any(|v| v.rule == Rule::HotPathAlloc),
            "{:?}",
            r.violations
        );
        assert!(r
            .suppressed
            .iter()
            .any(|s| s.rule == Rule::HotPathAlloc && s.reason.contains("pool growth")));
    }

    #[test]
    fn hot_path_alloc_permits_constructor_paths_and_scratch_reuse() {
        // `Vec::new` as a *function reference* (no call parens) is how
        // `resize_with` grows a scratch pool once — that must stay legal.
        let src = "
// wlint: hot
fn hot(scratch: &mut Scratch, out: &mut Vec<f64>) {
    scratch.details.resize_with(4, Vec::new);
    out.clear();
    out.extend_from_slice(&scratch.tmp);
}
";
        let r = lint_source(LIB, src);
        assert!(
            !r.violations.iter().any(|v| v.rule == Rule::HotPathAlloc),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn hot_path_alloc_is_pragma_suppressable() {
        let src = "
// wlint: hot
fn hot(out: &mut Vec<Vec<f64>>) {
    // wlint: allow(hot-path-alloc) — one-time pool growth, reused after
    out.resize(4, Vec::new());
}
";
        let r = lint_source(LIB, src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, Rule::HotPathAlloc);
    }

    #[test]
    fn hot_marker_must_precede_a_fn() {
        let src = "
// wlint: hot
const X: usize = 4;
";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, Rule::HotPathAlloc);
        assert!(r.violations[0].message.contains("does not precede"));
    }

    #[test]
    fn hot_marker_does_not_bind_past_an_impl_line() {
        // Regression: the marker used to bind to the first `fn` token in
        // the window even when an `impl` (or other item) started first,
        // silently marking a method the author never pointed at.
        let src = "
// wlint: hot
impl Pool {
    fn grow(&mut self) {
        self.slots = Vec::new();
    }
}
";
        let r = lint_source(LIB, src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("does not precede"));
        assert!(
            r.violations[0].message.contains("impl"),
            "diagnostic names the intervening item: {}",
            r.violations[0].message
        );
    }

    #[test]
    fn panic_reach_traces_through_helpers() {
        let src = "
// wlint: hot
fn hot(v: &[f64]) -> f64 {
    step(v)
}
fn step(v: &[f64]) -> f64 {
    pick(v)
}
fn pick(v: &[f64]) -> f64 {
    v[0]
}
";
        let r = lint_source(APP, src);
        let pr: Vec<&Violation> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::PanicReach)
            .collect();
        assert_eq!(pr.len(), 1, "{:?}", r.violations);
        assert_eq!(pr[0].line, 10);
        assert!(
            pr[0].message.contains("`hot` → `step` → `pick`"),
            "{}",
            pr[0].message
        );
    }

    #[test]
    fn panic_reach_site_vouched_by_allow_panic() {
        let src = "
// wlint: hot
fn hot(v: &[f64]) -> f64 {
    pick(v)
}
fn pick(v: &[f64]) -> f64 {
    // wlint: allow(panic) — caller guarantees at least one sample
    v.first().copied().unwrap()
}
";
        let r = lint_source(APP, src);
        assert!(
            !r.violations.iter().any(|v| v.rule == Rule::PanicReach),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn determinism_taint_reaches_through_calls() {
        let src = "
// wlint: artifact
fn render(out: &mut String) {
    stamp(out);
}
fn stamp(out: &mut String) {
    let id = std::env::var(\"HOSTNAME\").unwrap_or_default();
    out.push_str(&id);
}
";
        let r = lint_source(APP, src);
        let dt: Vec<&Violation> = r
            .violations
            .iter()
            .filter(|v| v.rule == Rule::DeterminismTaint)
            .collect();
        assert_eq!(dt.len(), 1, "{:?}", r.violations);
        assert!(
            dt[0].message.contains("env::var(\"HOSTNAME\")"),
            "{}",
            dt[0].message
        );
        assert!(
            dt[0].message.contains("`render` → `stamp`"),
            "{}",
            dt[0].message
        );
    }

    #[test]
    fn determinism_taint_allows_the_env_allowlist() {
        let src = "
// wlint: artifact
fn render(out: &mut String) {
    let t = std::env::var(\"WIMI_THREADS\").unwrap_or_default();
    out.push_str(&t);
}
";
        let r = lint_source(APP, src);
        assert!(
            !r.violations
                .iter()
                .any(|v| v.rule == Rule::DeterminismTaint),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn allow_wall_clock_does_not_vouch_determinism_taint() {
        // The asymmetry: a site-suppressed wall-clock read is still a taint
        // source for artifact renderers.
        let src = "
// wlint: artifact
fn render(out: &mut String) {
    // wlint: allow(wall-clock) — value is logged, never rendered (stale claim)
    let t = std::time::Instant::now();
    let _ = (t, out);
}
";
        let r = lint_source(LIB, src);
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == Rule::DeterminismTaint),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn float_cast_scoped_to_quantisation_files() {
        let src = "fn q(x: f64) -> i8 { x as i8 }\n";
        assert_eq!(
            lint_source("crates/wiphy/src/csi.rs", src).violations.len(),
            1
        );
        assert!(lint_source(LIB, src).violations.is_empty());
    }

    #[test]
    fn explain_texts_exist_for_every_rule() {
        for rule in Rule::ALL {
            assert!(
                rule.explain().len() > 80,
                "{} explain too short",
                rule.name()
            );
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
