//! A lightweight Rust tokenizer for static analysis.
//!
//! The build environment has no registry access, so `wimi-lint` cannot use
//! `syn`; instead it hand-rolls the small slice of lexing the rules need:
//! identifiers, punctuation, numeric literals (with a float flag), and —
//! crucially — *correct skipping* of strings, char literals, lifetimes and
//! comments, so a banned identifier inside a string or doc comment never
//! fires a rule. Line comments are additionally inspected for `wlint:`
//! suppression pragmas.

/// One lexical token of interest to the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `pub`, `f64`, ...).
    Ident(String),
    /// Punctuation; multi-character operators (`==`, `!=`, `::`, `->`,
    /// `=>`, `..`, `&&`, `||`, `<=`, `>=`) arrive as one token.
    Punct(&'static str),
    /// A numeric literal.
    Num {
        /// `true` for float literals (`1.0`, `1e9`, `2f64`).
        is_float: bool,
    },
    /// A string literal, carrying its raw content (escape sequences are
    /// left as written). The determinism-taint rule inspects `env::var`
    /// arguments through this token; no identifier rule matches inside it.
    Str(String),
    /// A lifetime such as `'a` (content irrelevant to the rules).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A `// wlint: allow(<rule>) — <reason>` suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// `true` when the pragma is the only thing on its line (it then
    /// suppresses the *next* code line); `false` for a trailing comment
    /// (suppresses its own line).
    pub standalone: bool,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The justification text after the rule; empty if missing.
    pub reason: String,
}

/// Everything the lexer extracts from one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression pragmas found in line comments.
    pub pragmas: Vec<Pragma>,
    /// Lines holding a malformed `wlint:` pragma (bad syntax or no reason).
    pub bad_pragmas: Vec<(u32, String)>,
    /// Lines holding a `// wlint: hot` marker: the next `fn` is a hot-path
    /// function whose body must not allocate (see `hot-path-alloc`).
    pub hot_markers: Vec<u32>,
    /// Lines holding a `// wlint: artifact` marker: the next `fn` renders a
    /// byte-stable artifact (`wimi-obs/1`, `wimi-trace/1`, `wimi-campaign/1`)
    /// and must not reach ambient nondeterminism (see `determinism-taint`).
    pub artifact_markers: Vec<u32>,
}

/// Tokenizes `source`, folding away comments, strings and char literals.
pub fn lex(source: &str) -> LexOutput {
    let mut out = LexOutput::default();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether any code token has been emitted on the current line,
    // so pragma comments can be classified standalone vs trailing.
    let mut line_has_code = false;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment: scan to end of line, look for a pragma.
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                scan_pragma(&text, line, !line_has_code, &mut out);
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        line_has_code = false;
                        j += 1;
                    } else if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let start_line = line;
                let end = skip_string(&bytes, i, &mut line);
                let lo = (i + 1).min(bytes.len());
                let hi = end.saturating_sub(1).clamp(lo, bytes.len());
                let content: String = bytes[lo..hi].iter().collect();
                out.tokens.push(Token {
                    kind: Tok::Str(content),
                    line: start_line,
                });
                i = end;
                line_has_code = true;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                let start_line = line;
                let end = skip_raw_or_byte_string(&bytes, i, &mut line);
                // Content fidelity only matters for the `env::var` allowlist
                // check, which never uses raw/byte strings; an empty payload
                // keeps the token present without delimiter bookkeeping.
                out.tokens.push(Token {
                    kind: Tok::Str(String::new()),
                    line: start_line,
                });
                i = end;
                line_has_code = true;
            }
            '\'' => {
                i = skip_char_or_lifetime(&bytes, i, line, &mut out);
                line_has_code = true;
            }
            c if c.is_ascii_digit() => {
                let (next, is_float) = lex_number(&bytes, i);
                out.tokens.push(Token {
                    kind: Tok::Num { is_float },
                    line,
                });
                line_has_code = true;
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let ident: String = bytes[i..j].iter().collect();
                out.tokens.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
                line_has_code = true;
                i = j;
            }
            _ => {
                let two: Option<&'static str> = if i + 1 < bytes.len() {
                    match (c, bytes[i + 1]) {
                        ('=', '=') => Some("=="),
                        ('!', '=') => Some("!="),
                        (':', ':') => Some("::"),
                        ('-', '>') => Some("->"),
                        ('=', '>') => Some("=>"),
                        ('.', '.') => Some(".."),
                        ('&', '&') => Some("&&"),
                        ('|', '|') => Some("||"),
                        ('<', '=') => Some("<="),
                        ('>', '=') => Some(">="),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(op) = two {
                    out.tokens.push(Token {
                        kind: Tok::Punct(op),
                        line,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Token {
                        kind: Tok::Punct(single_punct(c)),
                        line,
                    });
                    i += 1;
                }
                line_has_code = true;
            }
        }
    }
    out
}

/// Maps a single punctuation char onto a static str (unknown chars fold to
/// `"?"`, which no rule matches).
fn single_punct(c: char) -> &'static str {
    match c {
        '(' => "(",
        ')' => ")",
        '{' => "{",
        '}' => "}",
        '[' => "[",
        ']' => "]",
        '<' => "<",
        '>' => ">",
        ',' => ",",
        ':' => ":",
        ';' => ";",
        '#' => "#",
        '.' => ".",
        '&' => "&",
        '|' => "|",
        '=' => "=",
        '!' => "!",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '?' => "?",
        '@' => "@",
        '^' => "^",
        '$' => "$",
        _ => "?",
    }
}

/// Recognises a `wlint:` pragma inside a line comment's text.
fn scan_pragma(text: &str, line: u32, standalone: bool, out: &mut LexOutput) {
    let trimmed = text.trim();
    let Some(rest) = trimmed.strip_prefix("wlint:") else {
        return;
    };
    let rest = rest.trim();
    if rest == "hot" {
        // `// wlint: hot` marks the next `fn` as a hot-path function:
        // the hot-path-alloc rule bans heap allocation inside its body.
        out.hot_markers.push(line);
        return;
    }
    if rest == "artifact" {
        // `// wlint: artifact` marks the next `fn` as an artifact renderer:
        // the determinism-taint rule bans reachable nondeterminism sources.
        out.artifact_markers.push(line);
        return;
    }
    let Some(inner) = rest.strip_prefix("allow(") else {
        out.bad_pragmas
            .push((line, format!("unrecognised wlint pragma: `{trimmed}`")));
        return;
    };
    let Some(close) = inner.find(')') else {
        out.bad_pragmas
            .push((line, "wlint pragma is missing `)`".to_string()));
        return;
    };
    let rule = inner[..close].trim().to_string();
    // The justification follows the closing paren, separated by an em dash,
    // hyphen or colon.
    let reason = inner[close + 1..]
        .trim_start_matches([' ', '\t'])
        .trim_start_matches(['\u{2014}', '\u{2013}', '-', ':'])
        .trim()
        .to_string();
    if rule.is_empty() {
        out.bad_pragmas
            .push((line, "wlint pragma names no rule".to_string()));
        return;
    }
    if reason.is_empty() {
        out.bad_pragmas.push((
            line,
            format!("wlint pragma for `{rule}` has no justification"),
        ));
        return;
    }
    out.pragmas.push(Pragma {
        line,
        standalone,
        rule,
        reason,
    });
}

/// Skips a `"..."` string starting at `i` (the opening quote).
fn skip_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// `true` when position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"` (a raw
/// or byte string) rather than an identifier beginning with `r`/`b`.
fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == 'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == '#' {
            j += 1;
        }
    }
    // b'x' byte char is handled by the '\'' arm via this same check.
    j < bytes.len() && (bytes[j] == '"' || (j == i + 1 && bytes[i] == 'b' && bytes[j] == '\''))
}

/// Skips a raw/byte string (or byte char) starting at `i`.
fn skip_raw_or_byte_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == '\'' {
        // b'x' byte char literal.
        j += 1;
        while j < bytes.len() {
            match bytes[j] {
                '\\' => j += 2,
                '\'' => return j + 1,
                _ => j += 1,
            }
        }
        return j;
    }
    let mut hashes = 0usize;
    if j < bytes.len() && bytes[j] == 'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= bytes.len() || bytes[j] != '"' {
        return j; // Not actually a string; resume after the prefix.
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == '\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == '"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Distinguishes a char literal (`'x'`, `'\n'`) from a lifetime (`'a`,
/// `'static`) at position `i` (the quote) and skips/records accordingly.
fn skip_char_or_lifetime(bytes: &[char], i: usize, line: u32, out: &mut LexOutput) -> usize {
    let next = bytes.get(i + 1).copied();
    match next {
        Some('\\') => {
            // Escaped char literal. The char after the backslash is consumed
            // unconditionally (it may itself be `\` or `'`), then everything
            // up to the closing quote (covers `\x41`, `\u{...}`).
            let mut j = i + 3;
            while j < bytes.len() && bytes[j] != '\'' {
                j += 1;
            }
            j + 1
        }
        Some(c) if c.is_alphabetic() || c == '_' => {
            // `'a'` is a char literal; `'a` followed by non-quote is a
            // lifetime.
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            if bytes.get(j) == Some(&'\'') && j == i + 2 {
                j + 1 // Single-char literal like 'x'.
            } else {
                out.tokens.push(Token {
                    kind: Tok::Lifetime,
                    line,
                });
                j
            }
        }
        Some(_) => {
            // Something like '(' — a char literal of punctuation.
            if bytes.get(i + 2) == Some(&'\'') {
                i + 3
            } else {
                i + 2
            }
        }
        None => i + 1,
    }
}

/// Lexes a numeric literal starting at `i`; returns (next index, is_float).
fn lex_number(bytes: &[char], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    let radix_prefix = bytes[j] == '0'
        && matches!(
            bytes.get(j + 1),
            Some('x') | Some('o') | Some('b') | Some('X')
        );
    if radix_prefix {
        j += 2;
        while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
            j += 1;
        }
        return (j, false);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
        j += 1;
    }
    // Decimal point: only when followed by a digit (so `0..n` ranges and
    // `1.max(2)` method calls stay intact).
    if bytes.get(j) == Some(&'.') && bytes.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        j += 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
            j += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(j), Some('e') | Some('E')) {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if bytes.get(k).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `f32`, `u8`, ...).
    if bytes.get(j).is_some_and(|c| c.is_alphabetic()) {
        let start = j;
        while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
            j += 1;
        }
        let suffix: String = bytes[start..j].iter().collect();
        if suffix == "f64" || suffix == "f32" {
            is_float = true;
        }
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_skipped() {
        let src = r##"
            // HashMap in a comment
            /* unwrap in /* a nested */ block */
            let s = "SystemTime::now()";
            let r = r#"thread_rng"#;
            let c = 'u';
            let real_ident = 1;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids
            .iter()
            .any(|s| s == "HashMap" || s == "unwrap" || s == "SystemTime" || s == "thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let out = lex(src);
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == Tok::Lifetime)
                .count(),
            3
        );
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn numbers_carry_float_flag() {
        let out = lex("let a = 1; let b = 2.5; let c = 1e9; let d = 3f64; let e = 0x1E;");
        let nums: Vec<bool> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Num { is_float } => Some(is_float),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![false, true, true, true, false]);
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let out = lex("for i in 0..10 {}");
        assert!(out
            .tokens
            .iter()
            .all(|t| !matches!(t.kind, Tok::Num { is_float: true })));
        assert!(out.tokens.iter().any(|t| t.kind == Tok::Punct("..")));
    }

    #[test]
    fn multi_char_operators_fuse() {
        let out = lex("a == b != c :: d");
        let ops: Vec<&str> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::"]);
    }

    #[test]
    fn pragma_parsing() {
        let src = "
// wlint: allow(panic) — provably infallible: len checked above
let x = v.pop(); // wlint: allow(float-eq) - exact sentinel comparison
// wlint: allow(panic)
// wlint: bogus
";
        let out = lex(src);
        assert_eq!(out.pragmas.len(), 2);
        assert!(out.pragmas[0].standalone);
        assert_eq!(out.pragmas[0].rule, "panic");
        assert!(out.pragmas[0].reason.contains("infallible"));
        assert!(!out.pragmas[1].standalone);
        assert_eq!(out.pragmas[1].rule, "float-eq");
        assert_eq!(out.bad_pragmas.len(), 2);
    }

    #[test]
    fn hot_marker_is_recorded_not_rejected() {
        let src = "
// wlint: hot
fn inner(x: &mut [f64]) {}
// wlint: hotter
";
        let out = lex(src);
        assert_eq!(out.hot_markers, vec![2]);
        assert_eq!(out.bad_pragmas.len(), 1, "`hotter` is not a marker");
        assert!(out.pragmas.is_empty());
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n  c");
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
