//! Conservative call graph over the [`WorkspaceIndex`].
//!
//! Resolution is deliberately over-approximate: a call that *might* target
//! an indexed function produces an edge, and a call the resolver cannot
//! place (std paths, vendored crates, function pointers) produces none.
//! The interprocedural rules therefore err toward flagging — the
//! suppression-with-reason escape hatch covers the residue — while the
//! only silent gaps are constructs the indexer cannot see at all
//! (documented in DESIGN §14).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::index::{CallKind, FnDef, WorkspaceIndex};

/// Cargo import name → crate directory for the workspace members. Fixture
/// crates not listed here resolve by identity (their directory name doubles
/// as the import name), which also keeps std's `core`/`std` from colliding
/// with the `crates/core` member (imported only as `wimi_core`).
pub const IMPORT_NAMES: [(&str, &str); 11] = [
    ("wimi", "wimi"),
    ("wimi_core", "core"),
    ("wimi_phy", "wiphy"),
    ("wimi_dsp", "wdsp"),
    ("wimi_ml", "wml"),
    ("wimi_obs", "wobs"),
    ("wimi_trace", "wtrace"),
    ("wimi_campaign", "wcampaign"),
    ("wimi_experiments", "experiments"),
    ("wimi_bench", "bench"),
    ("wimi_lint", "wlint"),
];

/// Path roots that always mean the standard library — never a workspace
/// crate, even when a directory shares the name (`crates/core`).
const STD_ROOTS: [&str; 3] = ["std", "core", "alloc"];

/// Direct workspace dependencies per crate directory. The method-call
/// over-approximation is restricted to the caller's transitive closure;
/// a crate absent from the map (fixtures, single-file lint) is assumed to
/// depend on everything.
#[derive(Debug, Default, Clone)]
pub struct DepMap {
    /// crate dir → direct dependency crate dirs.
    pub direct: BTreeMap<String, Vec<String>>,
}

impl DepMap {
    /// Transitive dependency closure of `crate_dir`, including itself.
    /// `None` means the crate is unknown and every edge target is allowed.
    pub fn closure(&self, crate_dir: &str) -> Option<BTreeSet<String>> {
        if !self.direct.contains_key(crate_dir) {
            return None;
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue = vec![crate_dir.to_string()];
        while let Some(c) = queue.pop() {
            if !seen.insert(c.clone()) {
                continue;
            }
            if let Some(deps) = self.direct.get(&c) {
                queue.extend(deps.iter().cloned());
            }
        }
        Some(seen)
    }
}

/// `Foo` / `CsiCapture` — a path segment naming a type rather than a module.
fn type_shaped(seg: &str) -> bool {
    seg.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// The resolved call graph: `edges[i]` lists the indexed functions the
/// body of `ix.fns[i]` may call, sorted and deduplicated.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

struct Resolver<'a> {
    ix: &'a WorkspaceIndex,
    deps: &'a DepMap,
    /// (crate dir, fn name) → free-fn indices.
    free_fns: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// (crate dir, type, fn name) → method indices.
    methods: BTreeMap<(&'a str, &'a str, &'a str), Vec<usize>>,
    /// fn name → method indices (for receiver-less over-approximation).
    methods_by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Crate dirs present in the index (identity import-name fallback).
    crate_dirs: BTreeSet<&'a str>,
}

impl<'a> Resolver<'a> {
    fn new(ix: &'a WorkspaceIndex, deps: &'a DepMap) -> Self {
        let mut r = Resolver {
            ix,
            deps,
            free_fns: BTreeMap::new(),
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            crate_dirs: BTreeSet::new(),
        };
        for (i, f) in ix.fns.iter().enumerate() {
            r.crate_dirs.insert(&f.crate_dir);
            match &f.self_ty {
                None => r
                    .free_fns
                    .entry((&f.crate_dir, &f.name))
                    .or_default()
                    .push(i),
                Some(ty) => {
                    r.methods
                        .entry((&f.crate_dir, ty, &f.name))
                        .or_default()
                        .push(i);
                    r.methods_by_name.entry(&f.name).or_default().push(i);
                }
            }
        }
        r
    }

    /// Maps the first path segment to a crate directory, if it names one.
    fn import_name_to_dir(&self, name: &str) -> Option<&str> {
        if let Some((_, dir)) = IMPORT_NAMES.iter().find(|(n, _)| *n == name) {
            return Some(dir);
        }
        // Identity fallback for fixture crates, unless the name is claimed
        // by the import table or the standard library.
        if STD_ROOTS.contains(&name) || IMPORT_NAMES.iter().any(|(_, d)| *d == name) {
            return None;
        }
        self.crate_dirs.get(name).copied()
    }

    fn resolve(&self, caller: usize, kind: &CallKind) -> Vec<usize> {
        match kind {
            CallKind::Bare(name) => self.resolve_bare(caller, name),
            CallKind::Qualified(segs) => self.resolve_qualified(caller, segs),
            CallKind::Method(name) => self.resolve_method(caller, name),
        }
    }

    fn resolve_bare(&self, caller: usize, name: &str) -> Vec<usize> {
        let f = &self.ix.fns[caller];
        let meta = self.ix.meta(&f.file);
        // Tier 1: a `use` alias brings the name into scope.
        if let Some(meta) = meta {
            if let Some((_, path)) = meta.imports.iter().find(|(a, _)| a == name) {
                let hits = self.resolve_qualified(caller, path);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // Tier 2: a free fn in the caller's own module.
        if let Some(hits) = self.free_fns.get(&(f.crate_dir.as_str(), name)) {
            let same_module: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|&i| self.ix.fns[i].module_path == f.module_path)
                .collect();
            if !same_module.is_empty() {
                return same_module;
            }
        }
        // Tier 3: glob imports.
        if let Some(meta) = meta {
            for glob in &meta.globs {
                let mut path = glob.clone();
                path.push(name.to_string());
                let hits = self.resolve_qualified(caller, &path);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // Tier 4: any free fn with the name in the caller's crate
        // (re-exports, parent-module `use super::*` idioms).
        self.free_fns
            .get(&(f.crate_dir.as_str(), name))
            .cloned()
            .unwrap_or_default()
    }

    fn resolve_qualified(&self, caller: usize, segs: &[String]) -> Vec<usize> {
        if segs.len() < 2 {
            return match segs.first() {
                Some(name) => self.resolve_bare(caller, name),
                None => Vec::new(),
            };
        }
        let f = &self.ix.fns[caller];
        // Alias substitution on the head segment (`use wimi_dsp::stats;`
        // then `stats::variance(..)`). A path re-starting with its own
        // alias (`use helpers::helpers;`) is skipped to avoid looping.
        if let Some(meta) = self.ix.meta(&f.file) {
            if let Some((_, path)) = meta
                .imports
                .iter()
                .find(|(a, p)| a == &segs[0] && p.first() != Some(&segs[0]))
            {
                let mut subst = path.clone();
                subst.extend(segs[1..].iter().cloned());
                return self.resolve_normalized(caller, &subst);
            }
        }
        self.resolve_normalized(caller, segs)
    }

    /// Resolves a path whose head is a keyword, crate name, or in-crate
    /// module/type.
    fn resolve_normalized(&self, caller: usize, segs: &[String]) -> Vec<usize> {
        let f = &self.ix.fns[caller];
        match segs[0].as_str() {
            "crate" => self.resolve_in_crate(&f.crate_dir, &segs[1..]),
            "self" => {
                let mut rel: Vec<String> = f.module_path.clone();
                rel.extend(segs[1..].iter().cloned());
                self.resolve_in_crate(&f.crate_dir, &rel)
            }
            "super" => {
                let mut module = f.module_path.clone();
                let mut rest = segs;
                while rest.first().map(String::as_str) == Some("super") {
                    module.pop();
                    rest = &rest[1..];
                }
                let mut rel = module;
                rel.extend(rest.iter().cloned());
                self.resolve_in_crate(&f.crate_dir, &rel)
            }
            "Self" => match (&f.self_ty, segs.len()) {
                (Some(ty), 2) => self.lookup_methods(&f.crate_dir, ty, &segs[1]),
                _ => Vec::new(),
            },
            head if STD_ROOTS.contains(&head) => Vec::new(),
            head => match self.import_name_to_dir(head) {
                Some(dir) => {
                    let dir = dir.to_string();
                    self.resolve_in_crate(&dir, &segs[1..])
                }
                // `module::f(..)` / `Type::m(..)` relative to the caller's
                // crate root or module.
                None => self.resolve_in_crate(&f.crate_dir, segs),
            },
        }
    }

    /// Resolves `rel` (module/type segments + fn name) inside one crate.
    fn resolve_in_crate(&self, crate_dir: &str, rel: &[String]) -> Vec<usize> {
        let Some((name, qual)) = rel.split_last() else {
            return Vec::new();
        };
        if let Some(ty) = qual.last() {
            if type_shaped(ty) {
                // `Type::method` — only an edge when the type is ours;
                // `Vec::with_capacity` and friends fall out here.
                return self.lookup_methods(crate_dir, ty, name);
            }
        }
        // Module-qualified or crate-root free fn. Module prefixes are not
        // matched exactly: re-exports (`pub use stats::variance`) make the
        // written path diverge from the defining module, so (crate, name)
        // is the over-approximation that never loses the edge.
        self.free_fns
            .get(&(crate_dir, name.as_str()))
            .cloned()
            .unwrap_or_default()
    }

    fn lookup_methods(&self, crate_dir: &str, ty: &str, name: &str) -> Vec<usize> {
        self.methods
            .get(&(crate_dir, ty, name))
            .cloned()
            .unwrap_or_default()
    }

    /// `.m(..)` with an unknown receiver: every method named `m` in the
    /// caller's crate or its transitive dependency closure.
    fn resolve_method(&self, caller: usize, name: &str) -> Vec<usize> {
        let f = &self.ix.fns[caller];
        let hits = match self.methods_by_name.get(name) {
            Some(h) => h,
            None => return Vec::new(),
        };
        match self.deps.closure(&f.crate_dir) {
            Some(allowed) => hits
                .iter()
                .copied()
                .filter(|&i| allowed.contains(&self.ix.fns[i].crate_dir))
                .collect(),
            None => hits.clone(),
        }
    }
}

impl CallGraph {
    /// Builds the graph by resolving every call in every indexed body.
    pub fn build(ix: &WorkspaceIndex, deps: &DepMap) -> CallGraph {
        let resolver = Resolver::new(ix, deps);
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(ix.fns.len());
        for (i, f) in ix.fns.iter().enumerate() {
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                out.extend(resolver.resolve(i, &call.kind));
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&t| t != i); // self-loops add nothing to reachability
            edges.push(out);
        }
        CallGraph { edges }
    }

    /// Strongly connected components (iterative Tarjan). Each component is
    /// sorted ascending; components are ordered by their smallest member.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.edges.len();
        let mut index_of = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<usize>> = Vec::new();

        for start in 0..n {
            if index_of[start] != usize::MAX {
                continue;
            }
            // Explicit DFS stack: (node, next-edge cursor).
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            index_of[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
                if *cursor < self.edges[v].len() {
                    let w = self.edges[v][*cursor];
                    *cursor += 1;
                    if index_of[w] == usize::MAX {
                        index_of[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index_of[w]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index_of[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Which functions are reachable from `roots` (roots included),
    /// computed over the SCC condensation so cycles cost one visit.
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let n = self.edges.len();
        let comps = self.sccs();
        let mut comp_of = vec![0usize; n];
        for (c, comp) in comps.iter().enumerate() {
            for &v in comp {
                comp_of[v] = c;
            }
        }
        let mut comp_edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); comps.len()];
        for (v, outs) in self.edges.iter().enumerate() {
            for &w in outs {
                if comp_of[v] != comp_of[w] {
                    comp_edges[comp_of[v]].insert(comp_of[w]);
                }
            }
        }
        let mut comp_seen = vec![false; comps.len()];
        let mut queue: VecDeque<usize> = roots
            .iter()
            .filter(|&&r| r < n)
            .map(|&r| comp_of[r])
            .collect();
        while let Some(c) = queue.pop_front() {
            if comp_seen[c] {
                continue;
            }
            comp_seen[c] = true;
            queue.extend(comp_edges[c].iter().copied());
        }
        let mut seen = vec![false; n];
        for v in 0..n {
            seen[v] = comp_seen[comp_of[v]];
        }
        seen
    }

    /// BFS shortest-hop distances and predecessors from `root`. Neighbours
    /// expand in sorted order, so paths are deterministic.
    pub fn bfs(&self, root: usize) -> (Vec<u32>, Vec<usize>) {
        let n = self.edges.len();
        let mut dist = vec![u32::MAX; n];
        let mut pred = vec![usize::MAX; n];
        if root >= n {
            return (dist, pred);
        }
        let mut queue = VecDeque::new();
        dist[root] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in &self.edges[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    pred[w] = v;
                    queue.push_back(w);
                }
            }
        }
        (dist, pred)
    }

    /// Reconstructs the root→target node path from a [`CallGraph::bfs`]
    /// predecessor array. Empty when the target is unreachable.
    pub fn path(&self, root: usize, target: usize, pred: &[usize]) -> Vec<usize> {
        if target >= pred.len() {
            return Vec::new();
        }
        let mut path = vec![target];
        let mut v = target;
        while v != root {
            v = pred[v];
            if v == usize::MAX {
                return Vec::new();
            }
            path.push(v);
        }
        path.reverse();
        path
    }
}

/// Deterministic text dump of the index + graph for `--graph`.
pub fn graph_dump(ix: &WorkspaceIndex, graph: &CallGraph) -> String {
    let mut out = String::new();
    out.push_str("# wimi-lint call graph\n");
    out.push_str(&format!("# {} functions\n", ix.fns.len()));
    for (i, f) in ix.fns.iter().enumerate() {
        let mut tags: Vec<&str> = Vec::new();
        if f.is_hot {
            tags.push("hot");
        }
        if f.is_artifact {
            tags.push("artifact");
        }
        if f.is_pub {
            tags.push("pub");
        }
        if f.in_test {
            tags.push("test");
        }
        let tag_str = if tags.is_empty() {
            String::new()
        } else {
            format!(" [{}]", tags.join(","))
        };
        out.push_str(&format!(
            "{} ({}:{}){}\n",
            f.display_path(),
            f.file,
            f.decl_line,
            tag_str
        ));
        for &t in &graph.edges[i] {
            out.push_str(&format!("  -> {}\n", ix.fns[t].display_path()));
        }
    }
    let cycles: Vec<Vec<usize>> = graph.sccs().into_iter().filter(|c| c.len() > 1).collect();
    out.push_str(&format!("# {} multi-node SCCs\n", cycles.len()));
    for comp in cycles {
        let names: Vec<String> = comp.iter().map(|&v| ix.fns[v].display_path()).collect();
        out.push_str(&format!("scc {{ {} }}\n", names.join(", ")));
    }
    out
}

/// Convenience for rules/messages: the display name of a fn for paths.
pub fn fn_label(f: &FnDef) -> String {
    match &f.self_ty {
        Some(ty) => format!("{}::{}", ty, f.name),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ix_of(files: &[(&str, &str)]) -> WorkspaceIndex {
        let mut ix = WorkspaceIndex::default();
        for (p, s) in files {
            ix.add_file(p, s);
        }
        ix
    }

    fn idx(ix: &WorkspaceIndex, name: &str) -> usize {
        ix.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not indexed"))
    }

    #[test]
    fn bare_calls_resolve_within_module_before_crate() {
        let ix = ix_of(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn caller() { helper(); }",
            ),
            ("crates/a/src/other.rs", "fn helper() {}"),
        ]);
        let g = CallGraph::build(&ix, &DepMap::default());
        let caller = idx(&ix, "caller");
        // Same-module helper wins; the other-module shadow is not an edge.
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(ix.fns[g.edges[caller][0]].file, "crates/a/src/lib.rs");
    }

    #[test]
    fn cross_crate_rename_resolves_through_use() {
        let ix = ix_of(&[
            (
                "crates/wdsp/src/stats.rs",
                "pub fn variance(v: &[f64]) -> f64 { 0.0 }",
            ),
            (
                "crates/core/src/lib.rs",
                "use wimi_dsp::stats::variance as var;\nfn caller() { var(&[]); }",
            ),
        ]);
        let g = CallGraph::build(&ix, &DepMap::default());
        let caller = idx(&ix, "caller");
        assert_eq!(g.edges[caller], vec![idx(&ix, "variance")]);
    }

    #[test]
    fn method_calls_over_approximate_within_dep_closure() {
        let ix = ix_of(&[
            ("crates/a/src/lib.rs", "impl T1 { pub fn go(&self) {} }"),
            (
                "crates/b/src/lib.rs",
                "impl T2 { pub fn go(&self) {} }\nfn caller(x: &T2) { x.go(); }",
            ),
            ("crates/c/src/lib.rs", "impl T3 { pub fn go(&self) {} }"),
        ]);
        let mut deps = DepMap::default();
        deps.direct.insert("a".into(), vec![]);
        deps.direct.insert("b".into(), vec!["a".into()]);
        deps.direct.insert("c".into(), vec![]);
        let g = CallGraph::build(&ix, &deps);
        let caller = idx(&ix, "caller");
        let crates: Vec<&str> = g.edges[caller]
            .iter()
            .map(|&t| ix.fns[t].crate_dir.as_str())
            .collect();
        // b depends on a but not c: T3::go is not a candidate.
        assert_eq!(crates, vec!["a", "b"]);
    }

    #[test]
    fn mutual_recursion_collapses_to_one_scc() {
        let ix = ix_of(&[(
            "crates/a/src/lib.rs",
            "fn even(n: u32) -> bool { odd(n - 1) }\nfn odd(n: u32) -> bool { even(n - 1) }\nfn lonely() {}",
        )]);
        let g = CallGraph::build(&ix, &DepMap::default());
        let comps = g.sccs();
        let multi: Vec<&Vec<usize>> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].len(), 2);
        // Reachability through the cycle terminates and includes both.
        let reach = g.reachable(&[idx(&ix, "even")]);
        assert!(reach[idx(&ix, "odd")]);
        assert!(!reach[idx(&ix, "lonely")]);
    }

    #[test]
    fn bfs_paths_are_shortest_and_deterministic() {
        let ix = ix_of(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); d(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() {}",
        )]);
        let g = CallGraph::build(&ix, &DepMap::default());
        let (dist, pred) = g.bfs(idx(&ix, "a"));
        assert_eq!(dist[idx(&ix, "d")], 1, "direct edge beats the b->c chain");
        let path = g.path(idx(&ix, "a"), idx(&ix, "c"), &pred);
        let names: Vec<&str> = path.iter().map(|&v| ix.fns[v].name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn std_and_unknown_paths_produce_no_edges() {
        let ix = ix_of(&[(
            "crates/a/src/lib.rs",
            "fn caller() { std::mem::swap(&mut 1, &mut 2); Vec::<u8>::new(); rand::random(); }",
        )]);
        let g = CallGraph::build(&ix, &DepMap::default());
        assert!(g.edges[idx(&ix, "caller")].is_empty());
    }

    #[test]
    fn self_and_super_paths_resolve() {
        let ix = ix_of(&[(
            "crates/a/src/m.rs",
            "pub fn top() {}\nmod inner {\n fn f() { super::top(); self::g(); }\n fn g() {}\n}",
        )]);
        let g = CallGraph::build(&ix, &DepMap::default());
        let f = idx(&ix, "f");
        let mut targets: Vec<&str> = g.edges[f]
            .iter()
            .map(|&t| ix.fns[t].name.as_str())
            .collect();
        targets.sort_unstable();
        assert_eq!(targets, vec!["g", "top"]);
    }
}
