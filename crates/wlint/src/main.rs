//! CLI entry point: `cargo run -p wimi-lint [-- --json] [--root <dir>]`.
//!
//! Exit code is 0 when the workspace is clean (no unsuppressed
//! violations), 1 otherwise, 2 on usage or I/O errors — so CI can gate on
//! it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: wimi-lint [--json] [--root <workspace-dir>] [--list-rules]"
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in wimi_lint::Rule::ALL {
            println!("{:<16} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace that contains this crate when run via
    // `cargo run -p wimi-lint`, else the current directory.
    let root = root
        .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../..")))
        .unwrap_or_else(|| PathBuf::from("."));

    let report = match wimi_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wimi-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
