//! CLI entry point: `cargo run -p wimi-lint [-- <flags>]`.
//!
//! Exit code is 0 when the workspace is clean (no unsuppressed
//! violations), 1 otherwise, 2 on usage or I/O errors — so CI can gate on
//! it directly. `--sarif` emits SARIF 2.1.0 for code-scanning upload,
//! `--graph` dumps the resolved call graph, `--explain <rule>` prints a
//! rule's rationale and suppression contract.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: wimi-lint [--json | --sarif | --graph] [--root <workspace-dir>] [--list-rules] [--explain <rule>]"
}

fn main() -> ExitCode {
    let mut json = false;
    let mut sarif = false;
    let mut graph = false;
    let mut list_rules = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--graph" => graph = true,
            "--list-rules" => list_rules = true,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    eprintln!("--explain needs a rule name\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in wimi_lint::Rule::ALL {
            println!("{:<18} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(name) = explain {
        match wimi_lint::Rule::from_name(&name) {
            Some(rule) => {
                println!("{} — {}\n", rule.name(), rule.description());
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("unknown rule `{name}`; try --list-rules");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace that contains this crate when run via
    // `cargo run -p wimi-lint`, else the current directory.
    let root = root
        .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../..")))
        .unwrap_or_else(|| PathBuf::from("."));

    let (report, index, call_graph) = match wimi_lint::lint_workspace_full(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wimi-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if graph {
        print!("{}", wimi_lint::graph_dump(&index, &call_graph));
    } else if sarif {
        print!("{}", wimi_lint::sarif::render_sarif(&report));
    } else if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
