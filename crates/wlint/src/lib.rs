//! `wimi-lint` — the workspace static-analysis pass.
//!
//! The repo's correctness story rests on conventions the compiler does not
//! check: bitwise-reproducible parallel fan-out (no wall clock, no ambient
//! RNG, no hashed iteration order), panic-free library crates (errors flow
//! through the `wimi_core::error` taxonomy), float hygiene, unit-safe
//! public APIs, and allocation-free hot paths. This crate enforces them as
//! named, individually suppressable rules over a hand-rolled token stream
//! (std-only — no registry access, so no `syn`).
//!
//! v2 adds a workspace symbol index ([`index`]) and a conservative call
//! graph ([`graph`]); the `hot-path-alloc`, `panic-reach` and
//! `determinism-taint` rules trace *reachability* through it and print the
//! full call path in each violation. See DESIGN.md §14.
//!
//! Run with `cargo run -p wimi-lint` (add `--json` or `--sarif` for
//! machine output, `--graph` for the resolved call graph, `--explain
//! <rule>` for a rule's rationale).

pub mod graph;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod sarif;

pub use graph::{graph_dump, CallGraph, DepMap};
pub use index::WorkspaceIndex;
pub use rules::{lint_files, lint_source, FileReport, Rule, Suppression, Violation, WorkspaceLint};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Aggregate result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Workspace-relative paths of every file scanned, in walk order.
    pub files: Vec<String>,
    /// Unsuppressed violations across all files, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Pragma-suppressed occurrences across all files.
    pub suppressed: Vec<Suppression>,
}

impl LintReport {
    /// True when no unsuppressed violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts (deterministic order).
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.name()).or_insert(0) += 1;
        }
        m
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file,
                v.line,
                v.rule.name(),
                v.message
            ));
        }
        if !self.suppressed.is_empty() {
            out.push_str(&format!(
                "\n{} suppressed occurrence(s):\n",
                self.suppressed.len()
            ));
            for s in &self.suppressed {
                out.push_str(&format!(
                    "  {}:{}: [{}] allowed — {}\n",
                    s.file,
                    s.line,
                    s.rule.name(),
                    s.reason
                ));
            }
        }
        out.push_str(&format!(
            "\nwimi-lint: {} file(s) scanned, {} violation(s), {} suppressed\n",
            self.files.len(),
            self.violations.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Renders the machine-readable (`--json`) report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files.len()));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(v.rule.name()),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"message\": {}}}{}\n",
                json_str(s.rule.name()),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
                json_str(&s.message),
                if i + 1 < self.suppressed.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"clean\": {}\n", self.is_clean()));
        out.push('}');
        out.push('\n');
        out
    }
}

/// Escapes a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source directories linted: every workspace crate's `src/` plus the
/// root facade crate. Vendored stand-ins under `vendor/` are third-party
/// idiom and are deliberately out of scope.
fn source_roots(workspace_root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let crates_dir = workspace_root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let facade = workspace_root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }
    Ok(roots)
}

/// Parses the `[dependencies]` sections of every workspace member's
/// `Cargo.toml` into a [`DepMap`] keyed by crate directory. Line-oriented
/// on purpose: the manifests are ours, flat, and std has no TOML parser.
pub fn build_depmap(workspace_root: &Path) -> DepMap {
    let mut deps = DepMap::default();
    let import_to_dir = |key: &str| -> Option<String> {
        let import = key.replace('-', "_");
        graph::IMPORT_NAMES
            .iter()
            .find(|(n, _)| *n == import)
            .map(|(_, d)| d.to_string())
    };
    let mut add_manifest = |crate_dir: &str, manifest: &Path| {
        let Ok(text) = std::fs::read_to_string(manifest) else {
            return;
        };
        let mut in_deps = false;
        let mut direct: Vec<String> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(section) = line.strip_prefix('[') {
                in_deps = section.trim_end_matches(']') == "dependencies";
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let key: String = line
                .chars()
                .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
                .collect();
            if let Some(dir) = import_to_dir(&key) {
                direct.push(dir);
            }
        }
        direct.sort();
        direct.dedup();
        deps.direct.insert(crate_dir.to_string(), direct);
    };

    if let Ok(members) = std::fs::read_dir(workspace_root.join("crates")) {
        let mut dirs: Vec<PathBuf> = members.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for m in dirs {
            let manifest = m.join("Cargo.toml");
            if let Some(name) = m.file_name().and_then(|n| n.to_str()) {
                if manifest.is_file() {
                    add_manifest(name, &manifest);
                }
            }
        }
    }
    let facade = workspace_root.join("Cargo.toml");
    if facade.is_file() {
        add_manifest("wimi", &facade);
    }
    deps
}

/// Lints every workspace source file under `workspace_root`, returning the
/// report plus the index and call graph (for `--graph`).
pub fn lint_workspace_full(
    workspace_root: &Path,
) -> std::io::Result<(LintReport, WorkspaceIndex, CallGraph)> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for root in source_roots(workspace_root)? {
        let mut files = Vec::new();
        collect_rs(&root, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)?;
            sources.push((rel, source));
        }
    }
    let deps = build_depmap(workspace_root);
    let ws = lint_files(&sources, &deps);
    let report = LintReport {
        files: sources.into_iter().map(|(rel, _)| rel).collect(),
        violations: ws.violations,
        suppressed: ws.suppressed,
    };
    Ok((report, ws.index, ws.graph))
}

/// Lints every workspace source file under `workspace_root`.
pub fn lint_workspace(workspace_root: &Path) -> std::io::Result<LintReport> {
    lint_workspace_full(workspace_root).map(|(report, _, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_counts() {
        let mut r = LintReport::default();
        r.files.push("crates/x/src/lib.rs".to_string());
        r.violations.push(Violation {
            rule: Rule::Panic,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            message: "m".to_string(),
        });
        assert!(!r.is_clean());
        assert_eq!(r.counts_by_rule().get("panic"), Some(&1));
        assert!(r.render_text().contains("[panic]"));
        assert!(r.render_json().contains("\"clean\": false"));
    }

    #[test]
    fn depmap_reflects_the_real_manifests() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let deps = build_depmap(&root);
        let wdsp = deps.direct.get("wdsp").expect("wdsp indexed");
        assert!(wdsp.is_empty(), "wdsp is a leaf: {wdsp:?}");
        let core = deps.direct.get("core").expect("core indexed");
        for dep in ["wiphy", "wdsp", "wml", "wobs", "wtrace"] {
            assert!(core.contains(&dep.to_string()), "core missing {dep}");
        }
        assert!(
            !core.contains(&"core".to_string()),
            "vendored rand must not map to a workspace member"
        );
        let closure = deps.closure("wcampaign").expect("wcampaign known");
        assert!(
            closure.contains("wobs"),
            "transitive via wiphy: {closure:?}"
        );
        assert!(!closure.contains("wml"));
    }
}
