//! Workspace symbol index: every `fn`/method with its crate + module path,
//! the calls and rule-relevant sites inside each body, and each file's
//! `use` imports.
//!
//! The index is built from the hand-rolled token stream (`lexer`), not a
//! real AST, so it is deliberately conservative: item boundaries are
//! recognised by keyword + brace matching, calls by `path(`/`.method(`
//! shapes, and anything unrecognised is skipped rather than guessed at.
//! The call graph (`graph`) over-approximates on top of this — a missing
//! edge is possible only for constructs the indexer cannot see (function
//! pointers, macro-generated calls), which the DESIGN §14 contract
//! documents.

use crate::lexer::{lex, LexOutput, Pragma, Tok, Token};

/// How many lines below a `// wlint: hot` / `// wlint: artifact` marker the
/// marked `fn` item may start (attributes and visibility sit in between).
pub const MARKER_WINDOW: u32 = 5;

/// One rule-relevant location inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line of the occurrence.
    pub line: u32,
    /// Short description of what occurs there (`vec!`, `.unwrap()`, ...).
    pub what: String,
}

/// What kind of nondeterminism a taint site introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `Instant::now()` / `SystemTime::now()` wall-clock read.
    WallClock,
    /// `env::var` outside the `WIMI_THREADS`/`WIMI_CHUNK` allowlist.
    EnvVar,
    /// `thread::current()` (thread IDs are scheduling-dependent).
    ThreadId,
    /// `HashMap`/`HashSet` (unspecified iteration order).
    HashIter,
}

/// A call reference found in a function body, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `f(...)` — resolved through imports, then module, then crate.
    Bare(String),
    /// `a::b::f(...)` — resolved through the qualified path.
    Qualified(Vec<String>),
    /// `.m(...)` — over-approximated to every known method named `m` in
    /// the caller's dependency closure.
    Method(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// 1-based line of the call.
    pub line: u32,
    /// The callee reference as written.
    pub kind: CallKind,
}

/// One indexed function or method definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Crate directory name (`wiphy`, `core`, ...; the facade is `wimi`).
    pub crate_dir: String,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module_path: Vec<String>,
    /// `Some(TypeName)` for methods (inherent, trait impl, or trait decl).
    pub self_ty: Option<String>,
    /// The function's own name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` token.
    pub decl_line: u32,
    /// 1-based line where the item starts (first attribute/visibility
    /// token) — suppression pragmas bind to the lines just above this.
    pub item_line: u32,
    /// `pub` (including `pub(crate)` etc.) visibility.
    pub is_pub: bool,
    /// Bound to a `// wlint: hot` marker.
    pub is_hot: bool,
    /// Bound to a `// wlint: artifact` marker.
    pub is_artifact: bool,
    /// Declared inside a `#[test]`/`#[cfg(test)]` region.
    pub in_test: bool,
    /// Calls found in the body, in source order.
    pub calls: Vec<CallRef>,
    /// Heap-allocation sites in the body.
    pub alloc_sites: Vec<Site>,
    /// Panic sites (`panic!`-family macros, `.unwrap()`, `.expect(`).
    pub panic_sites: Vec<Site>,
    /// Slice-index sites (`x[i]` — panics when out of bounds).
    pub index_sites: Vec<Site>,
    /// Nondeterminism sources in the body.
    pub taint_sites: Vec<(Site, TaintKind)>,
}

impl FnDef {
    /// `crate::module::Type::name`-style display path for messages.
    pub fn display_path(&self) -> String {
        let mut s = self.crate_dir.clone();
        for m in &self.module_path {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(ty) = &self.self_ty {
            s.push_str("::");
            s.push_str(ty);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// Per-file metadata the resolver needs beyond the functions themselves.
#[derive(Debug, Clone, Default)]
pub struct FileMeta {
    /// Crate directory name of the file.
    pub crate_dir: String,
    /// `use` aliases: local name → absolute path segments as written
    /// (leading `crate`/`self`/`super` preserved).
    pub imports: Vec<(String, Vec<String>)>,
    /// Glob imports: module paths whose items are all in scope.
    pub globs: Vec<Vec<String>>,
    /// Module path the file itself roots at (from its path under `src/`).
    pub module_path: Vec<String>,
    /// Suppression pragmas in the file (used for path-level suppression).
    pub pragmas: Vec<Pragma>,
}

/// The whole-workspace symbol index.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Every indexed function, in (file, declaration) order.
    pub fns: Vec<FnDef>,
    /// Per-file metadata, in walk order.
    pub files: Vec<(String, FileMeta)>,
    /// `// wlint: hot`/`artifact` markers that did not bind to a `fn`:
    /// (file, marker line, marker kind, kind of the item actually found).
    pub unbound_markers: Vec<(String, u32, &'static str, String)>,
}

impl WorkspaceIndex {
    /// Adds one file to the index.
    pub fn add_file(&mut self, rel_path: &str, source: &str) {
        let lexed = lex(source);
        self.add_lexed(rel_path, &lexed);
    }

    /// Adds one already-lexed file (lets the lint driver lex each file
    /// exactly once for both the per-file rules and the index).
    pub fn add_lexed(&mut self, rel_path: &str, lexed: &LexOutput) {
        index_file(rel_path, lexed, self);
    }

    /// Metadata for `file`, if indexed.
    pub fn meta(&self, file: &str) -> Option<&FileMeta> {
        self.files.iter().find(|(f, _)| f == file).map(|(_, m)| m)
    }
}

/// Derives the crate short name from a workspace-relative path
/// (`crates/wiphy/src/csi.rs` → `wiphy`; the facade `src/lib.rs` → `wimi`).
pub fn crate_of(rel_path: &str) -> &str {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        parts[1]
    } else {
        "wimi"
    }
}

/// Module path a file roots at, from its path under `src/`
/// (`crates/wdsp/src/wavelet/denoise.rs` → `["wavelet", "denoise"]`,
/// `.../wavelet/mod.rs` → `["wavelet"]`, `lib.rs`/`main.rs` → `[]`).
fn file_module_path(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let Some(src_at) = parts.iter().position(|p| *p == "src") else {
        return Vec::new();
    };
    let mut path: Vec<String> = parts[src_at + 1..]
        .iter()
        .map(|s| s.trim_end_matches(".rs").to_string())
        .collect();
    match path.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            path.pop();
        }
        _ => {}
    }
    path
}

/// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].kind != Tok::Punct("#") || tokens[i + 1].kind != Tok::Punct("[") {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        let mut attr_end = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct("[") => depth += 1,
                Tok::Punct("]") => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(j);
                        break;
                    }
                }
                Tok::Ident(s) => attr_idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => attr_idents.contains(&"test") && !attr_idents.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Find the item body: the first `{` before a top-level `;`.
        let mut k = attr_end + 1;
        let mut body_open = None;
        while k < tokens.len() {
            match tokens[k].kind {
                Tok::Punct("{") => {
                    body_open = Some(k);
                    break;
                }
                Tok::Punct(";") => break,
                _ => k += 1,
            }
        }
        let Some(open) = body_open else {
            i = attr_end + 1;
            continue;
        };
        let close = match_brace(tokens, open);
        regions.push((attr_start_line, tokens[close].line));
        i = close + 1;
    }
    regions
}

/// Index of the `}` matching the `{` at `open` (or the last token when the
/// file is truncated mid-item).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (n, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return n;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Indexes one lexed file into `out`.
fn index_file(rel_path: &str, lexed: &LexOutput, out: &mut WorkspaceIndex) {
    let tokens = &lexed.tokens;
    let crate_dir = crate_of(rel_path).to_string();
    let regions = test_regions(tokens);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| line >= a && line <= b);

    let mut meta = FileMeta {
        crate_dir: crate_dir.clone(),
        module_path: file_module_path(rel_path),
        pragmas: lexed.pragmas.clone(),
        ..FileMeta::default()
    };

    // (start line, item keyword, fn index in out.fns) for marker binding.
    let mut item_starts: Vec<(u32, String, Option<usize>)> = Vec::new();

    let mut walker = Walker {
        rel_path,
        crate_dir: &crate_dir,
        tokens,
        in_test: &in_test,
        meta: &mut meta,
        fns: &mut out.fns,
        item_starts: &mut item_starts,
    };
    let file_mod = walker.meta.module_path.clone();
    walker.items(0, tokens.len(), &file_mod, None);

    // Bind hot/artifact markers to the first item starting after them.
    for (markers, marker_kind) in [
        (&lexed.hot_markers, "hot"),
        (&lexed.artifact_markers, "artifact"),
    ] {
        for &marker in markers.iter() {
            let hit = item_starts.iter().find(|(line, _, _)| *line > marker);
            match hit {
                Some((line, kw, Some(fn_idx))) if kw == "fn" && *line <= marker + MARKER_WINDOW => {
                    if marker_kind == "hot" {
                        out.fns[*fn_idx].is_hot = true;
                    } else {
                        out.fns[*fn_idx].is_artifact = true;
                    }
                }
                Some((line, kw, _)) if *line <= marker + MARKER_WINDOW => {
                    out.unbound_markers.push((
                        rel_path.to_string(),
                        marker,
                        marker_kind,
                        kw.clone(),
                    ));
                }
                _ => {
                    out.unbound_markers.push((
                        rel_path.to_string(),
                        marker,
                        marker_kind,
                        "nothing".to_string(),
                    ));
                }
            }
        }
    }

    out.files.push((rel_path.to_string(), meta));
}

/// The recursive item walker. Borrows the per-file state so helper methods
/// stay short.
struct Walker<'a> {
    rel_path: &'a str,
    crate_dir: &'a str,
    tokens: &'a [Token],
    in_test: &'a dyn Fn(u32) -> bool,
    meta: &'a mut FileMeta,
    fns: &'a mut Vec<FnDef>,
    item_starts: &'a mut Vec<(u32, String, Option<usize>)>,
}

impl Walker<'_> {
    fn kind(&self, i: usize) -> Option<&Tok> {
        self.tokens.get(i).map(|t| &t.kind)
    }

    fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Walks items in `[i, end)` at one nesting level.
    fn items(&mut self, mut i: usize, end: usize, module_path: &[String], self_ty: Option<&str>) {
        while i < end {
            match self.kind(i) {
                Some(Tok::Punct("#")) => {
                    // Attribute: record as the item start, then skip it.
                    let start_line = self.line(i);
                    let mut j = i + 1;
                    if self.kind(j) == Some(&Tok::Punct("!")) {
                        j += 1;
                    }
                    if self.kind(j) == Some(&Tok::Punct("[")) {
                        let mut depth = 0usize;
                        while j < end {
                            match self.kind(j) {
                                Some(Tok::Punct("[")) => depth += 1,
                                Some(Tok::Punct("]")) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        i = self.item(j + 1, end, module_path, self_ty, start_line);
                    } else {
                        i = j;
                    }
                }
                Some(Tok::Ident(_)) => {
                    let start_line = self.line(i);
                    i = self.item(i, end, module_path, self_ty, start_line);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses one item starting at `i` (after any attributes); returns the
    /// index just past it.
    fn item(
        &mut self,
        mut i: usize,
        end: usize,
        module_path: &[String],
        self_ty: Option<&str>,
        item_line: u32,
    ) -> usize {
        // Visibility and qualifiers.
        let mut is_pub = false;
        loop {
            match self.kind(i) {
                Some(Tok::Ident(s)) if s == "pub" => {
                    is_pub = true;
                    i += 1;
                    if self.kind(i) == Some(&Tok::Punct("(")) {
                        i = self.match_paren(i) + 1;
                    }
                }
                Some(Tok::Ident(s))
                    if matches!(s.as_str(), "const" | "async" | "unsafe" | "default")
                        && matches!(self.kind(i + 1), Some(Tok::Ident(n)) if n == "fn")
                            | matches!(
                                self.kind(i + 1),
                                Some(Tok::Ident(n)) if matches!(n.as_str(), "const" | "async" | "unsafe" | "extern" | "fn")
                            ) =>
                {
                    // `const fn` / `async fn` / `unsafe fn` qualifier (but a
                    // `const NAME` item falls through below).
                    i += 1;
                }
                Some(Tok::Ident(s)) if s == "extern" => {
                    i += 1;
                    if matches!(self.kind(i), Some(Tok::Str(_))) {
                        i += 1;
                    }
                    // `extern "C" { ... }` block: skip wholesale.
                    if self.kind(i) == Some(&Tok::Punct("{")) {
                        self.item_starts
                            .push((item_line, "extern".to_string(), None));
                        return self.match_braces_from(i) + 1;
                    }
                }
                _ => break,
            }
        }
        let Some(Tok::Ident(kw)) = self.kind(i) else {
            return i + 1;
        };
        let kw = kw.clone();
        match kw.as_str() {
            "fn" => self.fn_item(i, module_path, self_ty, is_pub, item_line),
            "mod" => {
                self.item_starts.push((item_line, "mod".to_string(), None));
                let name = match self.kind(i + 1) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => return i + 1,
                };
                let mut j = i + 2;
                while j < end {
                    match self.kind(j) {
                        Some(Tok::Punct(";")) => return j + 1,
                        Some(Tok::Punct("{")) => {
                            let close = self.match_braces_from(j);
                            let mut inner = module_path.to_vec();
                            inner.push(name);
                            self.items(j + 1, close, &inner, None);
                            return close + 1;
                        }
                        _ => j += 1,
                    }
                }
                j
            }
            "impl" | "trait" => {
                self.item_starts.push((item_line, kw.clone(), None));
                // Self type: for `impl`, the path after `for` if present,
                // else the first path after generics; for `trait`, the name.
                let mut j = i + 1;
                let mut angle = 0isize;
                let mut last_path_ident: Option<String> = None;
                let mut after_for: Option<String> = None;
                let mut saw_for = false;
                while j < end {
                    match self.kind(j) {
                        Some(Tok::Punct("{")) if angle <= 0 => break,
                        Some(Tok::Punct(";")) if angle <= 0 => return j + 1,
                        Some(Tok::Punct("<")) => angle += 1,
                        Some(Tok::Punct(">")) => angle -= 1,
                        Some(Tok::Punct("->")) => {}
                        Some(Tok::Ident(s)) if angle <= 0 => {
                            if s == "for" {
                                saw_for = true;
                            } else if s == "where" {
                                // Type position ends at the where clause.
                            } else if saw_for && after_for.is_none() {
                                after_for = Some(s.clone());
                            } else if !saw_for {
                                last_path_ident = Some(s.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j >= end {
                    return j;
                }
                let ty = if kw == "trait" {
                    // `trait Name` — the first ident is the name.
                    self.tokens[i + 1..j].iter().find_map(|t| match &t.kind {
                        Tok::Ident(s) => Some(s.clone()),
                        _ => None,
                    })
                } else {
                    after_for.or(last_path_ident)
                };
                let close = self.match_braces_from(j);
                self.items(j + 1, close, module_path, ty.as_deref());
                close + 1
            }
            "struct" | "enum" | "union" | "type" | "const" | "static" => {
                self.item_starts.push((item_line, kw.clone(), None));
                // Skip to the terminating `;` or brace group at depth 0.
                let mut j = i + 1;
                let mut depth = 0isize;
                while j < end {
                    match self.kind(j) {
                        Some(Tok::Punct("(")) | Some(Tok::Punct("[")) => depth += 1,
                        Some(Tok::Punct(")")) | Some(Tok::Punct("]")) => depth -= 1,
                        Some(Tok::Punct("{")) if depth == 0 => {
                            // Struct/enum body (or a const's value block).
                            return self.match_braces_from(j) + 1;
                        }
                        Some(Tok::Punct(";")) if depth == 0 => return j + 1,
                        _ => {}
                    }
                    j += 1;
                }
                j
            }
            "use" => {
                self.item_starts.push((item_line, "use".to_string(), None));
                let mut j = i + 1;
                while j < end && self.kind(j) != Some(&Tok::Punct(";")) {
                    j += 1;
                }
                self.parse_use(i + 1, j);
                j + 1
            }
            "macro_rules" => {
                self.item_starts
                    .push((item_line, "macro_rules".to_string(), None));
                let mut j = i + 1;
                while j < end && self.kind(j) != Some(&Tok::Punct("{")) {
                    j += 1;
                }
                if j < end {
                    self.match_braces_from(j) + 1
                } else {
                    j
                }
            }
            _ => i + 1,
        }
    }

    /// Parses a `fn` item at `i` (the `fn` token); returns the index past it.
    fn fn_item(
        &mut self,
        i: usize,
        module_path: &[String],
        self_ty: Option<&str>,
        is_pub: bool,
        item_line: u32,
    ) -> usize {
        let decl_line = self.line(i);
        let name = match self.kind(i + 1) {
            Some(Tok::Ident(n)) => n.clone(),
            _ => return i + 1,
        };
        // Find the body `{` or the `;` of a bodiless signature, skipping
        // generics/params/return type/where clause.
        let mut j = i + 2;
        let mut angle = 0isize;
        let mut paren = 0isize;
        let mut body_open = None;
        while j < self.tokens.len() {
            match self.kind(j) {
                Some(Tok::Punct("<")) => angle += 1,
                Some(Tok::Punct(">")) => angle -= 1,
                Some(Tok::Punct("(")) | Some(Tok::Punct("[")) => paren += 1,
                Some(Tok::Punct(")")) | Some(Tok::Punct("]")) => paren -= 1,
                Some(Tok::Punct("{")) if paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                Some(Tok::Punct(";")) if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let _ = angle;
        let mut def = FnDef {
            crate_dir: self.crate_dir.to_string(),
            module_path: module_path.to_vec(),
            self_ty: self_ty.map(str::to_string),
            name,
            file: self.rel_path.to_string(),
            decl_line,
            item_line,
            is_pub,
            is_hot: false,
            is_artifact: false,
            in_test: (self.in_test)(decl_line),
            calls: Vec::new(),
            alloc_sites: Vec::new(),
            panic_sites: Vec::new(),
            index_sites: Vec::new(),
            taint_sites: Vec::new(),
        };
        let next = match body_open {
            Some(open) => {
                let close = match_brace(self.tokens, open);
                extract_body(self.tokens, open, close, &mut def);
                close + 1
            }
            None => j + 1,
        };
        let fn_idx = self.fns.len();
        self.item_starts
            .push((item_line, "fn".to_string(), Some(fn_idx)));
        self.fns.push(def);
        next
    }

    /// Parses the token span of one `use` item (without `use` and `;`) into
    /// the file's import and glob tables.
    fn parse_use(&mut self, i: usize, end: usize) {
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(i, end, &mut prefix);
    }

    /// Recursive `use` tree: `a::b::{c, d as e, f::*, self}`.
    /// Returns the index just past the parsed subtree.
    fn use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) -> usize {
        let depth_at_entry = prefix.len();
        while i < end {
            match self.kind(i) {
                Some(Tok::Ident(s)) if s == "as" => {
                    let alias = match self.kind(i + 1) {
                        Some(Tok::Ident(a)) => a.clone(),
                        _ => break,
                    };
                    self.meta.imports.push((alias, prefix.clone()));
                    prefix.truncate(depth_at_entry);
                    return i + 2;
                }
                Some(Tok::Ident(s)) => {
                    if s == "self" && prefix.len() > depth_at_entry {
                        // `{self, ...}`: the prefix itself is imported.
                        // (Only meaningful inside a group; a leading `self`
                        // is a path qualifier and stays in the prefix.)
                    }
                    prefix.push(s.clone());
                    i += 1;
                }
                Some(Tok::Punct("::")) => i += 1,
                Some(Tok::Punct("*")) => {
                    self.meta.globs.push(prefix.clone());
                    prefix.truncate(depth_at_entry);
                    return i + 1;
                }
                Some(Tok::Punct("{")) => {
                    // Group: each sibling subtree restores the prefix to the
                    // group's path itself before returning.
                    i += 1;
                    loop {
                        let before = i;
                        i = self.use_tree(i, end, prefix);
                        match self.kind(i) {
                            Some(Tok::Punct(",")) => i += 1,
                            Some(Tok::Punct("}")) => {
                                i += 1;
                                break;
                            }
                            _ if i >= end || i == before => break,
                            _ => {}
                        }
                    }
                    prefix.truncate(depth_at_entry);
                    return i;
                }
                Some(Tok::Punct(",")) | Some(Tok::Punct("}")) => {
                    // End of this subtree: emit the accumulated path.
                    self.finish_use_leaf(prefix, depth_at_entry);
                    return i;
                }
                _ => i += 1,
            }
        }
        self.finish_use_leaf(prefix, depth_at_entry);
        i
    }

    /// Emits the leaf import for a finished subtree path.
    fn finish_use_leaf(&mut self, prefix: &mut Vec<String>, depth_at_entry: usize) {
        if prefix.len() > depth_at_entry {
            let alias = match prefix.last().map(String::as_str) {
                // `use a::b::{self}` imports `b`.
                Some("self") if prefix.len() >= 2 => prefix[prefix.len() - 2].clone(),
                Some(last) => last.to_string(),
                None => return,
            };
            let mut path = prefix.clone();
            if path.last().map(String::as_str) == Some("self") {
                path.pop();
            }
            self.meta.imports.push((alias, path));
            prefix.truncate(depth_at_entry);
        }
    }

    fn match_paren(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.tokens.len() {
            match self.kind(j) {
                Some(Tok::Punct("(")) => depth += 1,
                Some(Tok::Punct(")")) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j.saturating_sub(1)
    }

    fn match_braces_from(&self, open: usize) -> usize {
        match_brace(self.tokens, open)
    }
}

/// Identifiers that look like calls (`kw (`) but are control flow or
/// bindings, never callees.
const NOT_CALLEES: [&str; 28] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "let", "fn", "impl", "where", "unsafe", "async", "await", "dyn", "box",
    "pub", "use", "mod", "crate", "Self",
];

/// Constructors whose *call* allocates; a bare path (e.g. `Vec::new` passed
/// to `resize_with` as a constructor function) does not fire.
pub const ALLOC_CTOR_TYPES: [&str; 7] = [
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Constructor method names that allocate when called on an
/// [`ALLOC_CTOR_TYPES`] type.
pub const ALLOC_CTOR_METHODS: [&str; 3] = ["new", "with_capacity", "from"];

/// Method calls that allocate a fresh buffer regardless of receiver.
pub const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_owned", "to_string"];

/// Macros that unconditionally panic.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// `env::var` keys that are part of the deterministic contract (they select
/// the fan-out shape, and CI diffs artifacts across their settings).
pub const ENV_ALLOWLIST: [&str; 2] = ["WIMI_THREADS", "WIMI_CHUNK"];

/// Extracts calls and rule-relevant sites from a body span `[open..=close]`.
fn extract_body(tokens: &[Token], open: usize, close: usize, def: &mut FnDef) {
    let kind = |i: usize| tokens.get(i).map(|t| &t.kind);
    for idx in open..=close.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[idx];
        let line = t.line;
        match &t.kind {
            // ---- Call detection anchored at `(` ----
            Tok::Punct("(") => {
                if let Some(call) = call_before_paren(tokens, idx) {
                    def.calls.push(CallRef { line, kind: call });
                }
            }
            // ---- Allocation + panic macro sites ----
            Tok::Ident(s) if kind(idx + 1) == Some(&Tok::Punct("!")) => {
                if s == "vec" || s == "format" {
                    def.alloc_sites.push(Site {
                        line,
                        what: format!("{s}!"),
                    });
                } else if PANIC_MACROS.contains(&s.as_str()) {
                    def.panic_sites.push(Site {
                        line,
                        what: format!("{s}!"),
                    });
                }
            }
            Tok::Ident(s) if ALLOC_CTOR_TYPES.contains(&s.as_str()) => {
                if let (Some(Tok::Punct("::")), Some(Tok::Ident(m)), Some(Tok::Punct("("))) =
                    (kind(idx + 1), kind(idx + 2), kind(idx + 3))
                {
                    if ALLOC_CTOR_METHODS.contains(&m.as_str()) {
                        def.alloc_sites.push(Site {
                            line,
                            what: format!("{s}::{m}()"),
                        });
                    }
                }
            }
            // ---- Taint sources ----
            Tok::Ident(s) if s == "Instant" || s == "SystemTime" => {
                if let (Some(Tok::Punct("::")), Some(Tok::Ident(m))) =
                    (kind(idx + 1), kind(idx + 2))
                {
                    if m == "now" {
                        def.taint_sites.push((
                            Site {
                                line,
                                what: format!("{s}::now()"),
                            },
                            TaintKind::WallClock,
                        ));
                    }
                }
            }
            Tok::Ident(s) if s == "HashMap" || s == "HashSet" => {
                def.taint_sites.push((
                    Site {
                        line,
                        what: s.clone(),
                    },
                    TaintKind::HashIter,
                ));
            }
            Tok::Ident(s) if s == "env" => {
                if let (Some(Tok::Punct("::")), Some(Tok::Ident(m)), Some(Tok::Punct("("))) =
                    (kind(idx + 1), kind(idx + 2), kind(idx + 3))
                {
                    if m == "var" || m == "var_os" {
                        let allowed = matches!(
                            kind(idx + 4),
                            Some(Tok::Str(key)) if ENV_ALLOWLIST.contains(&key.as_str())
                        );
                        if !allowed {
                            let key = match kind(idx + 4) {
                                Some(Tok::Str(k)) => format!("\"{k}\""),
                                _ => "<dynamic>".to_string(),
                            };
                            def.taint_sites.push((
                                Site {
                                    line,
                                    what: format!("env::{m}({key})"),
                                },
                                TaintKind::EnvVar,
                            ));
                        }
                    }
                }
            }
            Tok::Ident(s) if s == "thread" => {
                if let (Some(Tok::Punct("::")), Some(Tok::Ident(m))) =
                    (kind(idx + 1), kind(idx + 2))
                {
                    if m == "current" {
                        def.taint_sites.push((
                            Site {
                                line,
                                what: "thread::current()".to_string(),
                            },
                            TaintKind::ThreadId,
                        ));
                    }
                }
            }
            // ---- `.method` allocation/panic sites ----
            Tok::Punct(".") => {
                if let Some(Tok::Ident(m)) = kind(idx + 1) {
                    if ALLOC_METHODS.contains(&m.as_str()) {
                        def.alloc_sites.push(Site {
                            line,
                            what: format!(".{m}()"),
                        });
                    } else if m == "unwrap" || m == "expect" {
                        def.panic_sites.push(Site {
                            line,
                            what: format!(".{m}()"),
                        });
                    }
                }
            }
            // ---- Slice-index sites: `[` directly after a value ----
            Tok::Punct("[") => {
                let value_before = matches!(
                    kind(idx.wrapping_sub(1)),
                    Some(Tok::Ident(prev)) if idx > open && !NOT_CALLEES.contains(&prev.as_str())
                ) || matches!(
                    kind(idx.wrapping_sub(1)),
                    Some(Tok::Punct(")")) | Some(Tok::Punct("]")) if idx > open
                );
                if value_before {
                    def.index_sites.push(Site {
                        line,
                        what: "slice index".to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Reconstructs the callee reference ending just before the `(` at `idx`,
/// if the tokens form a call.
fn call_before_paren(tokens: &[Token], idx: usize) -> Option<CallKind> {
    let kind = |i: usize| tokens.get(i).map(|t| &t.kind);
    if idx == 0 {
        return None;
    }
    let mut j = idx - 1;
    // Turbofish: `name::<T>(` — step back over the angle group and `::`.
    if kind(j) == Some(&Tok::Punct(">")) {
        let mut angle = 0isize;
        loop {
            match kind(j) {
                Some(Tok::Punct(">")) => angle += 1,
                Some(Tok::Punct("<")) => {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j < 1 || kind(j - 1) != Some(&Tok::Punct("::")) {
            return None;
        }
        j -= 2;
    }
    let name = match kind(j) {
        Some(Tok::Ident(s)) => s.clone(),
        _ => return None,
    };
    if NOT_CALLEES.contains(&name.as_str()) {
        return None;
    }
    // Macro call `name!(` never reaches here (`!` sits before `(`), but a
    // `name !(` split across the turbofish path cannot occur either.
    // Walk the qualified path backwards: `a::b::name`.
    let mut segs = vec![name];
    while j >= 2 && kind(j - 1) == Some(&Tok::Punct("::")) {
        match kind(j - 2) {
            Some(Tok::Ident(s)) => {
                segs.insert(0, s.clone());
                j -= 2;
            }
            // Mid-path turbofish: `Vec::<f64>::new` — hop over `::<f64>`
            // back to the type segment the generics attach to.
            Some(Tok::Punct(">")) => {
                let mut k = j - 2;
                let mut angle = 0isize;
                loop {
                    match kind(k) {
                        Some(Tok::Punct(">")) => angle += 1,
                        Some(Tok::Punct("<")) => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if angle != 0 || k < 2 || kind(k - 1) != Some(&Tok::Punct("::")) {
                    break;
                }
                match kind(k - 2) {
                    Some(Tok::Ident(s)) => {
                        segs.insert(0, s.clone());
                        j = k - 2;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    // What sits before the path start?
    let before = if j == 0 { None } else { kind(j - 1) };
    match before {
        // `fn name(` — a declaration, not a call (nested fn).
        Some(Tok::Ident(s)) if s == "fn" => None,
        // `.name(` — method call (single segment only).
        Some(Tok::Punct(".")) if segs.len() == 1 => Some(CallKind::Method(segs.pop()?)),
        // `.a::b(` cannot parse in Rust; treat as qualified anyway.
        _ if segs.len() > 1 => Some(CallKind::Qualified(segs)),
        _ => Some(CallKind::Bare(segs.pop()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_one(path: &str, src: &str) -> WorkspaceIndex {
        let mut ix = WorkspaceIndex::default();
        ix.add_file(path, src);
        ix
    }

    #[test]
    fn fns_get_crate_module_and_type_paths() {
        let src = "
pub fn free() {}
mod inner {
    impl Widget {
        pub(crate) fn method(&self) {}
    }
    trait Render {
        fn draw(&self) { helper(); }
    }
}
";
        let ix = index_one("crates/wdsp/src/wavelet/mod.rs", src);
        let paths: Vec<String> = ix.fns.iter().map(|f| f.display_path()).collect();
        assert_eq!(
            paths,
            vec![
                "wdsp::wavelet::free",
                "wdsp::wavelet::inner::Widget::method",
                "wdsp::wavelet::inner::Render::draw",
            ]
        );
        assert!(ix.fns[0].is_pub);
        assert!(ix.fns[1].is_pub, "pub(crate) counts as pub");
        assert_eq!(ix.fns[2].calls.len(), 1);
    }

    #[test]
    fn impl_for_binds_methods_to_the_implementing_type() {
        let src = "
impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { write_it(f) }
}
";
        let ix = index_one("crates/core/src/error.rs", src);
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].self_ty.as_deref(), Some("Report"));
    }

    #[test]
    fn calls_are_classified_bare_qualified_method() {
        let src = "
fn f() {
    helper();
    crate::m::helper2();
    wimi_dsp::stats::variance(&[1.0]);
    x.method_call();
    y.turbo::<f64>();
    Vec::<f64>::new();
    if (a) { return (b); }
}
";
        let ix = index_one("crates/core/src/x.rs", src);
        let calls = &ix.fns[0].calls;
        let shapes: Vec<String> = calls
            .iter()
            .map(|c| match &c.kind {
                CallKind::Bare(n) => format!("bare:{n}"),
                CallKind::Qualified(p) => format!("qual:{}", p.join("::")),
                CallKind::Method(n) => format!("method:{n}"),
            })
            .collect();
        assert!(shapes.contains(&"bare:helper".to_string()), "{shapes:?}");
        assert!(
            shapes.contains(&"qual:crate::m::helper2".to_string()),
            "{shapes:?}"
        );
        assert!(
            shapes.contains(&"qual:wimi_dsp::stats::variance".to_string()),
            "{shapes:?}"
        );
        assert!(
            shapes.contains(&"method:method_call".to_string()),
            "{shapes:?}"
        );
        assert!(shapes.contains(&"method:turbo".to_string()), "{shapes:?}");
        assert!(
            shapes.contains(&"qual:Vec::new".to_string()),
            "turbofish on a qualified path: {shapes:?}"
        );
        assert!(
            !shapes.iter().any(|s| s == "bare:if" || s == "bare:return"),
            "{shapes:?}"
        );
    }

    #[test]
    fn sites_are_extracted_per_fn() {
        let src = "
fn f(v: &[f64], i: usize) -> f64 {
    let a = vec![0.0];
    let b: Vec<f64> = v.iter().map(|x| x + 1.0).collect();
    let t = std::time::Instant::now();
    let k = std::env::var(\"HOSTNAME\");
    let ok = std::env::var(\"WIMI_THREADS\");
    let _ = (a, b, t, k, ok);
    v[i] + v.first().unwrap()
}
";
        let ix = index_one("crates/experiments/src/x.rs", src);
        let f = &ix.fns[0];
        assert_eq!(f.alloc_sites.len(), 2, "{:?}", f.alloc_sites);
        assert_eq!(f.panic_sites.len(), 1, "{:?}", f.panic_sites);
        assert_eq!(f.index_sites.len(), 1, "{:?}", f.index_sites);
        let taints: Vec<&str> = f.taint_sites.iter().map(|(s, _)| s.what.as_str()).collect();
        assert!(taints.contains(&"Instant::now()"), "{taints:?}");
        assert!(taints.contains(&"env::var(\"HOSTNAME\")"), "{taints:?}");
        assert_eq!(f.taint_sites.len(), 2, "allowlisted key exempt: {taints:?}");
    }

    #[test]
    fn use_imports_parse_groups_renames_and_globs() {
        let src = "
use wimi_dsp::stats::{median_in, variance as var};
use wimi_phy::csi::CsiCapture;
use crate::helpers as h;
use wimi_ml::dataset::*;
fn f() {}
";
        let ix = index_one("crates/core/src/x.rs", src);
        let meta = ix.meta("crates/core/src/x.rs").unwrap();
        let find = |alias: &str| {
            meta.imports
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(
            find("median_in").as_deref(),
            Some("wimi_dsp::stats::median_in")
        );
        assert_eq!(find("var").as_deref(), Some("wimi_dsp::stats::variance"));
        assert_eq!(
            find("CsiCapture").as_deref(),
            Some("wimi_phy::csi::CsiCapture")
        );
        assert_eq!(find("h").as_deref(), Some("crate::helpers"));
        assert_eq!(meta.globs, vec![vec!["wimi_ml", "dataset"]]);
    }

    #[test]
    fn hot_marker_binds_only_to_the_next_fn_item() {
        let src = "
// wlint: hot
fn marked() {}

// wlint: hot
impl Foo {
    fn not_marked(&self) {}
}
";
        let ix = index_one("crates/wdsp/src/x.rs", src);
        let marked: Vec<&str> = ix
            .fns
            .iter()
            .filter(|f| f.is_hot)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(marked, vec!["marked"]);
        assert_eq!(ix.unbound_markers.len(), 1);
        assert_eq!(ix.unbound_markers[0].1, 5);
        assert_eq!(ix.unbound_markers[0].2, "hot");
        assert_eq!(ix.unbound_markers[0].3, "impl");
    }

    #[test]
    fn marker_binds_through_attributes_and_visibility() {
        let src = "
// wlint: hot
#[inline]
pub fn fast() {}
";
        let ix = index_one("crates/wdsp/src/x.rs", src);
        assert!(ix.fns[0].is_hot);
        assert!(ix.unbound_markers.is_empty());
    }

    #[test]
    fn file_module_paths_derive_from_src_layout() {
        assert_eq!(
            file_module_path("crates/wdsp/src/wavelet/denoise.rs"),
            vec!["wavelet", "denoise"]
        );
        assert_eq!(
            file_module_path("crates/wdsp/src/wavelet/mod.rs"),
            vec!["wavelet"]
        );
        assert!(file_module_path("crates/wdsp/src/lib.rs").is_empty());
        assert!(file_module_path("src/lib.rs").is_empty());
    }

    #[test]
    fn indexer_survives_truncated_and_hostile_source() {
        for src in [
            "fn f( {",
            "impl {",
            "use ::{{{",
            "fn f() { x[ }",
            "pub pub pub",
            "mod m { fn g() { vec![ } ",
            "// wlint: hot",
            "trait T",
        ] {
            let mut ix = WorkspaceIndex::default();
            ix.add_file("crates/x/src/lib.rs", src);
        }
    }
}
