//! Composable, seeded fault injection for CSI captures.
//!
//! The benign impairment stack in [`crate::hardware`] models what a healthy
//! commodity NIC always does to CSI. Real deployments additionally suffer
//! *episodic* faults: frames lost to contention, an RF chain dying
//! mid-capture, the AGC slamming to a new gain set-point, the ADC clipping
//! under a strong interferer, co-channel bursts, and driver bugs that
//! deliver the same (stale) CSI twice. A [`FaultPlan`] injects exactly
//! those, deterministically from a seed, so robustness experiments and the
//! degradation tests are reproducible bit for bit.
//!
//! Faults compose: every injector is gated by its own probability, and
//! [`FaultPlan::scaled`] scales all probabilities at once to sweep a single
//! "fault intensity" axis. An all-zero plan (intensity 0) is the *identity*
//! on captures — the degradation curve's origin is exactly the un-faulted
//! simulator.
//!
//! # Examples
//!
//! ```
//! use wimi_phy::csi::CsiSource;
//! use wimi_phy::fault::FaultPlan;
//! use wimi_phy::scenario::{Scenario, Simulator};
//!
//! let mut sim = Simulator::new(Scenario::builder().build(), 1);
//! sim.set_fault_plan(Some(FaultPlan::hostile(9).scaled(0.3)));
//! let cap = sim.capture(20);
//! assert!(cap.len() <= 20); // packet loss may shorten the capture
//! ```

use crate::complex::Complex;
use crate::csi::CsiCapture;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, composable set of capture-level fault injectors.
///
/// Construct with [`FaultPlan::new`] (all faults off) and switch on the
/// injectors you want, or start from [`FaultPlan::hostile`] and scale.
/// The plan carries its own seed; applying the same plan to the same
/// capture with the same nonce yields a bitwise-identical result, and the
/// injection never touches the RNG stream of the simulator that produced
/// the capture.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-packet probability that the frame is lost (never delivered).
    pub packet_loss: f64,
    /// Per-antenna probability that the RF chain dies at a random packet
    /// and reports zero CSI from there to the end of the capture.
    pub antenna_dropout: f64,
    /// Per-capture probability of one AGC set-point jump: every antenna's
    /// gain steps by ±`agc_jump_db` from a random packet onward.
    pub agc_jump: f64,
    /// Magnitude of the AGC jump, dB.
    pub agc_jump_db: f64,
    /// Per-capture probability that the ADC saturates: I/Q components are
    /// clipped at `clip_level` × the capture's peak component.
    pub saturation: f64,
    /// Clip threshold as a fraction of the capture's peak |I|/|Q| value.
    pub clip_level: f64,
    /// Per-packet probability that a co-channel interference burst starts.
    pub interference: f64,
    /// Peak amplitude of burst interference relative to the LoS reference.
    pub interference_magnitude: f64,
    /// Number of consecutive packets one interference burst corrupts.
    pub interference_len: usize,
    /// Per-packet probability (from the second packet on) that the driver
    /// delivers the previous packet's CSI again instead of a fresh one.
    pub stale: f64,
}

impl FaultPlan {
    /// A plan with every injector off (the identity on captures).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            packet_loss: 0.0,
            antenna_dropout: 0.0,
            agc_jump: 0.0,
            agc_jump_db: 6.0,
            saturation: 0.0,
            clip_level: 0.35,
            interference: 0.0,
            interference_magnitude: 1.5,
            interference_len: 3,
            stale: 0.0,
        }
    }

    /// A hostile deployment with every injector on at full intensity.
    /// Scale it down with [`FaultPlan::scaled`] to sweep a degradation
    /// curve from benign to hostile.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            packet_loss: 0.5,
            antenna_dropout: 0.3,
            agc_jump: 0.8,
            saturation: 0.5,
            interference: 0.15,
            stale: 0.3,
            ..FaultPlan::new(seed)
        }
    }

    /// Sets the per-packet loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_packet_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.packet_loss = p;
        self
    }

    /// Sets the per-antenna dropout probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_antenna_dropout(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.antenna_dropout = p;
        self
    }

    /// Sets the AGC jump probability and magnitude (dB).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `db` is not finite.
    pub fn with_agc_jump(mut self, p: f64, db: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(db.is_finite(), "AGC jump magnitude must be finite");
        self.agc_jump = p;
        self.agc_jump_db = db;
        self
    }

    /// Sets the saturation probability and clip level (fraction of peak).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `level` is not in `(0, 1]`.
    pub fn with_saturation(mut self, p: f64, level: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(
            level > 0.0 && level <= 1.0,
            "clip level must be in (0, 1], got {level}"
        );
        self.saturation = p;
        self.clip_level = level;
        self
    }

    /// Sets the per-packet interference burst probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_interference(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.interference = p;
        self
    }

    /// Sets the per-packet stale-duplicate probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_stale(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.stale = p;
        self
    }

    /// Returns a copy with a different seed (used by the experiment
    /// harness to derive an independent fault stream per measurement).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a copy with every probability multiplied by `intensity`
    /// (clamped to `[0, 1]`). Magnitudes (jump dB, clip level, burst
    /// amplitude) are left alone: intensity scales how *often* faults
    /// strike, not how hard.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is negative or not finite.
    pub fn scaled(mut self, intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and non-negative"
        );
        let scale = |p: f64| (p * intensity).clamp(0.0, 1.0);
        self.packet_loss = scale(self.packet_loss);
        self.antenna_dropout = scale(self.antenna_dropout);
        self.agc_jump = scale(self.agc_jump);
        self.saturation = scale(self.saturation);
        self.interference = scale(self.interference);
        self.stale = scale(self.stale);
        self
    }

    /// `true` when every injector's probability is zero, making
    /// [`FaultPlan::apply`] the identity.
    pub fn is_identity(&self) -> bool {
        // Probabilities are non-negative, so `<= 0.0` is exactly the
        // identity test without comparing floats for equality.
        self.packet_loss <= 0.0
            && self.antenna_dropout <= 0.0
            && self.agc_jump <= 0.0
            && self.saturation <= 0.0
            && self.interference <= 0.0
            && self.stale <= 0.0
    }

    /// Applies the plan to a capture, returning the faulted copy.
    ///
    /// `nonce` distinguishes successive captures taken under one plan (the
    /// simulator passes an incrementing counter): the fault stream is a
    /// pure function of `(seed, nonce)`, so identical `(plan, capture,
    /// nonce)` triples produce bitwise-identical results. An identity plan
    /// returns the capture unchanged. The output never contains NaN/Inf
    /// CSI provided the input does not: every injector either removes,
    /// duplicates, zeroes, scales by a finite gain, clips, or adds a
    /// finite burst.
    pub fn apply(&self, capture: &CsiCapture, nonce: u64) -> CsiCapture {
        if self.is_identity() || capture.is_empty() {
            return capture.clone();
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, nonce));
        let n = capture.len();
        let n_ant = capture.n_antennas();
        let n_sub = capture.n_subcarriers();
        let stride = n_ant * n_sub;

        // Stale duplicates first: the driver re-delivers the previous
        // frame's CSI. Applied on the original timeline, before losses.
        // Duplicates chain (a stale of a stale repeats the same frame), so
        // the copy source is the *output's* previous row.
        let mut out = capture.clone();
        for m in 1..n {
            if rng.gen::<f64>() < self.stale {
                let (re, im) = out.planes_mut();
                re.copy_within((m - 1) * stride..m * stride, m * stride);
                im.copy_within((m - 1) * stride..m * stride, m * stride);
            }
        }

        // Packet loss: frames that never made it off the air. Draw order
        // matches the historical per-packet filter: one draw per packet on
        // the stale-adjusted timeline.
        let mut keep = Vec::with_capacity(n);
        for _ in 0..n {
            keep.push(rng.gen::<f64>() >= self.packet_loss);
        }
        let survivors: Vec<usize> = (0..n_ant).collect();
        let mut out = out.select_packets_antennas(&keep, &survivors);
        let n = out.len();
        if n == 0 {
            return CsiCapture::new();
        }

        // Antenna dropout: a dying RF chain reports zero CSI from a random
        // packet to the end of the capture.
        for a in 0..n_ant {
            if rng.gen::<f64>() < self.antenna_dropout {
                let start = rng.gen_range(0..n);
                for m in start..n {
                    let (re, im) = out.packet_planes_mut(m);
                    re[a * n_sub..(a + 1) * n_sub].fill(0.0);
                    im[a * n_sub..(a + 1) * n_sub].fill(0.0);
                }
            }
        }

        // AGC set-point jump: a common gain step across all antennas (the
        // AGC serves the whole NIC) from a random packet onward.
        if rng.gen::<f64>() < self.agc_jump {
            let start = rng.gen_range(0..n);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let gain = 10f64.powf(sign * self.agc_jump_db / 20.0);
            let (re, im) = out.planes_mut();
            for (r, i) in re[start * stride..]
                .iter_mut()
                .zip(im[start * stride..].iter_mut())
            {
                let h = Complex::new(*r, *i) * gain;
                *r = h.re;
                *i = h.im;
            }
        }

        // Interference bursts: a strong co-channel transmission corrupting
        // a run of consecutive packets across the whole band. The flat
        // plane order of one packet matches the historical (antenna,
        // subcarrier) draw order exactly.
        let mut burst_left = 0usize;
        for m in 0..n {
            if burst_left == 0 && rng.gen::<f64>() < self.interference {
                burst_left = self.interference_len.max(1);
            }
            if burst_left > 0 {
                burst_left -= 1;
                let (re, im) = out.packet_planes_mut(m);
                for (r, i) in re.iter_mut().zip(im.iter_mut()) {
                    let spike = Complex::from_polar(
                        self.interference_magnitude * rng.gen::<f64>(),
                        rng.gen_range(0.0..std::f64::consts::TAU),
                    );
                    let h = Complex::new(*r, *i) + spike;
                    *r = h.re;
                    *i = h.im;
                }
            }
        }

        // ADC saturation: clip I/Q at a fraction of the capture's peak
        // component, flattening the strongest subcarriers.
        if rng.gen::<f64>() < self.saturation {
            let (re, im) = out.planes_mut();
            let mut peak: f64 = 0.0;
            for (&r, &i) in re.iter().zip(im.iter()) {
                peak = peak.max(r.abs()).max(i.abs());
            }
            let clip = self.clip_level * peak;
            if clip > 0.0 {
                for x in re.iter_mut() {
                    *x = x.clamp(-clip, clip);
                }
                for x in im.iter_mut() {
                    *x = x.clamp(-clip, clip);
                }
            }
        }

        out
    }
}

/// A piecewise-constant fault timeline: an ordered list of steps, each
/// switching the active [`FaultPlan`] (or switching faults off) from a
/// given measurement index onward.
///
/// This is the wiphy-level seam the campaign subsystem lowers schedules
/// onto: the runner asks [`FaultSchedule::plan_at`] for the plan governing
/// each test trial. Steps are pushed in strictly ascending order of their
/// start index, so lookup is a deterministic scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    steps: Vec<(u64, Option<FaultPlan>)>,
}

impl FaultSchedule {
    /// An empty schedule (no plan at any index).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Appends a step: from measurement index `from` onward, `plan` is in
    /// effect (`None` switches faults off).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not strictly greater than the previous step's
    /// start index.
    pub fn push(&mut self, from: u64, plan: Option<FaultPlan>) {
        if let Some((last, _)) = self.steps.last() {
            assert!(
                from > *last,
                "schedule steps must have strictly ascending start indices ({from} after {last})"
            );
        }
        self.steps.push((from, plan));
    }

    /// The plan governing measurement `index`: that of the last step whose
    /// start is ≤ `index`, or `None` before the first step (or when the
    /// governing step switches faults off).
    pub fn plan_at(&self, index: u64) -> Option<&FaultPlan> {
        let mut current: Option<&FaultPlan> = None;
        for (from, plan) in &self.steps {
            if *from <= index {
                current = plan.as_ref();
            }
        }
        current
    }

    /// Number of steps in the schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The raw `(from, plan)` steps in order.
    pub fn steps(&self) -> &[(u64, Option<FaultPlan>)] {
        &self.steps
    }
}

/// SplitMix64-style mix of the plan seed with the capture nonce, so each
/// capture under one plan gets an independent, reproducible fault stream.
fn mix(seed: u64, nonce: u64) -> u64 {
    let mut z = seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csi::CsiSource;
    use crate::scenario::{Scenario, Simulator};

    fn capture(n: usize, seed: u64) -> CsiCapture {
        Simulator::new(Scenario::builder().build(), seed).capture(n)
    }

    #[test]
    fn identity_plan_is_bitwise_identity() {
        let cap = capture(15, 1);
        let plan = FaultPlan::new(42);
        assert!(plan.is_identity());
        assert_eq!(plan.apply(&cap, 0), cap);
        // Scaling a hostile plan to zero is also the identity.
        let zeroed = FaultPlan::hostile(7).scaled(0.0);
        assert!(zeroed.is_identity());
        assert_eq!(zeroed.apply(&cap, 3), cap);
    }

    #[test]
    fn same_seed_and_nonce_reproduce() {
        let cap = capture(25, 2);
        let plan = FaultPlan::hostile(5).scaled(0.7);
        assert_eq!(plan.apply(&cap, 4), plan.apply(&cap, 4));
        // Different nonces draw different fault streams.
        assert_ne!(plan.apply(&cap, 0), plan.apply(&cap, 1));
        // Different plan seeds draw different fault streams too.
        assert_ne!(
            plan.apply(&cap, 4),
            plan.clone().with_seed(6).apply(&cap, 4)
        );
    }

    #[test]
    fn packet_loss_shortens_captures() {
        let cap = capture(200, 3);
        let plan = FaultPlan::new(1).with_packet_loss(0.4);
        let out = plan.apply(&cap, 0);
        assert!(out.len() < 200 && out.len() > 60, "kept {}", out.len());
    }

    #[test]
    fn total_packet_loss_yields_empty_capture() {
        let cap = capture(10, 4);
        let plan = FaultPlan::new(1).with_packet_loss(1.0);
        assert!(plan.apply(&cap, 0).is_empty());
    }

    #[test]
    fn antenna_dropout_zeroes_a_tail() {
        let cap = capture(30, 5);
        let plan = FaultPlan::new(2).with_antenna_dropout(1.0);
        let out = plan.apply(&cap, 0);
        // Every antenna dropped somewhere: last packet must be all zero.
        let last = out.packet(out.len() - 1);
        for a in 0..out.n_antennas() {
            assert!(last.amplitudes(a).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn agc_jump_scales_common_gain() {
        let cap = capture(20, 6);
        let plan = FaultPlan::new(3).with_agc_jump(1.0, 6.0);
        let out = plan.apply(&cap, 0);
        // The jump preserves the cross-antenna ratio (common gain).
        for m in 0..out.len() {
            let before = cap.packet(m).get(0, 10).abs() / cap.packet(m).get(1, 10).abs();
            let after = out.packet(m).get(0, 10).abs() / out.packet(m).get(1, 10).abs();
            assert!((before - after).abs() < 1e-9, "ratio changed at {m}");
        }
    }

    #[test]
    fn saturation_clips_peaks() {
        let cap = capture(20, 7);
        let plan = FaultPlan::new(4).with_saturation(1.0, 0.3);
        let out = plan.apply(&cap, 0);
        let mut peak_in = 0.0f64;
        for m in 0..cap.len() {
            for a in 0..cap.n_antennas() {
                for k in 0..cap.n_subcarriers() {
                    let h = cap.packet(m).get(a, k);
                    peak_in = peak_in.max(h.re.abs()).max(h.im.abs());
                }
            }
        }
        for m in 0..out.len() {
            for a in 0..out.n_antennas() {
                for k in 0..out.n_subcarriers() {
                    let h = out.packet(m).get(a, k);
                    assert!(h.re.abs() <= 0.3 * peak_in + 1e-12);
                    assert!(h.im.abs() <= 0.3 * peak_in + 1e-12);
                }
            }
        }
    }

    #[test]
    fn stale_duplicates_repeat_previous_packets() {
        let cap = capture(50, 8);
        let plan = FaultPlan::new(5).with_stale(1.0);
        let out = plan.apply(&cap, 0);
        // With p = 1 every packet after the first repeats packet 0.
        for m in 1..out.len() {
            assert_eq!(out.packet(m), out.packet(0));
        }
    }

    #[test]
    fn simulator_applies_plan_only_when_set() {
        let scenario = Scenario::builder().build();
        let mut plain = Simulator::new(scenario.clone(), 9);
        let mut faulted = Simulator::new(scenario, 9);
        faulted.set_fault_plan(Some(FaultPlan::hostile(1)));
        let a = plain.capture(20);
        let b = faulted.capture(20);
        assert!(a != b, "hostile plan should perturb the capture");
        // Clearing the plan restores agreement for subsequent captures
        // (the base RNG stream was never touched by the injection).
        faulted.set_fault_plan(None);
        assert_eq!(plain.capture(5), faulted.capture(5));
    }

    #[test]
    fn scaled_clamps_probabilities() {
        let plan = FaultPlan::hostile(0).scaled(10.0);
        assert!(plan.packet_loss <= 1.0 && plan.agc_jump <= 1.0);
        assert!(plan.stale <= 1.0 && plan.saturation <= 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::new(0).with_packet_loss(1.5);
    }

    #[test]
    fn schedule_returns_last_step_at_or_before_index() {
        let mut schedule = FaultSchedule::new();
        assert!(schedule.is_empty());
        assert!(schedule.plan_at(0).is_none());
        schedule.push(2, Some(FaultPlan::hostile(1).scaled(0.2)));
        schedule.push(5, Some(FaultPlan::hostile(1).scaled(0.4)));
        schedule.push(8, None);
        assert_eq!(schedule.len(), 3);
        assert!(schedule.plan_at(1).is_none());
        assert!(schedule.plan_at(2).is_some());
        let mid = schedule.plan_at(6).expect("step 5 plan");
        assert!((mid.packet_loss - 0.2).abs() < 1e-12);
        assert!(schedule.plan_at(8).is_none());
        assert!(schedule.plan_at(100).is_none());
        assert_eq!(schedule.steps().len(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn schedule_rejects_non_ascending_steps() {
        let mut schedule = FaultSchedule::new();
        schedule.push(3, None);
        schedule.push(3, None);
    }
}
