//! Physical constants used by the propagation model.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Vacuum permittivity ε₀, F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Vacuum permeability μ₀, H/m.
pub const VACUUM_PERMEABILITY: f64 = 1.256_637_062_12e-6;

/// Free-space impedance √(μ₀/ε₀), ohms.
pub const FREE_SPACE_IMPEDANCE: f64 = 376.730_313_668;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        // c = 1/sqrt(μ₀ε₀)
        let c = 1.0 / (VACUUM_PERMEABILITY * VACUUM_PERMITTIVITY).sqrt();
        assert!((c - SPEED_OF_LIGHT).abs() / SPEED_OF_LIGHT < 1e-9);
        // Z₀ = sqrt(μ₀/ε₀)
        let z0 = (VACUUM_PERMEABILITY / VACUUM_PERMITTIVITY).sqrt();
        assert!((z0 - FREE_SPACE_IMPEDANCE).abs() / FREE_SPACE_IMPEDANCE < 1e-9);
    }
}
