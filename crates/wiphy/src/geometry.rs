//! Link and target geometry.
//!
//! The simulated deployment is two-dimensional (top view): the transmitter
//! sits at the origin, the receiver's antenna array sits `L` metres away on
//! the x-axis, and the target — a liquid-filled cylindrical beaker — stands
//! on the LoS path between them (paper Fig. 4 and §IV).
//!
//! The quantity that ultimately drives the WiMi feature is the chord length
//! `D_i` each antenna's LoS ray cuts through the liquid: because antennas
//! are spaced a few centimetres apart, the rays hit the cylinder at
//! different offsets and `D_1 ≠ D_2`, producing the differential phase
//! `ΔΘ = (D_1 − D_2)(β_tar − β_free)` of Eq. (18).

use crate::units::Meters;

/// A point in the 2-D deployment plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Along the link axis.
    pub x: f64,
    /// Across the link axis.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance_to(self, other: Point) -> Meters {
        Meters((self.x - other.x).hypot(self.y - other.y))
    }
}

/// A directed straight segment between two points (a signal ray).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin (transmit antenna).
    pub from: Point,
    /// Ray end (receive antenna).
    pub to: Point,
}

impl Ray {
    /// Creates a ray between two distinct points.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide.
    pub fn new(from: Point, to: Point) -> Self {
        assert!(
            from.distance_to(to).value() > 0.0,
            "ray endpoints must be distinct"
        );
        Ray { from, to }
    }

    /// Segment length.
    #[inline]
    pub fn length(self) -> Meters {
        self.from.distance_to(self.to)
    }

    /// Perpendicular distance from `p` to the infinite line through the ray.
    pub fn distance_to_point(self, p: Point) -> Meters {
        let dx = self.to.x - self.from.x;
        let dy = self.to.y - self.from.y;
        let len = dx.hypot(dy);
        let cross = dx * (p.y - self.from.y) - dy * (p.x - self.from.x);
        Meters(cross.abs() / len)
    }
}

/// An infinite circular cylinder seen from above: a circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cylinder {
    /// Centre of the circular cross-section.
    pub center: Point,
    /// Radius, metres.
    pub radius: Meters,
}

impl Cylinder {
    /// Creates a cylinder cross-section.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive.
    pub fn new(center: Point, radius: Meters) -> Self {
        assert!(radius.value() > 0.0, "cylinder radius must be positive");
        Cylinder { center, radius }
    }

    /// Length of the chord the ray cuts through this circle, or zero if the
    /// ray misses it.
    ///
    /// `chord = 2·√(r² − d²)` where `d` is the ray–centre distance.
    pub fn chord_length(self, ray: Ray) -> Meters {
        let d = ray.distance_to_point(self.center).value();
        let r = self.radius.value();
        if d >= r {
            Meters(0.0)
        } else {
            Meters(2.0 * (r * r - d * d).sqrt())
        }
    }

    /// A concentric circle shrunk by `wall` (the liquid boundary inside a
    /// beaker of wall thickness `wall`).
    ///
    /// # Panics
    ///
    /// Panics if `wall` is negative or at least the radius.
    pub fn shrunk_by(self, wall: Meters) -> Cylinder {
        assert!(wall.value() >= 0.0, "wall thickness must be non-negative");
        assert!(
            wall.value() < self.radius.value(),
            "wall thickness must be smaller than radius"
        );
        Cylinder {
            center: self.center,
            radius: self.radius - wall,
        }
    }
}

/// Path lengths a ray spends inside each region of a walled beaker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BeakerTraversal {
    /// Total path inside the container wall material (both crossings).
    pub wall_path: Meters,
    /// Path inside the liquid.
    pub liquid_path: Meters,
}

/// Computes how much of `ray` lies in the wall vs. the liquid of a beaker
/// with outer circle `outer` and wall thickness `wall`.
pub fn traverse_beaker(ray: Ray, outer: Cylinder, wall: Meters) -> BeakerTraversal {
    let inner = outer.shrunk_by(wall);
    let outer_chord = outer.chord_length(ray);
    let inner_chord = inner.chord_length(ray);
    BeakerTraversal {
        wall_path: Meters((outer_chord.value() - inner_chord.value()).max(0.0)),
        liquid_path: inner_chord,
    }
}

/// A uniform linear receive-antenna array.
///
/// # Examples
///
/// ```
/// use wimi_phy::geometry::{AntennaArray, Point};
/// use wimi_phy::units::Meters;
///
/// let arr = AntennaArray::uniform_linear(Point::new(2.0, 0.0), Meters::from_cm(2.9), 3);
/// assert_eq!(arr.len(), 3);
/// assert!((arr.position(0).y + 0.029).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AntennaArray {
    positions: Vec<Point>,
}

impl AntennaArray {
    /// Builds an `n`-element array centred at `center`, spaced `spacing`
    /// apart along the y-axis (perpendicular to the link).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the spacing is not positive.
    pub fn uniform_linear(center: Point, spacing: Meters, n: usize) -> Self {
        assert!(n > 0, "array must have at least one antenna");
        assert!(spacing.value() > 0.0, "antenna spacing must be positive");
        let mid = (n as f64 - 1.0) / 2.0;
        let positions = (0..n)
            .map(|i| Point::new(center.x, center.y + (i as f64 - mid) * spacing.value()))
            .collect();
        AntennaArray { positions }
    }

    /// Builds an array from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn from_positions(positions: Vec<Point>) -> Self {
        assert!(
            !positions.is_empty(),
            "array must have at least one antenna"
        );
        AntennaArray { positions }
    }

    /// Number of antennas.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the array has no antennas (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of antenna `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Iterates over antenna positions.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.positions.iter()
    }
}

/// Severity of sub-wavelength diffraction for a target of diameter `d`.
///
/// Ray optics is valid while the target is large compared to the
/// wavelength. When the beaker diameter drops below `λ` the wave diffracts
/// around it and the through-target phase/amplitude relation degrades —
/// the paper observes this as an accuracy collapse for the 3.2 cm beaker
/// (Fig. 19). Returns `0` for `d ≥ λ`, rising linearly to `1` as `d → 0`.
pub fn diffraction_severity(diameter: Meters, wavelength: Meters) -> f64 {
    assert!(wavelength.value() > 0.0, "wavelength must be positive");
    assert!(diameter.value() >= 0.0, "diameter must be non-negative");
    let ratio = diameter.value() / wavelength.value();
    (1.0 - ratio).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let d = Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0));
        assert!((d.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ray_distance_to_point() {
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let d = ray.distance_to_point(Point::new(1.0, 0.5));
        assert!((d.value() - 0.5).abs() < 1e-12);
        // Point on the line.
        assert!(ray.distance_to_point(Point::new(0.7, 0.0)).value() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_ray_rejected() {
        let p = Point::new(1.0, 1.0);
        let _ = Ray::new(p, p);
    }

    #[test]
    fn central_chord_is_diameter() {
        let cyl = Cylinder::new(Point::new(1.0, 0.0), Meters::from_cm(7.15));
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let chord = cyl.chord_length(ray);
        assert!((chord.value() - 0.143).abs() < 1e-12);
    }

    #[test]
    fn offset_chord_is_shorter() {
        let cyl = Cylinder::new(Point::new(1.0, 0.0), Meters::from_cm(7.15));
        let central = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let offset = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.058));
        let d_central = cyl.chord_length(central);
        let d_offset = cyl.chord_length(offset);
        assert!(d_offset.value() > 0.0);
        assert!(d_offset < d_central);
        // This difference is exactly the D1 − D2 the feature needs.
        assert!((d_central - d_offset).value() > 1e-4);
    }

    #[test]
    fn missing_ray_has_zero_chord() {
        let cyl = Cylinder::new(Point::new(1.0, 1.0), Meters::from_cm(5.0));
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert_eq!(cyl.chord_length(ray).value(), 0.0);
    }

    #[test]
    fn beaker_traversal_splits_wall_and_liquid() {
        let outer = Cylinder::new(Point::new(1.0, 0.0), Meters::from_cm(7.15));
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let t = traverse_beaker(ray, outer, Meters::from_mm(3.0));
        // Central ray: wall crossed twice → 6 mm, liquid = 14.3 − 0.6 cm.
        assert!((t.wall_path.value() - 0.006).abs() < 1e-9);
        assert!((t.liquid_path.value() - 0.137).abs() < 1e-9);
    }

    #[test]
    fn traversal_conserves_total_chord() {
        let outer = Cylinder::new(Point::new(1.0, 0.01), Meters::from_cm(5.0));
        let ray = Ray::new(Point::new(0.0, 0.0), Point::new(2.0, 0.03));
        let t = traverse_beaker(ray, outer, Meters::from_mm(2.5));
        let total = outer.chord_length(ray);
        assert!(((t.wall_path + t.liquid_path) - total).abs().value() < 1e-12);
    }

    #[test]
    fn array_is_centred_and_ordered() {
        let arr = AntennaArray::uniform_linear(Point::new(2.0, 0.0), Meters::from_cm(2.0), 3);
        assert_eq!(arr.len(), 3);
        assert!((arr.position(0).y + 0.02).abs() < 1e-12);
        assert!(arr.position(1).y.abs() < 1e-12);
        assert!((arr.position(2).y - 0.02).abs() < 1e-12);
        let ys: Vec<f64> = arr.iter().map(|p| p.y).collect();
        assert_eq!(ys.len(), 3);
    }

    #[test]
    fn two_element_array_straddles_center() {
        let arr = AntennaArray::uniform_linear(Point::new(0.0, 0.0), Meters::from_cm(2.0), 2);
        assert!((arr.position(0).y + 0.01).abs() < 1e-12);
        assert!((arr.position(1).y - 0.01).abs() < 1e-12);
    }

    #[test]
    fn diffraction_severity_thresholds() {
        let lambda = Meters::from_cm(6.0);
        assert_eq!(diffraction_severity(Meters::from_cm(14.3), lambda), 0.0);
        assert_eq!(diffraction_severity(Meters::from_cm(6.0), lambda), 0.0);
        let s = diffraction_severity(Meters::from_cm(3.2), lambda);
        assert!(s > 0.4 && s < 0.5, "severity = {s}");
        assert_eq!(diffraction_severity(Meters(0.0), lambda), 1.0);
    }

    #[test]
    #[should_panic(expected = "wall thickness")]
    fn shrink_rejects_wall_thicker_than_radius() {
        let cyl = Cylinder::new(Point::new(0.0, 0.0), Meters::from_cm(1.0));
        let _ = cyl.shrunk_by(Meters::from_cm(2.0));
    }
}
