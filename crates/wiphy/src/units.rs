//! Unit newtypes for physical quantities.
//!
//! These wrappers keep metres, hertz and seconds from being confused at API
//! boundaries (C-NEWTYPE). Arithmetic that makes dimensional sense is
//! provided; anything else requires going through the raw `f64`.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns `true` when the value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Debug-checked constructor used by the arithmetic impls:
            /// NaN/Inf contamination is caught where it is produced in
            /// debug/test builds instead of surfacing as a downstream
            /// `IssueKind`.
            #[inline]
            #[track_caller]
            fn finite(v: f64) -> Self {
                debug_assert!(
                    v.is_finite(),
                    concat!(stringify!($name), " arithmetic produced a non-finite value")
                );
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name::finite(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name::finite(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name::finite(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name::finite(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name::finite(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name::finite(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

unit!(
    /// A length in metres.
    ///
    /// ```
    /// use wimi_phy::units::Meters;
    /// let spacing = Meters::from_cm(2.9);
    /// assert!((spacing.value() - 0.029).abs() < 1e-12);
    /// ```
    Meters,
    "m"
);

unit!(
    /// A frequency in hertz.
    ///
    /// ```
    /// use wimi_phy::units::Hertz;
    /// assert_eq!(Hertz::from_ghz(5.24).value(), 5.24e9);
    /// ```
    Hertz,
    "Hz"
);

unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);

unit!(
    /// A power or amplitude ratio in decibels.
    Decibels,
    "dB"
);

impl Meters {
    /// Builds a length from centimetres.
    #[inline]
    pub fn from_cm(cm: f64) -> Self {
        Meters(cm / 100.0)
    }

    /// Builds a length from millimetres.
    #[inline]
    pub fn from_mm(mm: f64) -> Self {
        Meters(mm / 1000.0)
    }

    /// Converts to centimetres.
    #[inline]
    pub fn to_cm(self) -> f64 {
        self.0 * 100.0
    }
}

impl Hertz {
    /// Builds a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Builds a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Converts to gigahertz.
    #[inline]
    pub fn to_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Angular frequency `ω = 2πf` in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }

    /// Free-space wavelength `λ = c/f`.
    #[inline]
    pub fn wavelength(self) -> Meters {
        Meters(crate::constants::SPEED_OF_LIGHT / self.0)
    }
}

impl Seconds {
    /// Builds a duration from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Builds a duration from picoseconds.
    #[inline]
    pub fn from_ps(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }
}

impl Decibels {
    /// Converts a linear *power* ratio to decibels (`10·log₁₀`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ratio` is not positive.
    #[inline]
    pub fn from_power_ratio(ratio: f64) -> Self {
        debug_assert!(ratio > 0.0, "power ratio must be positive");
        Decibels(10.0 * ratio.log10())
    }

    /// Converts a linear *amplitude* ratio to decibels (`20·log₁₀`).
    #[inline]
    pub fn from_amplitude_ratio(ratio: f64) -> Self {
        debug_assert!(ratio > 0.0, "amplitude ratio must be positive");
        Decibels(20.0 * ratio.log10())
    }

    /// Converts back to a linear power ratio.
    #[inline]
    pub fn to_power_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts back to a linear amplitude ratio.
    #[inline]
    pub fn to_amplitude_ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_conversions() {
        assert!((Meters::from_cm(150.0).value() - 1.5).abs() < 1e-12);
        assert!((Meters::from_mm(5.0).value() - 0.005).abs() < 1e-12);
        assert!((Meters(0.143).to_cm() - 14.3).abs() < 1e-12);
    }

    #[test]
    fn hertz_conversions() {
        let f = Hertz::from_ghz(5.0);
        assert_eq!(f.value(), 5e9);
        assert!((f.to_ghz() - 5.0).abs() < 1e-12);
        assert!((Hertz::from_mhz(20.0).value() - 2e7).abs() < 1e-6);
    }

    #[test]
    fn wavelength_at_5ghz_is_about_6cm() {
        let lambda = Hertz::from_ghz(5.0).wavelength();
        assert!((lambda.value() - 0.05996).abs() < 1e-4, "{lambda}");
    }

    #[test]
    fn angular_frequency() {
        let w = Hertz(1.0).angular();
        assert!((w - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn decibel_roundtrip() {
        let db = Decibels::from_power_ratio(100.0);
        assert!((db.value() - 20.0).abs() < 1e-12);
        assert!((db.to_power_ratio() - 100.0).abs() < 1e-9);
        let db = Decibels::from_amplitude_ratio(10.0);
        assert!((db.value() - 20.0).abs() < 1e-12);
        assert!((db.to_amplitude_ratio() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_on_units() {
        let a = Meters(2.0) + Meters(0.5) - Meters(1.0);
        assert!((a.value() - 1.5).abs() < 1e-12);
        assert!(((Meters(3.0) / Meters(1.5)) - 2.0).abs() < 1e-12);
        assert!(((2.0 * Meters(1.5)).value() - 3.0).abs() < 1e-12);
        assert!(((-Meters(1.0)).value() + 1.0).abs() < 1e-12);
        assert!((Meters(-2.0).abs().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_helpers() {
        assert!((Seconds::from_ns(10.0).value() - 1e-8).abs() < 1e-20);
        assert!((Seconds::from_ps(8.27).value() - 8.27e-12).abs() < 1e-24);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Meters(1.5).to_string(), "1.5 m");
        assert_eq!(Hertz(2.0).to_string(), "2 Hz");
    }
}
