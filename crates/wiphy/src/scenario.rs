//! Deployment scenarios and the end-to-end CSI simulator.
//!
//! A [`Scenario`] describes one physical deployment: environment, link
//! geometry, beaker, hardware profile and channel. A [`Simulator`] realises
//! it (placing scatterers with a seeded RNG) and produces [`CsiCapture`]s,
//! first with the empty beaker (baseline) and then with the liquid poured
//! in — mirroring the paper's measurement protocol (§IV: "we first extract
//! a set of phase and amplitude values as the baseline data when the empty
//! plastic beaker is placed at the LoS link, then pour the tested liquid").

use crate::channel::{Environment, MultipathChannel, StandardNormal};
use crate::complex::Complex;
use crate::csi::{CsiCapture, CsiPacket, CsiSource};
use crate::fault::FaultPlan;
use crate::geometry::{diffraction_severity, traverse_beaker, AntennaArray, Cylinder, Point, Ray};
use crate::hardware::HardwareProfile;
use crate::material::{
    ContainerMaterial, DebyeModel, Dielectric, Liquid, Permittivity, PropagationConstants,
    SaltwaterConcentration,
};
use crate::ofdm::ChannelSpec;
use crate::units::{Hertz, Meters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A liquid under test: a name plus its dielectric model.
#[derive(Debug, Clone, PartialEq)]
pub struct LiquidSpec {
    name: String,
    debye: DebyeModel,
}

impl LiquidSpec {
    /// A liquid from the paper's ten-liquid catalog.
    pub fn catalog(liquid: Liquid) -> Self {
        LiquidSpec {
            name: liquid.name().to_owned(),
            debye: liquid.debye(),
        }
    }

    /// A saltwater solution (Fig. 16 experiment).
    pub fn saltwater(c: SaltwaterConcentration) -> Self {
        LiquidSpec {
            name: c.to_string(),
            debye: c.debye(),
        }
    }

    /// A custom liquid from an explicit Debye model.
    pub fn custom(name: impl Into<String>, debye: DebyeModel) -> Self {
        LiquidSpec {
            name: name.into(),
            debye,
        }
    }

    /// The liquid's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying Debye model.
    pub fn debye(&self) -> DebyeModel {
        self.debye
    }
}

impl Dielectric for LiquidSpec {
    fn permittivity(&self, f: Hertz) -> Permittivity {
        self.debye.permittivity(f)
    }
}

impl From<Liquid> for LiquidSpec {
    fn from(l: Liquid) -> Self {
        LiquidSpec::catalog(l)
    }
}

impl From<SaltwaterConcentration> for LiquidSpec {
    fn from(c: SaltwaterConcentration) -> Self {
        LiquidSpec::saltwater(c)
    }
}

/// A cylindrical beaker.
#[derive(Debug, Clone, PartialEq)]
pub struct Beaker {
    /// Outer diameter.
    pub diameter: Meters,
    /// Height (informational; the 2-D model assumes the LoS crosses the
    /// liquid column).
    pub height: Meters,
    /// Wall thickness.
    pub wall_thickness: Meters,
    /// Wall material.
    pub material: ContainerMaterial,
}

impl Beaker {
    /// The paper's default beaker: ⌀ 14.3 cm × 23 cm plastic.
    pub fn paper_default() -> Self {
        Beaker {
            diameter: Meters::from_cm(14.3),
            height: Meters::from_cm(23.0),
            wall_thickness: Meters::from_mm(3.0),
            material: ContainerMaterial::Plastic,
        }
    }

    /// The five beaker diameters of the Fig. 19 size experiment, cm:
    /// 14.3, 11, 8.9, 6.1, 3.2.
    pub const PAPER_DIAMETERS_CM: [f64; 5] = [14.3, 11.0, 8.9, 6.1, 3.2];

    /// Returns a copy with a different diameter.
    ///
    /// # Panics
    ///
    /// Panics if the diameter does not exceed twice the wall thickness.
    pub fn with_diameter(mut self, diameter: Meters) -> Self {
        assert!(
            diameter.value() > 2.0 * self.wall_thickness.value(),
            "diameter must exceed twice the wall thickness"
        );
        self.diameter = diameter;
        self
    }

    /// Returns a copy with a different wall material.
    pub fn with_material(mut self, material: ContainerMaterial) -> Self {
        self.material = material;
        self
    }

    /// Outer radius.
    pub fn radius(&self) -> Meters {
        self.diameter / 2.0
    }
}

/// A complete deployment description.
///
/// Construct with [`Scenario::builder`]. The scenario holds the *empty*
/// deployment; the liquid under test is set on the [`Simulator`] because
/// baseline and target captures share one scenario realisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    channel: ChannelSpec,
    environment: Environment,
    link_distance: Meters,
    n_antennas: usize,
    antenna_spacing: Meters,
    beaker: Beaker,
    target_center: Point,
    hardware: HardwareProfile,
    leakage_floor_db: f64,
    flow_noise: f64,
}

impl Scenario {
    /// Starts building a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The OFDM channel.
    pub fn channel(&self) -> &ChannelSpec {
        &self.channel
    }

    /// The deployment environment.
    pub fn environment(&self) -> Environment {
        self.environment
    }

    /// Transmitter–receiver separation.
    pub fn link_distance(&self) -> Meters {
        self.link_distance
    }

    /// Number of receive antennas.
    pub fn n_antennas(&self) -> usize {
        self.n_antennas
    }

    /// The beaker on the LoS path.
    pub fn beaker(&self) -> &Beaker {
        &self.beaker
    }

    /// The hardware impairment profile.
    pub fn hardware(&self) -> &HardwareProfile {
        &self.hardware
    }

    /// Transmit antenna position (origin).
    pub fn tx_position(&self) -> Point {
        Point::new(0.0, 0.0)
    }

    /// The receive antenna array.
    pub fn rx_array(&self) -> AntennaArray {
        AntennaArray::uniform_linear(
            Point::new(self.link_distance.value(), 0.0),
            self.antenna_spacing,
            self.n_antennas,
        )
    }

    /// Centre of the beaker in the deployment plane.
    pub fn target_center(&self) -> Point {
        self.target_center
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    channel: ChannelSpec,
    environment: Environment,
    link_distance: Meters,
    n_antennas: usize,
    antenna_spacing: Meters,
    beaker: Beaker,
    target_offset: Meters,
    hardware: HardwareProfile,
    leakage_floor_db: f64,
    flow_noise: f64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            channel: ChannelSpec::intel5300_20mhz_5ghz(),
            environment: Environment::Lab,
            link_distance: Meters(2.0),
            n_antennas: 3,
            antenna_spacing: Meters::from_cm(2.9),
            beaker: Beaker::paper_default(),
            target_offset: Meters::from_cm(1.0),
            hardware: HardwareProfile::default(),
            leakage_floor_db: -10.0,
            flow_noise: 0.0,
        }
    }
}

impl ScenarioBuilder {
    /// Sets the deployment environment (default: lab).
    pub fn environment(&mut self, env: Environment) -> &mut Self {
        self.environment = env;
        self
    }

    /// Sets the transmitter–receiver distance (default: 2 m).
    ///
    /// # Panics
    ///
    /// Panics (on `build`) if not positive.
    pub fn link_distance(&mut self, d: Meters) -> &mut Self {
        self.link_distance = d;
        self
    }

    /// Sets the receive array (default: 3 antennas, 2.9 cm apart — half a
    /// wavelength at 5.24 GHz, the Intel 5300's three-antenna setup). The
    /// spacing sets the chord-length differential `D₁ − D₂` the material
    /// feature rides on.
    pub fn antennas(&mut self, n: usize, spacing: Meters) -> &mut Self {
        self.n_antennas = n;
        self.antenna_spacing = spacing;
        self
    }

    /// Sets the beaker (default: the paper's ⌀ 14.3 cm plastic beaker).
    pub fn beaker(&mut self, beaker: Beaker) -> &mut Self {
        self.beaker = beaker;
        self
    }

    /// Lateral offset of the beaker centre from the LoS axis (default
    /// 1 cm). A small offset is what every physical placement has; it
    /// breaks the symmetric-array degeneracy in which two antenna rays cut
    /// identical chords.
    pub fn target_offset(&mut self, offset: Meters) -> &mut Self {
        self.target_offset = offset;
        self
    }

    /// Sets the hardware impairment profile.
    pub fn hardware(&mut self, hw: HardwareProfile) -> &mut Self {
        self.hardware = hw;
        self
    }

    /// Sets the OFDM channel.
    pub fn channel(&mut self, ch: ChannelSpec) -> &mut Self {
        self.channel = ch;
        self
    }

    /// Sets the through-target leakage floor in dB (default −10 dB).
    ///
    /// Bulk absorption alone would put 14 cm of water ~130 dB down, yet
    /// measured insertion losses through liquid containers are tens of dB:
    /// energy leaks around and through the target (creeping waves, surface
    /// paths). The floor caps the *common* attenuation across antennas
    /// while leaving the inter-antenna differential — the quantity the
    /// WiMi feature uses — exactly as the paper's Eq. (15)/(17) predict.
    pub fn leakage_floor_db(&mut self, db: f64) -> &mut Self {
        self.leakage_floor_db = db;
        self
    }

    /// Sets liquid-motion noise in `[0, 1]` (default 0: static liquid).
    /// Non-zero values model a flowing/moving liquid, the failure mode the
    /// paper's §VI discusses.
    pub fn flow_noise(&mut self, level: f64) -> &mut Self {
        self.flow_noise = level;
        self
    }

    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: non-positive link distance,
    /// fewer than one antenna, a beaker wider than the link, or a flow
    /// noise level outside `[0, 1]`.
    pub fn build(&self) -> Scenario {
        assert!(
            self.link_distance.value() > 0.0,
            "link distance must be positive"
        );
        assert!(self.n_antennas >= 1, "need at least one receive antenna");
        assert!(
            self.beaker.diameter.value() < self.link_distance.value(),
            "beaker must fit between transmitter and receiver"
        );
        assert!(
            (0.0..=1.0).contains(&self.flow_noise),
            "flow noise must be within [0, 1]"
        );
        Scenario {
            channel: self.channel.clone(),
            environment: self.environment,
            link_distance: self.link_distance,
            n_antennas: self.n_antennas,
            antenna_spacing: self.antenna_spacing,
            beaker: self.beaker.clone(),
            target_center: Point::new(self.link_distance.value() / 2.0, self.target_offset.value()),
            hardware: self.hardware.clone(),
            leakage_floor_db: self.leakage_floor_db,
            flow_noise: self.flow_noise,
        }
    }
}

/// The end-to-end CSI simulator for one realised deployment.
///
/// # Examples
///
/// ```
/// use wimi_phy::material::Liquid;
/// use wimi_phy::scenario::{Scenario, Simulator};
/// use wimi_phy::csi::CsiSource;
///
/// let scenario = Scenario::builder().build();
/// let mut sim = Simulator::new(scenario, 42);
/// let baseline = sim.capture(20);            // empty beaker
/// sim.set_liquid(Some(Liquid::Milk.into())); // pour the milk in
/// let target = sim.capture(20);
/// assert_eq!(baseline.len(), 20);
/// assert_eq!(target.n_antennas(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    scenario: Scenario,
    multipath: MultipathChannel,
    liquid: Option<LiquidSpec>,
    rng: StdRng,
    rays: Vec<Ray>,
    /// Per-subcarrier centre frequencies, hoisted out of the packet loop.
    freqs: Vec<Hertz>,
    /// Free-space LoS response per antenna × subcarrier. Depends only on
    /// the (immutable) geometry and channel, so it is computed once.
    los: Vec<Vec<Complex>>,
    /// Cached [`Simulator::compute_target_insertions`] result. The
    /// insertion factors are deterministic in the scenario and the current
    /// liquid, so they stay valid until [`Simulator::set_liquid`] clears
    /// them; only jitter, ray perturbation, multipath and hardware
    /// impairments are stochastic per packet.
    insertions_cache: Option<Vec<Vec<Complex>>>,
    /// Static multipath path gains per antenna × subcarrier × scatterer
    /// (`gain · e^{−jβ₀d}` for each scatterer). The scatterer geometry is
    /// fixed once the channel is realised, so only the per-packet jitter
    /// multipliers vary; caching these drops the per-scatterer distance
    /// and `cis` work (the dominant per-packet cost) out of the loop.
    mp_gains: Vec<Vec<Vec<Complex>>>,
    /// Ray-perturbation spread (amplitude σ, phase σ), hoisted from the
    /// per-packet draw; `None` when the scenario is perturbation-free.
    perturb_sigmas: Option<(f64, f64)>,
    /// Optional fault-injection plan applied to every capture. Faults draw
    /// from their own RNG stream (seeded by the plan and a per-capture
    /// nonce), so setting or clearing a plan never perturbs the base
    /// channel realisation.
    fault: Option<FaultPlan>,
    /// Monotonic capture counter, used as the fault-plan nonce so each
    /// capture under one plan sees an independent, reproducible stream.
    captures_taken: u64,
    /// Optional observability sink; `None` costs nothing on the packet
    /// path. Never influences simulation output.
    recorder: Option<std::sync::Arc<wimi_obs::Recorder>>,
    /// Optional flight-recorder sink mirroring `recorder` as ordered
    /// events (same zero-cost-when-`None` contract).
    trace: Option<std::sync::Arc<wimi_trace::TraceSink>>,
    /// Reusable per-packet jitter scratch: the capture loop draws into
    /// this instead of allocating a fresh multiplier vector per packet.
    /// Pure scratch — never read across packets, so it is excluded from
    /// equality/serialisation concerns (the derive on `Clone` copies it,
    /// which is harmless).
    jitter_scratch: crate::channel::PacketJitter,
    /// Reusable per-packet ray-perturbation scratch (one entry per
    /// antenna); same contract as `jitter_scratch`.
    perturb_scratch: Vec<Complex>,
}

/// Static multipath path gains for every (antenna, subcarrier) of a
/// scenario — see [`MultipathChannel::path_gains`].
fn compute_multipath_gains(
    scenario: &Scenario,
    multipath: &MultipathChannel,
    freqs: &[Hertz],
) -> Vec<Vec<Vec<Complex>>> {
    let tx = scenario.tx_position();
    scenario
        .rx_array()
        .iter()
        .map(|&rx_pos| {
            freqs
                .iter()
                .map(|&f| multipath.path_gains(tx, rx_pos, f))
                .collect()
        })
        .collect()
}

impl Simulator {
    /// Realises a scenario with a deterministic seed.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = scenario.tx_position();
        let rx = scenario.rx_array();
        let rx_center = Point::new(scenario.link_distance.value(), 0.0);
        let multipath = MultipathChannel::realize(scenario.environment, tx, rx_center, &mut rng);
        let rays: Vec<Ray> = rx.iter().map(|&p| Ray::new(tx, p)).collect();

        let n_sub = scenario.channel.num_subcarriers();
        let freqs: Vec<Hertz> = (0..n_sub)
            .map(|k| scenario.channel.subcarrier_freq(k))
            .collect();
        let d_ref = scenario.link_distance;
        let los = rx
            .iter()
            .map(|&rx_pos| {
                freqs
                    .iter()
                    .map(|&f| crate::channel::los_response(tx, rx_pos, f, d_ref))
                    .collect()
            })
            .collect();

        let lambda = scenario.channel.center.wavelength();
        let severity = diffraction_severity(scenario.beaker.diameter, lambda);
        let flow = scenario.flow_noise;
        // Severity and flow noise are non-negative by construction.
        let perturb_sigmas = if severity <= 0.0 && flow <= 0.0 {
            None
        } else {
            Some((0.6 * severity + 0.3 * flow, 2.5 * severity + 1.2 * flow))
        };

        let mp_gains = compute_multipath_gains(&scenario, &multipath, &freqs);

        Simulator {
            scenario,
            multipath,
            liquid: None,
            rng,
            rays,
            freqs,
            los,
            insertions_cache: None,
            mp_gains,
            perturb_sigmas,
            fault: None,
            captures_taken: 0,
            recorder: None,
            trace: None,
            jitter_scratch: crate::channel::PacketJitter::empty(),
            perturb_scratch: Vec::new(),
        }
    }

    /// Attaches (or detaches) an observability recorder. Captures then
    /// report [`wimi_obs::StageId::Capture`] spans plus packet/capture
    /// counters; simulation output is bit-identical either way.
    pub fn set_recorder(&mut self, recorder: Option<std::sync::Arc<wimi_obs::Recorder>>) {
        self.recorder = recorder;
    }

    /// Attaches (or detaches) a flight-recorder trace sink. Captures then
    /// emit ordered capture span and counter events against the calling
    /// thread's current task; simulation output is bit-identical either
    /// way.
    pub fn set_trace(&mut self, trace: Option<std::sync::Arc<wimi_trace::TraceSink>>) {
        self.trace = trace;
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Sets (or clears) the liquid in the beaker. `None` means the empty
    /// baseline beaker. Invalidates the cached insertion factors.
    pub fn set_liquid(&mut self, liquid: Option<LiquidSpec>) {
        self.liquid = liquid;
        self.insertions_cache = None;
    }

    /// Drops every cached invariant so the next packet recomputes from
    /// scratch: the per-subcarrier frequencies, the free-space LoS
    /// responses, the static multipath path gains, and the target
    /// insertion factors (everything that used to be recomputed per
    /// packet). Caches repopulate automatically and results are
    /// identical; this exists so benchmarks can measure the uncached
    /// path.
    pub fn invalidate_caches(&mut self) {
        let n_sub = self.scenario.channel.num_subcarriers();
        self.freqs = (0..n_sub)
            .map(|k| self.scenario.channel.subcarrier_freq(k))
            .collect();
        let tx = self.scenario.tx_position();
        let d_ref = self.scenario.link_distance;
        self.los = self
            .scenario
            .rx_array()
            .iter()
            .map(|&rx_pos| {
                self.freqs
                    .iter()
                    .map(|&f| crate::channel::los_response(tx, rx_pos, f, d_ref))
                    .collect()
            })
            .collect();
        self.mp_gains = compute_multipath_gains(&self.scenario, &self.multipath, &self.freqs);
        self.insertions_cache = None;
    }

    /// The current liquid, if any.
    pub fn liquid(&self) -> Option<&LiquidSpec> {
        self.liquid.as_ref()
    }

    /// Sets (or clears) the fault-injection plan applied to subsequent
    /// captures. An identity plan (or `None`) leaves captures bit-identical
    /// to the un-faulted simulator; faults never consume the base RNG
    /// stream, so toggling a plan does not shift the channel realisation.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The fault plan currently in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Ground-truth liquid chord length for each receive antenna's LoS ray
    /// (the `D_i` of paper Fig. 4). Useful for validating the feature
    /// equations against the geometry.
    pub fn liquid_paths(&self) -> Vec<Meters> {
        let outer = Cylinder::new(self.scenario.target_center, self.scenario.beaker.radius());
        self.rays
            .iter()
            .map(|&ray| {
                traverse_beaker(ray, outer, self.scenario.beaker.wall_thickness).liquid_path
            })
            .collect()
    }

    /// Captures one CSI packet (materialised into the array-of-structs
    /// [`CsiPacket`] shape; the capture loop writes into a [`CsiCapture`]'s
    /// flat planes directly via [`Simulator::packet_into`]).
    pub fn packet(&mut self) -> CsiPacket {
        let n_ant = self.scenario.n_antennas;
        let n_sub = self.freqs.len();
        let mut re = vec![0.0; n_ant * n_sub];
        let mut im = vec![0.0; n_ant * n_sub];
        self.packet_into(&mut re, &mut im);
        let data = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        CsiPacket::new(n_ant, n_sub, data)
    }

    /// Simulates one packet into antenna-major `(re, im)` plane slices of
    /// length `n_antennas · n_subcarriers` — the allocation-free hot path
    /// (jitter and perturbation draws go into simulator-owned scratch).
    /// RNG draw order matches the historical per-packet implementation
    /// exactly: jitter, then one perturbation per antenna, then hardware.
    // wlint: hot
    // wlint: allow(panic-reach) — per-antenna rows and cached insertion tables are all sized n_antennas·n_subcarriers by construction
    fn packet_into(&mut self, re: &mut [f64], im: &mut [f64]) {
        let n_ant = self.scenario.n_antennas;
        let n_sub = self.freqs.len();

        let mut jitter = std::mem::replace(
            &mut self.jitter_scratch,
            crate::channel::PacketJitter::empty(),
        );
        self.multipath.draw_jitter_into(&mut self.rng, &mut jitter);

        // Per-packet flow/diffraction perturbation, one draw per antenna
        // (same RNG draw order as the uncached implementation).
        let mut perturbs = std::mem::take(&mut self.perturb_scratch);
        perturbs.clear();
        for _ in 0..n_ant {
            let p = self.draw_ray_perturbation();
            perturbs.push(p);
        }

        // Per-antenna target insertion across subcarriers: invariant until
        // `set_liquid`, so it is computed once and cached (take/put-back
        // keeps the hot path panic-free).
        let insertions = self
            .insertions_cache
            .take()
            .unwrap_or_else(|| self.compute_target_insertions());

        for a in 0..n_ant {
            let perturb = perturbs[a];
            let row = a * n_sub;
            let subcarriers = self.los[a]
                .iter()
                .zip(&insertions[a])
                .zip(&self.mp_gains[a])
                .enumerate();
            for (k, ((&los, &insertion), gains)) in subcarriers {
                let through = los * insertion * perturb;
                let mp = self.multipath.response_from_gains(gains, &jitter);
                let h = through + mp;
                re[row + k] = h.re;
                im[row + k] = h.im;
            }
        }

        self.scenario
            .hardware
            .apply_planes(re, im, n_ant, n_sub, &mut self.rng);
        self.insertions_cache = Some(insertions);
        self.jitter_scratch = jitter;
        self.perturb_scratch = perturbs;
    }

    /// Per-antenna, per-subcarrier complex insertion factor of the beaker
    /// (and liquid) on the LoS ray, with the common leakage floor applied.
    /// Deterministic in `(scenario, liquid)` — see `insertions_cache`.
    // wlint: allow(hot-path-alloc) — cold fallback: runs once per (scenario, liquid) change and is cached; the steady-state path takes the cache hit
    fn compute_target_insertions(&self) -> Vec<Vec<Complex>> {
        let n_sub = self.freqs.len();
        let outer = Cylinder::new(self.scenario.target_center, self.scenario.beaker.radius());
        let wall = self.scenario.beaker.wall_thickness;

        // Metal blocks penetration entirely: −80 dB and no leakage floor
        // (reflection carries no through-target signature).
        let Some(wall_diel) = self.scenario.beaker.material.dielectric() else {
            let blocked = Complex::from_re(1e-4);
            return vec![vec![blocked; n_sub]; self.rays.len()];
        };

        let mut per_antenna: Vec<Vec<Complex>> = Vec::with_capacity(self.rays.len());
        for &ray in &self.rays {
            let trav = traverse_beaker(ray, outer, wall);
            let mut row = Vec::with_capacity(n_sub);
            for &f in &self.freqs {
                let air = PropagationConstants::air(f);
                let mut ins = insertion_factor(wall_diel.propagation(f), air, trav.wall_path);
                if let Some(liquid) = &self.liquid {
                    ins *= insertion_factor(liquid.propagation(f), air, trav.liquid_path);
                }
                row.push(ins);
            }
            per_antenna.push(row);
        }

        // Leakage floor: boost the *common* attenuation (geometric mean
        // across antennas, centre subcarrier) up to the floor. This models
        // the energy that creeps around the target; the inter-antenna
        // differential that WiMi measures is untouched.
        let floor = 10f64.powf(self.scenario.leakage_floor_db / 20.0);
        let mid = n_sub / 2;
        let mean_amp = geometric_mean(per_antenna.iter().map(|row| row[mid].abs()));
        if mean_amp < floor && mean_amp > 0.0 {
            let boost = floor / mean_amp;
            for row in &mut per_antenna {
                for ins in row.iter_mut() {
                    *ins = *ins * boost;
                }
            }
        }
        per_antenna
    }

    /// Per-packet multiplicative perturbation of one LoS ray from liquid
    /// motion (flow noise) and sub-wavelength diffraction.
    fn draw_ray_perturbation(&mut self) -> Complex {
        let Some((amp_sigma, phase_sigma)) = self.perturb_sigmas else {
            return Complex::ONE;
        };
        let g: f64 = 1.0 + amp_sigma * self.rng.sample(StandardNormal);
        let p: f64 = phase_sigma * self.rng.sample(StandardNormal);
        Complex::from_polar(g.max(0.05), p)
    }
}

impl CsiSource for Simulator {
    fn capture(&mut self, n_packets: usize) -> CsiCapture {
        // Clone the Arc so the span's borrow does not pin `self` while
        // the packet loop needs it mutably.
        let recorder = self.recorder.clone();
        let _span = recorder
            .as_ref()
            .map(|r| r.span(wimi_obs::StageId::Capture));
        let trace = self.trace.clone();
        let _trace_span = trace.as_ref().map(|t| t.span(wimi_obs::StageId::Capture));
        let n_ant = self.scenario.n_antennas;
        let n_sub = self.freqs.len();
        let mut clean = CsiCapture::zeros(n_packets, n_ant, n_sub);
        for m in 0..n_packets {
            let (re, im) = clean.packet_planes_mut(m);
            // The borrow of `clean`'s planes is disjoint from `self`, so
            // the packet loop runs with zero per-packet allocation.
            self.packet_into(re, im);
        }
        let nonce = self.captures_taken;
        self.captures_taken = self.captures_taken.wrapping_add(1);
        if let Some(rec) = &self.recorder {
            rec.incr(wimi_obs::CounterId::CapturesTaken);
            rec.add(wimi_obs::CounterId::PacketsSimulated, n_packets as u64);
        }
        if let Some(t) = &self.trace {
            t.emit(wimi_trace::TraceEvent::Count {
                counter: wimi_obs::CounterId::CapturesTaken,
                delta: 1,
            });
            t.emit(wimi_trace::TraceEvent::Count {
                counter: wimi_obs::CounterId::PacketsSimulated,
                delta: n_packets as u64,
            });
        }
        match &self.fault {
            Some(plan) if !plan.is_identity() => plan.apply(&clean, nonce),
            _ => clean,
        }
    }
}

/// One-region insertion factor: extra phase `D(β − β_air)` and extra
/// attenuation `e^{−(α − α_air)·D}` relative to the same path in air —
/// exactly paper Eq. (2)–(4).
fn insertion_factor(pc: PropagationConstants, air: PropagationConstants, d: Meters) -> Complex {
    // Path lengths are non-negative; zero means the ray misses the medium.
    if d.value() <= 0.0 {
        return Complex::ONE;
    }
    let extra_phase = (pc.beta - air.beta) * d.value();
    let extra_att = ((air.alpha - pc.alpha) * d.value()).exp();
    Complex::from_polar(extra_att, -extra_phase)
}

fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return 0.0;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_scenario() -> Scenario {
        let mut b = Scenario::builder();
        b.hardware(HardwareProfile::ideal());
        b.build()
    }

    #[test]
    fn builder_defaults_match_paper_setup() {
        let s = Scenario::builder().build();
        assert_eq!(s.n_antennas(), 3);
        assert_eq!(s.environment(), Environment::Lab);
        assert!((s.link_distance().value() - 2.0).abs() < 1e-12);
        assert!((s.beaker().diameter.to_cm() - 14.3).abs() < 1e-9);
        assert_eq!(s.channel().num_subcarriers(), 30);
    }

    #[test]
    #[should_panic(expected = "beaker must fit")]
    fn build_rejects_beaker_wider_than_link() {
        let mut b = Scenario::builder();
        b.link_distance(Meters(0.1));
        let _ = b.build();
    }

    #[test]
    fn liquid_paths_differ_across_antennas() {
        let sim = Simulator::new(quiet_scenario(), 1);
        let paths = sim.liquid_paths();
        assert_eq!(paths.len(), 3);
        // All rays hit the big beaker...
        assert!(paths.iter().all(|p| p.value() > 0.10));
        // ...but at different chords: the differential WiMi needs.
        let mut sorted = paths.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[2] - sorted[0]).value() > 1e-4);
    }

    #[test]
    fn capture_dimensions() {
        let mut sim = Simulator::new(quiet_scenario(), 2);
        let cap = sim.capture(7);
        assert_eq!(cap.len(), 7);
        assert_eq!(cap.n_antennas(), 3);
        assert_eq!(cap.n_subcarriers(), 30);
    }

    #[test]
    fn same_seed_reproduces_identical_capture() {
        let s = quiet_scenario();
        let mut a = Simulator::new(s.clone(), 99);
        let mut b = Simulator::new(s, 99);
        assert_eq!(a.capture(3), b.capture(3));
    }

    #[test]
    fn liquid_changes_the_csi() {
        let mut sim = Simulator::new(quiet_scenario(), 5);
        let base = sim.capture(1);
        // Re-seed a twin so the multipath jitter draw sequence matches.
        let mut sim2 = Simulator::new(quiet_scenario(), 5);
        sim2.set_liquid(Some(Liquid::PureWater.into()));
        let tar = sim2.capture(1);
        let delta = (base.packet(0).get(0, 15) - tar.packet(0).get(0, 15)).abs();
        assert!(delta > 0.01, "liquid should alter CSI, delta = {delta}");
    }

    #[test]
    fn insertion_differential_matches_equations() {
        // With ideal hardware and no multipath jitter the phase difference
        // between antennas must match (D1−D2)(β_tar−β_free) mod 2π.
        let mut builder = Scenario::builder();
        builder.hardware(HardwareProfile::ideal());
        builder.environment(Environment::EmptyHall);
        let scenario = builder.build();
        let mut sim = Simulator::new(scenario.clone(), 11);
        let paths = sim.liquid_paths();

        sim.set_liquid(Some(Liquid::Oil.into()));
        let f = scenario.channel().subcarrier_freq(15);
        let air = PropagationConstants::air(f);
        let oil = Liquid::Oil.propagation(f);

        // Compare simulated insertion phases directly (through target only:
        // subtract the baseline capture's phase difference), averaging the
        // dynamic multipath out over many packets.
        let mut base_sim = Simulator::new(scenario, 11);
        let base = base_sim.capture(200);
        let tar = sim.capture(200);

        let phase_diff = |cap: &CsiCapture| {
            let (s, c) = cap
                .phase_difference_series(0, 1, 15)
                .into_iter()
                .fold((0.0f64, 0.0f64), |(s, c), a| (s + a.sin(), c + a.cos()));
            s.atan2(c)
        };
        let measured = wrap_pi(phase_diff(&tar) - phase_diff(&base));
        let expected = wrap_pi(-((paths[0] - paths[1]).value() * (oil.beta - air.beta)));
        // Residual static multipath differs between antennas, so allow a
        // modest tolerance.
        assert!(
            (measured - expected).abs() < 0.25,
            "measured {measured}, expected {expected}"
        );
    }

    fn wrap_pi(x: f64) -> f64 {
        let mut y = x % std::f64::consts::TAU;
        if y > std::f64::consts::PI {
            y -= std::f64::consts::TAU;
        }
        if y < -std::f64::consts::PI {
            y += std::f64::consts::TAU;
        }
        y
    }

    #[test]
    fn metal_container_blocks_penetration() {
        let mut builder = Scenario::builder();
        builder.hardware(HardwareProfile::ideal());
        builder.beaker(Beaker::paper_default().with_material(ContainerMaterial::Metal));
        builder.environment(Environment::EmptyHall);
        let mut sim = Simulator::new(builder.build(), 3);
        sim.set_liquid(Some(Liquid::Milk.into()));
        let cap = sim.capture(1);
        // Through component is −80 dB; what is left is weak multipath.
        let amp = cap.packet(0).get(0, 15).abs();
        assert!(amp < 0.3, "metal should block the LoS, amp = {amp}");
    }

    #[test]
    fn leakage_floor_bounds_insertion_loss() {
        let mut builder = Scenario::builder();
        builder.hardware(HardwareProfile::ideal());
        builder.environment(Environment::EmptyHall);
        builder.leakage_floor_db(-14.0);
        let mut sim = Simulator::new(builder.build(), 4);
        sim.set_liquid(Some(Liquid::PureWater.into()));
        let cap = sim.capture(1);
        let amp = cap.packet(0).get(1, 15).abs();
        // Water would be ~130 dB down without the floor; with it, the
        // signal stays within a usable dynamic range.
        assert!(amp > 0.01, "through-signal collapsed: {amp}");
        assert!(amp < 1.0);
    }

    #[test]
    fn small_beaker_adds_diffraction_noise() {
        let mut builder = Scenario::builder();
        builder.hardware(HardwareProfile::ideal());
        builder.environment(Environment::EmptyHall);
        builder.beaker(Beaker::paper_default().with_diameter(Meters::from_cm(3.2)));
        let mut sim = Simulator::new(builder.build(), 6);
        sim.set_liquid(Some(Liquid::PureWater.into()));
        let cap = sim.capture(40);
        let series = cap.amplitude_series(0, 15);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / series.len() as f64;
        assert!(
            var.sqrt() / mean > 0.05,
            "diffraction should churn the amplitude"
        );
    }

    #[test]
    fn flow_noise_churns_phase() {
        let mut quiet_b = Scenario::builder();
        quiet_b.hardware(HardwareProfile::ideal());
        quiet_b.environment(Environment::EmptyHall);
        let mut flowing_b = quiet_b.clone();
        flowing_b.flow_noise(0.8);

        let run = |scenario: Scenario| -> f64 {
            let mut sim = Simulator::new(scenario, 8);
            sim.set_liquid(Some(Liquid::Milk.into()));
            let cap = sim.capture(60);
            let series = cap.phase_difference_series(0, 1, 15);
            circular_std(&series)
        };
        let quiet = run(quiet_b.build());
        let flowing = run(flowing_b.build());
        assert!(
            flowing > 2.0 * quiet.max(1e-6),
            "flow noise should raise phase spread (quiet {quiet}, flowing {flowing})"
        );
    }

    fn circular_std(angles: &[f64]) -> f64 {
        let (s, c) = angles
            .iter()
            .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
        let r = (s * s + c * c).sqrt() / angles.len() as f64;
        (-2.0 * r.max(1e-12).ln()).sqrt()
    }

    #[test]
    fn cached_insertions_match_forced_recompute() {
        // One simulator rides the insertion cache across packets; its twin
        // recomputes from scratch before every packet. The captures must be
        // bitwise identical (cache invalidation draws nothing from the RNG).
        let mut builder = Scenario::builder();
        builder.flow_noise(0.3);
        let scenario = builder.build();
        let mut cached = Simulator::new(scenario.clone(), 21);
        let mut uncached = Simulator::new(scenario, 21);
        cached.set_liquid(Some(Liquid::Milk.into()));
        uncached.set_liquid(Some(Liquid::Milk.into()));
        for _ in 0..5 {
            uncached.invalidate_caches();
            assert_eq!(cached.packet(), uncached.packet());
        }
    }

    #[test]
    fn set_liquid_invalidates_insertions() {
        // Pouring a different liquid must change the through-target CSI
        // even though the cache was warm from earlier packets.
        let quiet = {
            let mut b = Scenario::builder();
            b.hardware(HardwareProfile::ideal());
            b.environment(Environment::EmptyHall);
            b.build()
        };
        let mut sim = Simulator::new(quiet, 31);
        sim.set_liquid(Some(Liquid::Oil.into()));
        let oil = sim.packet();
        sim.set_liquid(Some(Liquid::PureWater.into()));
        let water = sim.packet();
        let delta = (oil.get(0, 15) - water.get(0, 15)).abs();
        assert!(delta > 0.01, "stale insertion cache: delta = {delta}");
    }

    #[test]
    fn liquidspec_constructors() {
        let a = LiquidSpec::catalog(Liquid::Coke);
        assert_eq!(a.name(), "Coke");
        let b = LiquidSpec::saltwater(SaltwaterConcentration::new(1.2));
        assert!(b.name().contains("1.2"));
        let c = LiquidSpec::custom("mystery", DebyeModel::pure_water());
        assert_eq!(c.name(), "mystery");
        let d: LiquidSpec = Liquid::Milk.into();
        assert_eq!(d.name(), "Milk");
    }
}
