//! Minimal complex arithmetic used throughout the simulator.
//!
//! The simulator deliberately avoids external numerics crates; CSI values,
//! permittivities and channel responses are all [`Complex`] numbers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + j·im`.
///
/// # Examples
///
/// ```
/// use wimi_phy::complex::Complex;
///
/// let h = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((h.re).abs() < 1e-12);
/// assert!((h.im - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Unit phasor `e^{jθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    ///
    /// The branch cut follows the convention of `sqrt(r)·e^{jθ/2}` with
    /// `θ ∈ (-π, π]`, so the result always has a non-negative real part.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic; dividing by zero yields non-finite parts, mirroring
    /// `f64` semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiply-by-inverse
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
        assert_eq!(Complex::from(3.5), Complex::new(3.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 1.1);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0 - PI;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.inv(), Complex::ONE));
        assert!(close(-(-a), a));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(0.3, 0.7);
        assert!(close(a.conj().conj(), a));
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn exp_of_imaginary_is_rotation() {
        let z = Complex::new(0.0, FRAC_PI_2).exp();
        assert!(close(z, Complex::I));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z}) = {r}");
            assert!(r.re >= -1e-12, "principal branch violated for {z}");
        }
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let a = Complex::new(1.5, -0.5);
        assert!(close(2.0 * a, a * 2.0));
        assert!(close(a / 2.0, a * 0.5));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::cis(k as f64 * FRAC_PI_2)).sum();
        // 1 + j - 1 - j = 0
        assert!(total.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Complex::ZERO).is_empty());
    }
}
