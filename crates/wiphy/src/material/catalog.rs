//! Catalog of the liquids evaluated in the WiMi paper.
//!
//! The paper measures ten real liquids with an Intel 5300 NIC. Real liquids
//! are not available in this environment (hardware/data gate), so each is
//! substituted by a single-pole Debye model whose parameters are drawn from
//! the dielectric-spectroscopy literature at 20–25 °C. The parameters were
//! chosen so the 5 GHz permittivities land near published values, and so
//! that *relative* contrasts the paper relies on are preserved — in
//! particular Pepsi and Coke are deliberately near-identical (they differ
//! mostly in trace acid/ion content), making them the hard pair the paper
//! highlights.

use super::debye::DebyeModel;
use super::{ConstantPermittivity, Dielectric, Permittivity};
use crate::units::{Hertz, Seconds};
use std::fmt;

/// The ten liquids of the paper's Fig. 15 evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Liquid {
    /// Rice vinegar (~5 % acetic acid, weak electrolyte).
    Vinegar,
    /// Honey (low water content, high sugar).
    Honey,
    /// Soy sauce (very high salt → conductivity-dominated loss).
    Soy,
    /// Whole milk (fat/protein suspension).
    Milk,
    /// Pepsi cola (carbonated sugar water + phosphoric acid).
    Pepsi,
    /// Distilled liquor (~50 % ethanol–water).
    Liquor,
    /// Distilled/pure water.
    PureWater,
    /// Vegetable cooking oil (low-loss, low permittivity).
    Oil,
    /// Coca-Cola (deliberately close to Pepsi).
    Coke,
    /// Sugar water (~10 % sucrose).
    SweetWater,
}

/// All ten catalog liquids, in the order of the paper's Fig. 15 legend.
pub const LIQUIDS: [Liquid; 10] = [
    Liquid::Vinegar,
    Liquid::Honey,
    Liquid::Soy,
    Liquid::Milk,
    Liquid::Pepsi,
    Liquid::Liquor,
    Liquid::PureWater,
    Liquid::Oil,
    Liquid::Coke,
    Liquid::SweetWater,
];

impl Liquid {
    /// Human-readable name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Liquid::Vinegar => "Vinegar",
            Liquid::Honey => "Honey",
            Liquid::Soy => "Soy",
            Liquid::Milk => "Milk",
            Liquid::Pepsi => "Pepsi",
            Liquid::Liquor => "Liquor",
            Liquid::PureWater => "Pure water",
            Liquid::Oil => "Oil",
            Liquid::Coke => "Coke",
            Liquid::SweetWater => "Sweet water",
        }
    }

    /// The Debye dielectric model for this liquid.
    ///
    /// Parameters: `(ε_s, ε_∞, τ [ps], σ [S/m])`.
    pub fn debye(self) -> DebyeModel {
        match self {
            // Acetic acid solution: reduced ε_s, slowed relaxation, ionic loss.
            Liquid::Vinegar => DebyeModel::new(71.0, 5.2, Seconds::from_ps(10.0), 1.8),
            // Mostly sugar; little free water → low, slowly-relaxing
            // permittivity (high viscosity drags the relaxation out).
            Liquid::Honey => DebyeModel::new(12.0, 3.5, Seconds::from_ps(22.0), 0.08),
            // Brine-like: conductivity dominates ε''.
            Liquid::Soy => DebyeModel::new(60.0, 5.0, Seconds::from_ps(9.0), 4.5),
            // Fat and protein displace water and slow relaxation;
            // dissolved salts add conductivity.
            Liquid::Milk => DebyeModel::new(66.0, 5.0, Seconds::from_ps(12.0), 1.5),
            // Sugar water + phosphoric acid.
            Liquid::Pepsi => DebyeModel::new(76.5, 5.2, Seconds::from_ps(9.3), 0.15),
            // ~50 % ethanol: lower ε_s, much slower relaxation.
            Liquid::Liquor => DebyeModel::new(45.0, 4.5, Seconds::from_ps(35.0), 0.02),
            Liquid::PureWater => DebyeModel::pure_water(),
            // Non-polar triglycerides.
            Liquid::Oil => DebyeModel::new(2.6, 2.45, Seconds::from_ps(30.0), 0.001),
            // Near-twin of Pepsi: slightly different acid/ion balance.
            Liquid::Coke => DebyeModel::new(76.0, 5.2, Seconds::from_ps(9.3), 0.50),
            // 10 % sucrose: mildly reduced ε_s, slowed relaxation.
            Liquid::SweetWater => DebyeModel::new(74.0, 5.2, Seconds::from_ps(11.0), 0.01),
        }
    }
}

impl Dielectric for Liquid {
    fn permittivity(&self, f: Hertz) -> Permittivity {
        self.debye().permittivity(f)
    }
}

impl fmt::Display for Liquid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A saltwater solution of given concentration, for the paper's Fig. 16
/// experiment (1.2, 2.7 and 5.9 g/100 ml).
///
/// Salinity raises ionic conductivity roughly linearly (~1.5 S/m per
/// g/100 ml at room temperature) and mildly depresses the static
/// permittivity.
///
/// # Examples
///
/// ```
/// use wimi_phy::material::{Dielectric, SaltwaterConcentration};
/// use wimi_phy::units::Hertz;
///
/// let weak = SaltwaterConcentration::new(1.2);
/// let strong = SaltwaterConcentration::new(5.9);
/// let f = Hertz::from_ghz(5.24);
/// assert!(strong.permittivity(f).imag > weak.permittivity(f).imag);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SaltwaterConcentration {
    grams_per_100ml: f64,
}

impl SaltwaterConcentration {
    /// The three concentrations used in the paper's Fig. 16.
    pub const PAPER_SET: [SaltwaterConcentration; 3] = [
        SaltwaterConcentration {
            grams_per_100ml: 1.2,
        },
        SaltwaterConcentration {
            grams_per_100ml: 2.7,
        },
        SaltwaterConcentration {
            grams_per_100ml: 5.9,
        },
    ];

    /// Creates a concentration in grams of NaCl per 100 ml of water.
    ///
    /// # Panics
    ///
    /// Panics if the concentration is negative or above the ~36 g/100 ml
    /// solubility limit of NaCl.
    pub fn new(grams_per_100ml: f64) -> Self {
        assert!(
            (0.0..=36.0).contains(&grams_per_100ml),
            "NaCl concentration must be within [0, 36] g/100ml, got {grams_per_100ml}"
        );
        SaltwaterConcentration { grams_per_100ml }
    }

    /// The concentration in g/100 ml.
    pub fn grams_per_100ml(self) -> f64 {
        self.grams_per_100ml
    }

    /// The Debye model for this solution.
    pub fn debye(self) -> DebyeModel {
        let g = self.grams_per_100ml;
        let sigma = 1.5 * g;
        let eps_s = (78.36 - 1.6 * g).max(40.0);
        DebyeModel::new(eps_s, 5.2, Seconds::from_ps(8.27), sigma)
    }
}

impl Dielectric for SaltwaterConcentration {
    fn permittivity(&self, f: Hertz) -> Permittivity {
        self.debye().permittivity(f)
    }
}

impl fmt::Display for SaltwaterConcentration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "saltwater {} g/100ml", self.grams_per_100ml)
    }
}

/// Container wall materials for the Fig. 20 experiment.
///
/// Glass and plastic are thin, low-loss dielectrics whose effect cancels in
/// WiMi's baseline subtraction; metal reflects the signal entirely and makes
/// identification impossible (paper §V-B / §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerMaterial {
    /// Soda-lime glass beaker.
    Glass,
    /// Acrylic/PET plastic beaker.
    Plastic,
    /// Metallic (or foil-wrapped) container: blocks penetration.
    Metal,
}

impl ContainerMaterial {
    /// The wall dielectric, or `None` for metal (treated as a reflector).
    pub fn dielectric(self) -> Option<ConstantPermittivity> {
        match self {
            ContainerMaterial::Glass => Some(ConstantPermittivity::new(5.5, 0.06)),
            ContainerMaterial::Plastic => Some(ConstantPermittivity::new(2.6, 0.02)),
            ContainerMaterial::Metal => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ContainerMaterial::Glass => "Glass",
            ContainerMaterial::Plastic => "Plastic",
            ContainerMaterial::Metal => "Metal",
        }
    }
}

impl fmt::Display for ContainerMaterial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::PropagationConstants;

    const F: Hertz = Hertz(5.24e9);

    #[test]
    fn all_liquids_have_distinct_material_features() {
        let air = PropagationConstants::air(F);
        let mut feats: Vec<(Liquid, f64)> = LIQUIDS
            .iter()
            .map(|&l| (l, l.propagation(F).material_feature(air)))
            .collect();
        feats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for pair in feats.windows(2) {
            let gap = (pair[1].1 - pair[0].1).abs();
            assert!(
                gap > 1e-4,
                "features too close: {} ({}) vs {} ({})",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
    }

    #[test]
    fn pepsi_and_coke_are_the_hardest_pair_among_colas() {
        let air = PropagationConstants::air(F);
        let f = |l: Liquid| l.propagation(F).material_feature(air);
        let pepsi_coke = (f(Liquid::Pepsi) - f(Liquid::Coke)).abs();
        let pepsi_water = (f(Liquid::Pepsi) - f(Liquid::PureWater)).abs();
        let pepsi_oil = (f(Liquid::Pepsi) - f(Liquid::Oil)).abs();
        assert!(pepsi_coke < pepsi_water);
        assert!(pepsi_coke < pepsi_oil);
    }

    #[test]
    fn soy_is_lossier_than_milk() {
        let f = Hertz::from_ghz(5.24);
        assert!(Liquid::Soy.permittivity(f).imag > Liquid::Milk.permittivity(f).imag);
    }

    #[test]
    fn oil_is_nearly_transparent() {
        let pc = Liquid::Oil.propagation(F);
        assert!(pc.alpha < 5.0, "alpha = {}", pc.alpha);
    }

    #[test]
    fn saltwater_loss_monotone_in_concentration() {
        let f = F;
        let imags: Vec<f64> = SaltwaterConcentration::PAPER_SET
            .iter()
            .map(|c| c.permittivity(f).imag)
            .collect();
        assert!(imags[0] < imags[1] && imags[1] < imags[2]);
    }

    #[test]
    fn saltwater_features_distinct_from_pure_water() {
        let air = PropagationConstants::air(F);
        let water = Liquid::PureWater.propagation(F).material_feature(air);
        for c in SaltwaterConcentration::PAPER_SET {
            let feat = c.propagation(F).material_feature(air);
            assert!((feat - water).abs() > 0.01, "{c} too close to pure water");
        }
    }

    #[test]
    #[should_panic(expected = "concentration")]
    fn saltwater_rejects_oversaturated() {
        let _ = SaltwaterConcentration::new(50.0);
    }

    #[test]
    fn container_dielectrics() {
        assert!(ContainerMaterial::Glass.dielectric().is_some());
        assert!(ContainerMaterial::Plastic.dielectric().is_some());
        assert!(ContainerMaterial::Metal.dielectric().is_none());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Liquid::PureWater.to_string(), "Pure water");
        assert_eq!(ContainerMaterial::Metal.to_string(), "Metal");
        assert_eq!(
            SaltwaterConcentration::new(1.2).to_string(),
            "saltwater 1.2 g/100ml"
        );
    }

    #[test]
    fn catalog_is_complete() {
        assert_eq!(LIQUIDS.len(), 10);
        let mut names: Vec<&str> = LIQUIDS.iter().map(|l| l.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate liquid names");
    }
}
