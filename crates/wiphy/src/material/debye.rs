//! Single-pole Debye relaxation model with ionic conductivity.

use super::{Dielectric, Permittivity};
use crate::constants::VACUUM_PERMITTIVITY;
use crate::units::{Hertz, Seconds};

/// Single-pole Debye dielectric relaxation:
///
/// `ε_r(ω) = ε_∞ + (ε_s − ε_∞)/(1 + jωτ) − j·σ/(ω·ε₀)`
///
/// This captures water-based liquids at microwave frequencies well: the
/// orientational polarisation of the water dipole relaxes with time constant
/// `τ ≈ 8.3 ps` at room temperature, and dissolved ions add a conductivity
/// loss `σ/(ωε₀)` that dominates ε'' for salty liquids (saltwater, soy
/// sauce). All ten WiMi liquids are encoded with this model in
/// `catalog`.
///
/// # Examples
///
/// ```
/// use wimi_phy::material::{DebyeModel, Dielectric};
/// use wimi_phy::units::Hertz;
///
/// let water = DebyeModel::pure_water();
/// let eps = water.permittivity(Hertz::from_ghz(5.0));
/// // Literature: ε' ≈ 73, ε'' ≈ 18 at 5 GHz, 25 °C.
/// assert!((eps.real - 73.0).abs() < 2.0);
/// assert!((eps.imag - 18.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebyeModel {
    /// Static (low-frequency) relative permittivity ε_s.
    pub eps_static: f64,
    /// High-frequency relative permittivity ε_∞.
    pub eps_infinity: f64,
    /// Relaxation time τ.
    pub relaxation: Seconds,
    /// Ionic conductivity σ, S/m.
    pub conductivity: f64,
}

impl DebyeModel {
    /// Creates a Debye model.
    ///
    /// # Panics
    ///
    /// Panics if `eps_static < eps_infinity`, either permittivity is below
    /// 1, the relaxation time is non-positive, or the conductivity is
    /// negative.
    pub fn new(eps_static: f64, eps_infinity: f64, relaxation: Seconds, conductivity: f64) -> Self {
        assert!(
            eps_static >= eps_infinity,
            "static permittivity ({eps_static}) must be >= high-frequency permittivity ({eps_infinity})"
        );
        assert!(eps_infinity >= 1.0, "eps_infinity must be >= 1");
        assert!(relaxation.value() > 0.0, "relaxation time must be positive");
        assert!(conductivity >= 0.0, "conductivity must be non-negative");
        DebyeModel {
            eps_static,
            eps_infinity,
            relaxation,
            conductivity,
        }
    }

    /// Pure water at 25 °C (Kaatze 1989): ε_s = 78.36, ε_∞ = 5.2,
    /// τ = 8.27 ps, σ ≈ 0.
    pub fn pure_water() -> Self {
        DebyeModel::new(78.36, 5.2, Seconds::from_ps(8.27), 0.0)
    }

    /// Returns a copy with the given ionic conductivity (S/m).
    pub fn with_conductivity(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "conductivity must be non-negative");
        self.conductivity = sigma;
        self
    }
}

impl Dielectric for DebyeModel {
    fn permittivity(&self, f: Hertz) -> Permittivity {
        assert!(f.value() > 0.0, "frequency must be positive");
        let omega_tau = f.angular() * self.relaxation.value();
        let denom = 1.0 + omega_tau * omega_tau;
        let delta = self.eps_static - self.eps_infinity;
        let real = self.eps_infinity + delta / denom;
        let dipolar_loss = delta * omega_tau / denom;
        let ionic_loss = self.conductivity / (f.angular() * VACUUM_PERMITTIVITY);
        Permittivity::new(real, dipolar_loss + ionic_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_matches_literature_at_5ghz() {
        let eps = DebyeModel::pure_water().permittivity(Hertz::from_ghz(5.0));
        assert!((eps.real - 73.0).abs() < 2.0, "eps' = {}", eps.real);
        assert!((eps.imag - 18.0).abs() < 2.0, "eps'' = {}", eps.imag);
    }

    #[test]
    fn static_limit_recovers_eps_s() {
        let m = DebyeModel::pure_water();
        let eps = m.permittivity(Hertz::from_mhz(0.001));
        assert!((eps.real - m.eps_static).abs() < 0.01);
        assert!(eps.imag < 0.01);
    }

    #[test]
    fn high_frequency_limit_approaches_eps_infinity() {
        let m = DebyeModel::pure_water();
        let eps = m.permittivity(Hertz::from_ghz(100_000.0));
        assert!((eps.real - m.eps_infinity).abs() < 0.1);
    }

    #[test]
    fn loss_peaks_near_relaxation_frequency() {
        let m = DebyeModel::pure_water();
        // Peak dipolar loss occurs at ωτ = 1 → f ≈ 19.2 GHz for τ = 8.27 ps.
        let f_peak = 1.0 / (2.0 * std::f64::consts::PI * m.relaxation.value());
        let at_peak = m.permittivity(Hertz(f_peak)).imag;
        let below = m.permittivity(Hertz(f_peak / 8.0)).imag;
        let above = m.permittivity(Hertz(f_peak * 8.0)).imag;
        assert!(at_peak > below && at_peak > above);
    }

    #[test]
    fn conductivity_raises_loss_only() {
        let f = Hertz::from_ghz(5.0);
        let fresh = DebyeModel::pure_water().permittivity(f);
        let salty = DebyeModel::pure_water()
            .with_conductivity(3.0)
            .permittivity(f);
        assert_eq!(fresh.real, salty.real);
        assert!(salty.imag > fresh.imag + 5.0);
    }

    #[test]
    fn conductivity_loss_scales_inversely_with_frequency() {
        let m = DebyeModel::new(10.0, 5.0, Seconds::from_ps(1.0), 1.0);
        let lo = m.permittivity(Hertz::from_ghz(1.0));
        let hi = m.permittivity(Hertz::from_ghz(2.0));
        // Ionic term halves; dipolar term grows slightly. Net loss must drop
        // when the ionic term dominates.
        assert!(lo.imag > hi.imag);
    }

    #[test]
    #[should_panic(expected = "static permittivity")]
    fn rejects_inverted_permittivities() {
        let _ = DebyeModel::new(3.0, 5.0, Seconds::from_ps(8.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn rejects_nonpositive_relaxation() {
        let _ = DebyeModel::new(10.0, 5.0, Seconds(0.0), 0.0);
    }
}
