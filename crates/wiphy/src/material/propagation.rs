//! Plane-wave propagation constants from complex permittivity.

use super::Permittivity;
use crate::constants::SPEED_OF_LIGHT;
use crate::units::{Hertz, Meters};

/// Attenuation constant `α` (Np/m) and phase constant `β` (rad/m) of a
/// uniform plane wave in a lossy dielectric.
///
/// For non-magnetic media (`μ = μ₀`) with `ε = ε₀(ε' − jε'')`:
///
/// - `α = (ω/c)·√(ε'/2)·√(√(1 + tan²δ) − 1)`
/// - `β = (ω/c)·√(ε'/2)·√(√(1 + tan²δ) + 1)`
///
/// These are the `α_tar`/`β_tar` of paper Eq. (2)–(4); the material feature
/// `Ω̄` (Eq. 21) is their normalised contrast against air, exposed here as
/// [`PropagationConstants::material_feature`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationConstants {
    /// Attenuation constant, nepers per metre.
    pub alpha: f64,
    /// Phase constant, radians per metre.
    pub beta: f64,
}

impl PropagationConstants {
    /// Computes `(α, β)` from the complex relative permittivity at `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not positive.
    pub fn from_permittivity(eps: Permittivity, f: Hertz) -> Self {
        assert!(f.value() > 0.0, "frequency must be positive");
        let k0 = f.angular() / SPEED_OF_LIGHT; // free-space wavenumber ω/c
        let tan_d = eps.loss_tangent();
        let root = (1.0 + tan_d * tan_d).sqrt();
        let scale = k0 * (eps.real / 2.0).sqrt();
        PropagationConstants {
            alpha: scale * (root - 1.0).sqrt(),
            beta: scale * (root + 1.0).sqrt(),
        }
    }

    /// Propagation constants of air at `f` (essentially `α = 0`, `β = ω/c`).
    pub fn air(f: Hertz) -> Self {
        Self::from_permittivity(Permittivity::AIR, f)
    }

    /// Wavelength inside the medium, `λ = 2π/β`.
    pub fn wavelength(self) -> Meters {
        Meters(2.0 * std::f64::consts::PI / self.beta)
    }

    /// One-way field attenuation over distance `d`: `e^{−α·d}` (linear
    /// amplitude factor, in `(0, 1]`).
    pub fn amplitude_factor(self, d: Meters) -> f64 {
        (-self.alpha * d.value()).exp()
    }

    /// Phase accumulated over distance `d`: `β·d` radians.
    pub fn phase_over(self, d: Meters) -> f64 {
        self.beta * d.value()
    }

    /// The ground-truth WiMi material feature
    /// `Ω̄ = (α − α_air)/(β − β_air)` at the same frequency (paper Eq. 21,
    /// written here with both sign conventions collapsed to a positive
    /// ratio for lossy-dense media).
    ///
    /// # Panics
    ///
    /// Panics if the material is indistinguishable from air in phase
    /// constant (`β ≈ β_air`), for which the feature is undefined.
    pub fn material_feature(self, air: PropagationConstants) -> f64 {
        let d_beta = self.beta - air.beta;
        assert!(
            d_beta.abs() > 1e-9,
            "material feature undefined: beta equals air's"
        );
        (self.alpha - air.alpha) / d_beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{DebyeModel, Dielectric};

    const F: Hertz = Hertz(5.24e9);

    #[test]
    fn air_has_negligible_attenuation() {
        let pc = PropagationConstants::air(F);
        assert!(pc.alpha.abs() < 1e-9);
        let k0 = F.angular() / SPEED_OF_LIGHT;
        assert!((pc.beta - k0).abs() / k0 < 1e-3);
    }

    #[test]
    fn lossless_medium_beta_scales_with_sqrt_eps() {
        let eps = Permittivity::new(4.0, 0.0);
        let pc = PropagationConstants::from_permittivity(eps, F);
        let k0 = F.angular() / SPEED_OF_LIGHT;
        assert!((pc.beta - 2.0 * k0).abs() / k0 < 1e-12);
        assert_eq!(pc.alpha, 0.0);
    }

    #[test]
    fn water_constants_at_5ghz() {
        let pc = DebyeModel::pure_water().propagation(F);
        // Expected: β ≈ 940 rad/m, α ≈ 110 Np/m (order-of-magnitude physics check).
        assert!(pc.beta > 800.0 && pc.beta < 1100.0, "beta = {}", pc.beta);
        assert!(pc.alpha > 80.0 && pc.alpha < 160.0, "alpha = {}", pc.alpha);
    }

    #[test]
    fn wavelength_shrinks_in_dense_media() {
        let water = DebyeModel::pure_water().propagation(F);
        let air = PropagationConstants::air(F);
        assert!(water.wavelength().value() < air.wavelength().value() / 7.0);
    }

    #[test]
    fn amplitude_factor_decays_with_distance() {
        let pc = DebyeModel::pure_water().propagation(F);
        let near = pc.amplitude_factor(Meters::from_mm(1.0));
        let far = pc.amplitude_factor(Meters::from_cm(1.0));
        assert!(near > far);
        assert!(near <= 1.0 && far > 0.0);
    }

    #[test]
    fn phase_over_is_linear_in_distance() {
        let pc = PropagationConstants::air(F);
        let p1 = pc.phase_over(Meters(1.0));
        let p2 = pc.phase_over(Meters(2.0));
        assert!((p2 - 2.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn material_feature_matches_hand_computation() {
        let air = PropagationConstants::air(F);
        let water = DebyeModel::pure_water().propagation(F);
        let omega = water.material_feature(air);
        let expect = (water.alpha - air.alpha) / (water.beta - air.beta);
        assert!((omega - expect).abs() < 1e-15);
        assert!(omega > 0.05 && omega < 0.25, "omega = {omega}");
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn material_feature_rejects_airlike_media() {
        let air = PropagationConstants::air(F);
        let _ = air.material_feature(air);
    }

    #[test]
    fn more_loss_means_more_alpha_same_scale_beta() {
        let low = PropagationConstants::from_permittivity(Permittivity::new(70.0, 5.0), F);
        let high = PropagationConstants::from_permittivity(Permittivity::new(70.0, 30.0), F);
        assert!(high.alpha > 5.0 * low.alpha);
        assert!((high.beta - low.beta).abs() / low.beta < 0.05);
    }
}
