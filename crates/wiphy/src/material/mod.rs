//! Dielectric material models.
//!
//! A material is characterised by its complex relative permittivity
//! `ε_r(ω) = ε' − jε''`, produced here by a single-pole Debye model with an
//! ionic-conductivity term (see [`DebyeModel`]). From the permittivity the
//! plane-wave propagation constants follow (see [`PropagationConstants`]):
//! the attenuation constant `α` (Np/m) and phase constant `β` (rad/m) that
//! the WiMi feature `Ω̄ = (α_tar − α_free)/(β_tar − β_free)` is built on
//! (paper Eq. 2–4 and 21).

mod catalog;
mod debye;
mod propagation;

pub use catalog::{ContainerMaterial, Liquid, SaltwaterConcentration, LIQUIDS};
pub use debye::DebyeModel;
pub use propagation::PropagationConstants;

use crate::complex::Complex;
use crate::units::Hertz;

/// Complex relative permittivity `ε_r = ε' − jε''` at a single frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Permittivity {
    /// Real part ε' (dielectric constant), dimensionless, ≥ 1 for passive media.
    pub real: f64,
    /// Imaginary part ε'' (loss factor), dimensionless, ≥ 0 for lossy media.
    pub imag: f64,
}

impl Permittivity {
    /// Relative permittivity of air (to numerical precision, vacuum).
    pub const AIR: Permittivity = Permittivity {
        real: 1.000_536,
        imag: 0.0,
    };

    /// Creates a permittivity; `real` is ε', `imag` is ε'' (positive = lossy).
    ///
    /// # Panics
    ///
    /// Panics if `real < 1.0` or `imag < 0.0` — passive materials cannot
    /// have sub-unity dielectric constants or negative loss.
    pub fn new(real: f64, imag: f64) -> Self {
        assert!(real >= 1.0, "dielectric constant must be >= 1, got {real}");
        assert!(imag >= 0.0, "loss factor must be >= 0, got {imag}");
        Permittivity { real, imag }
    }

    /// Loss tangent `tan δ = ε''/ε'`.
    #[inline]
    pub fn loss_tangent(self) -> f64 {
        self.imag / self.real
    }

    /// The permittivity as a complex number `ε' − jε''`.
    #[inline]
    pub fn as_complex(self) -> Complex {
        Complex::new(self.real, -self.imag)
    }
}

/// A material whose permittivity can be evaluated at any frequency.
///
/// Implemented by [`DebyeModel`] (dispersive liquids) and by
/// [`ConstantPermittivity`] (solids like glass whose dispersion is
/// negligible over a 20 MHz Wi-Fi channel).
pub trait Dielectric {
    /// Complex relative permittivity at frequency `f`.
    fn permittivity(&self, f: Hertz) -> Permittivity;

    /// Plane-wave propagation constants at frequency `f`.
    fn propagation(&self, f: Hertz) -> PropagationConstants {
        PropagationConstants::from_permittivity(self.permittivity(f), f)
    }
}

/// A non-dispersive dielectric described by a fixed `(ε', ε'')`.
///
/// # Examples
///
/// ```
/// use wimi_phy::material::{ConstantPermittivity, Dielectric};
/// use wimi_phy::units::Hertz;
///
/// let glass = ConstantPermittivity::new(5.5, 0.03);
/// let pc = glass.propagation(Hertz::from_ghz(5.24));
/// assert!(pc.beta > 0.0 && pc.alpha > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantPermittivity {
    eps: Permittivity,
}

impl ConstantPermittivity {
    /// Creates a non-dispersive dielectric from `(ε', ε'')`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Permittivity::new`].
    pub fn new(real: f64, imag: f64) -> Self {
        ConstantPermittivity {
            eps: Permittivity::new(real, imag),
        }
    }

    /// The underlying permittivity.
    pub fn permittivity_value(self) -> Permittivity {
        self.eps
    }
}

impl Dielectric for ConstantPermittivity {
    fn permittivity(&self, _f: Hertz) -> Permittivity {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_tangent_definition() {
        let eps = Permittivity::new(50.0, 10.0);
        assert!((eps.loss_tangent() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dielectric constant")]
    fn rejects_subunity_real_part() {
        let _ = Permittivity::new(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss factor")]
    fn rejects_negative_loss() {
        let _ = Permittivity::new(2.0, -0.1);
    }

    #[test]
    fn air_is_nearly_lossless() {
        assert!(Permittivity::AIR.imag.abs() < f64::EPSILON);
        assert!((Permittivity::AIR.real - 1.0).abs() < 1e-3);
    }

    #[test]
    fn as_complex_uses_engineering_sign_convention() {
        let eps = Permittivity::new(4.0, 1.0);
        let z = eps.as_complex();
        assert_eq!(z.re, 4.0);
        assert_eq!(z.im, -1.0);
    }

    #[test]
    fn constant_permittivity_is_frequency_flat() {
        let m = ConstantPermittivity::new(5.5, 0.03);
        let a = m.permittivity(Hertz::from_ghz(2.4));
        let b = m.permittivity(Hertz::from_ghz(5.8));
        assert_eq!(a, b);
    }
}
