//! Commodity-NIC hardware impairments.
//!
//! The raw CSI phase of a commodity Wi-Fi NIC is corrupted per packet by
//! carrier frequency offset (CFO), sampling frequency offset (SFO) and
//! packet boundary delay (PBD) — paper Eq. (5):
//!
//! `φ̃_{k,i} = φ_{k,i} + k(λ_b + λ_s) + β + Z`
//!
//! Crucially these offsets are *common to all antennas of one NIC* (shared
//! oscillator and sampling clock), which is what makes the cross-antenna
//! phase difference stable (Eq. 6). The amplitude path adds AGC wobble
//! (common), per-antenna gain ripple, thermal noise, occasional impulse
//! noise bursts and outliers (paper Fig. 3), and Intel 5300-style 8-bit
//! quantisation.

use crate::channel::StandardNormal;
use crate::complex::Complex;
use crate::csi::CsiPacket;
use rand::Rng;

/// Hardware impairment configuration.
///
/// The defaults are tuned so the simulated raw CSI reproduces the paper's
/// observations: raw phase uniformly distributed over `[0, 2π)` across
/// packets (Fig. 2), cross-antenna phase difference spread of roughly 18°
/// before subcarrier selection (Fig. 12), and amplitude series with visible
/// impulse noise and outliers (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Apply the per-packet common phase corruption (CFO/PBD intercept,
    /// uniform over `[0, 2π)`, plus the SFO/PBD slope below). Real NICs
    /// always have it; turn off only for idealised tests.
    pub phase_corruption: bool,
    /// Std dev of the per-packet SFO+PBD phase slope, radians per
    /// subcarrier index.
    pub phase_slope_std: f64,
    /// Complex AWGN amplitude (std dev per I/Q component) relative to the
    /// unit-amplitude LoS reference.
    pub noise_std: f64,
    /// Std dev of the common (AGC) per-packet gain wobble, dB.
    pub agc_wobble_db: f64,
    /// Std dev of the *per-antenna* gain ripple, dB (does not cancel in the
    /// cross-antenna ratio; kept small).
    pub antenna_gain_ripple_db: f64,
    /// Probability that a packet is hit by an impulse-noise burst.
    pub impulse_probability: f64,
    /// Peak amplitude of an impulse burst relative to the LoS reference.
    pub impulse_magnitude: f64,
    /// Probability that a packet's amplitude is an outlier (far outside the
    /// normal fluctuation region).
    pub outlier_probability: f64,
    /// Multiplicative factor applied to an outlier packet's amplitude.
    pub outlier_factor: f64,
    /// Quantise CSI to signed 8-bit I/Q like the Intel 5300 CSI tool.
    pub quantize_8bit: bool,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile {
            phase_corruption: true,
            phase_slope_std: 0.015,
            noise_std: 0.02,
            agc_wobble_db: 2.5,
            antenna_gain_ripple_db: 0.10,
            impulse_probability: 0.05,
            impulse_magnitude: 0.22,
            outlier_probability: 0.015,
            outlier_factor: 2.6,
            quantize_8bit: true,
        }
    }
}

impl HardwareProfile {
    /// An idealised NIC with no impairments at all (for unit tests and
    /// ablations).
    pub fn ideal() -> Self {
        HardwareProfile {
            phase_corruption: false,
            phase_slope_std: 0.0,
            noise_std: 0.0,
            agc_wobble_db: 0.0,
            antenna_gain_ripple_db: 0.0,
            impulse_probability: 0.0,
            impulse_magnitude: 0.0,
            outlier_probability: 0.0,
            outlier_factor: 1.0,
            quantize_8bit: false,
        }
    }

    /// Returns a copy without the CFO/SFO/PBD phase corruption (keeps
    /// amplitude impairments) — used to ablate the phase-difference step.
    pub fn without_phase_corruption(mut self) -> Self {
        self.phase_corruption = false;
        self.phase_slope_std = 0.0;
        self
    }

    /// Applies all impairments to a packet in place.
    ///
    /// Convenience wrapper over [`HardwareProfile::apply_planes`] for the
    /// array-of-structs [`CsiPacket`] layout (tests, single frames). The
    /// simulator's capture loop calls `apply_planes` on the capture's flat
    /// planes directly.
    pub fn apply<R: Rng + ?Sized>(&self, packet: &mut CsiPacket, rng: &mut R) {
        let n_ant = packet.n_antennas();
        let n_sub = packet.n_subcarriers();
        let mut re = Vec::with_capacity(n_ant * n_sub);
        let mut im = Vec::with_capacity(n_ant * n_sub);
        for a in 0..n_ant {
            for h in packet.antenna_row(a) {
                re.push(h.re);
                im.push(h.im);
            }
        }
        self.apply_planes(&mut re, &mut im, n_ant, n_sub, rng);
        for a in 0..n_ant {
            for k in 0..n_sub {
                *packet.get_mut(a, k) = Complex::new(re[a * n_sub + k], im[a * n_sub + k]);
            }
        }
    }

    /// Applies all impairments to one packet stored as flat antenna-major
    /// `(re, im)` planes of length `n_antennas · n_subcarriers` — the
    /// allocation-free hot path.
    ///
    /// The phase corruption (CFO intercept + SFO/PBD slope) and the AGC
    /// wobble are drawn once per packet and applied to *every antenna
    /// identically*, modelling the shared oscillator/sampling clock of one
    /// NIC. Noise, gain ripple, impulse bursts and outliers are per antenna.
    ///
    /// # Panics
    ///
    /// Panics if the plane lengths differ from
    /// `n_antennas · n_subcarriers`.
    // wlint: hot
    // wlint: allow(panic-reach) — plane indices row + k < n_antennas·n_subcarriers, asserted at entry
    pub fn apply_planes<R: Rng + ?Sized>(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        n_antennas: usize,
        n_subcarriers: usize,
        rng: &mut R,
    ) {
        assert_eq!(re.len(), n_antennas * n_subcarriers, "re plane length");
        assert_eq!(im.len(), n_antennas * n_subcarriers, "im plane length");

        // Common-to-all-antennas corruption.
        let (cfo_intercept, slope) = if self.phase_corruption {
            (
                rng.gen_range(0.0..std::f64::consts::TAU),
                self.phase_slope_std * rng.sample(StandardNormal),
            )
        } else {
            (0.0, 0.0)
        };
        let agc = db_to_amp(self.agc_wobble_db * rng.sample(StandardNormal));

        for a in 0..n_antennas {
            let ripple = db_to_amp(self.antenna_gain_ripple_db * rng.sample(StandardNormal));
            let impulse_hit = rng.gen::<f64>() < self.impulse_probability;
            let outlier_hit = rng.gen::<f64>() < self.outlier_probability;
            let outlier_gain = if outlier_hit {
                // Outliers can spike high or collapse low.
                if rng.gen::<bool>() {
                    self.outlier_factor
                } else {
                    1.0 / self.outlier_factor
                }
            } else {
                1.0
            };

            let gain = agc * ripple * outlier_gain;
            let row = a * n_subcarriers;
            for k in 0..n_subcarriers {
                let i = row + k;
                let mut h = Complex::new(re[i], im[i]);
                // k(λ_b + λ_s) + β phase corruption, Eq. (5).
                let corrupt = Complex::cis(cfo_intercept + slope * k as f64);
                h = h * corrupt * gain;
                // Impulse burst: a short broadband additive spike.
                if impulse_hit {
                    let spike = Complex::from_polar(
                        self.impulse_magnitude * rng.gen::<f64>(),
                        rng.gen_range(0.0..std::f64::consts::TAU),
                    );
                    h += spike;
                }
                // Thermal noise.
                if self.noise_std > 0.0 {
                    h += Complex::new(
                        self.noise_std * rng.sample(StandardNormal),
                        self.noise_std * rng.sample(StandardNormal),
                    );
                }
                re[i] = h.re;
                im[i] = h.im;
            }
        }

        if self.quantize_8bit {
            quantize_intel5300_planes(re, im);
        }
    }
}

fn db_to_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Quantises a packet's I/Q samples to signed 8-bit integers, scaled to the
/// per-packet maximum component — the Intel 5300 CSI tool's storage format.
pub fn quantize_intel5300(packet: &mut CsiPacket) {
    let n_ant = packet.n_antennas();
    let n_sub = packet.n_subcarriers();
    let mut re = Vec::with_capacity(n_ant * n_sub);
    let mut im = Vec::with_capacity(n_ant * n_sub);
    for a in 0..n_ant {
        for h in packet.antenna_row(a) {
            re.push(h.re);
            im.push(h.im);
        }
    }
    quantize_intel5300_planes(&mut re, &mut im);
    for a in 0..n_ant {
        for k in 0..n_sub {
            *packet.get_mut(a, k) = Complex::new(re[a * n_sub + k], im[a * n_sub + k]);
        }
    }
}

/// [`quantize_intel5300`] on one packet's flat `(re, im)` planes — the
/// allocation-free hot path. The lanes are scanned in plane order, which
/// matches the packet's antenna-major `(a, k)` order exactly.
// wlint: hot
pub fn quantize_intel5300_planes(re: &mut [f64], im: &mut [f64]) {
    let mut max_c: f64 = 0.0;
    for (&r, &i) in re.iter().zip(im.iter()) {
        max_c = max_c.max(r.abs()).max(i.abs());
    }
    // `max_c` is a maximum of absolute values, so non-positive means the
    // packet is all-zero and there is nothing to quantise.
    if max_c <= 0.0 {
        return;
    }
    let scale = 127.0 / max_c;
    for x in re.iter_mut() {
        *x = (*x * scale).round() / scale;
    }
    for x in im.iter_mut() {
        *x = (*x * scale).round() / scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean_packet(n_ant: usize, n_sub: usize) -> CsiPacket {
        let data = (0..n_ant * n_sub)
            .map(|i| Complex::from_polar(1.0, 0.1 * (i % n_sub) as f64))
            .collect();
        CsiPacket::new(n_ant, n_sub, data)
    }

    #[test]
    fn ideal_profile_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = clean_packet(3, 30);
        let orig = p.clone();
        HardwareProfile::ideal().apply(&mut p, &mut rng);
        assert_eq!(p, orig);
    }

    #[test]
    fn raw_phase_becomes_uniform_across_packets() {
        // Reproduces the paper's Fig. 2 observation: raw per-packet phase is
        // uniformly spread over the circle.
        let mut rng = StdRng::seed_from_u64(1);
        let prof = HardwareProfile::default();
        let mut phases = Vec::new();
        for _ in 0..400 {
            let mut p = clean_packet(2, 30);
            prof.apply(&mut p, &mut rng);
            phases.push(p.get(0, 10).arg());
        }
        // Circular mean resultant length should be tiny for uniform phases.
        let (s, c): (f64, f64) = phases
            .iter()
            .fold((0.0, 0.0), |(s, c), &p| (s + p.sin(), c + p.cos()));
        let r = (s * s + c * c).sqrt() / phases.len() as f64;
        assert!(r < 0.15, "resultant length {r} too high for uniform phase");
    }

    #[test]
    fn cross_antenna_phase_difference_is_stable() {
        // The common CFO/PBD cancels between antennas: spread of the
        // difference must be far below the raw spread.
        let mut rng = StdRng::seed_from_u64(2);
        let prof = HardwareProfile {
            impulse_probability: 0.0,
            outlier_probability: 0.0,
            ..HardwareProfile::default()
        };
        let mut diffs = Vec::new();
        for _ in 0..300 {
            let mut p = clean_packet(2, 30);
            prof.apply(&mut p, &mut rng);
            diffs.push((p.get(0, 10) * p.get(1, 10).conj()).arg());
        }
        let (s, c): (f64, f64) = diffs
            .iter()
            .fold((0.0, 0.0), |(s, c), &p| (s + p.sin(), c + p.cos()));
        let r = (s * s + c * c).sqrt() / diffs.len() as f64;
        assert!(r > 0.95, "phase difference should concentrate, r = {r}");
    }

    #[test]
    fn impulse_noise_hits_some_packets_hard() {
        let mut rng = StdRng::seed_from_u64(3);
        let prof = HardwareProfile {
            noise_std: 0.0,
            agc_wobble_db: 0.0,
            antenna_gain_ripple_db: 0.0,
            impulse_probability: 0.5,
            outlier_probability: 0.0,
            quantize_8bit: false,
            ..HardwareProfile::default()
        };
        let mut deviations = Vec::new();
        for _ in 0..200 {
            let mut p = clean_packet(1, 30);
            prof.apply(&mut p, &mut rng);
            let amp = p.get(0, 0).abs();
            deviations.push((amp - 1.0).abs());
        }
        let hit = deviations.iter().filter(|&&d| d > 0.02).count();
        assert!(hit > 50 && hit < 160, "impulse hits = {hit}");
    }

    #[test]
    fn outliers_are_rare_and_large() {
        let mut rng = StdRng::seed_from_u64(4);
        let prof = HardwareProfile {
            noise_std: 0.0,
            agc_wobble_db: 0.0,
            antenna_gain_ripple_db: 0.0,
            impulse_probability: 0.0,
            outlier_probability: 0.2,
            quantize_8bit: false,
            ..HardwareProfile::default()
        };
        let mut outliers = 0;
        let n = 500;
        for _ in 0..n {
            let mut p = clean_packet(1, 4);
            prof.apply(&mut p, &mut rng);
            let amp = p.get(0, 0).abs();
            if !(0.5..=2.0).contains(&amp) {
                outliers += 1;
            }
        }
        let frac = outliers as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.06, "outlier fraction = {frac}");
    }

    #[test]
    fn quantization_limits_resolution_but_preserves_shape() {
        let mut p = clean_packet(2, 30);
        let orig = p.clone();
        quantize_intel5300(&mut p);
        for a in 0..2 {
            for k in 0..30 {
                let err = (p.get(a, k) - orig.get(a, k)).abs();
                assert!(err < 2.0 / 127.0, "quantisation error too large: {err}");
            }
        }
    }

    #[test]
    fn quantize_zero_packet_is_noop() {
        let mut p = CsiPacket::zeros(1, 4);
        quantize_intel5300(&mut p);
        assert_eq!(p.get(0, 0), Complex::ZERO);
    }

    #[test]
    fn agc_wobble_is_common_across_antennas() {
        // With only AGC wobble on, the ratio |H_a|/|H_b| must stay exactly 1.
        let mut rng = StdRng::seed_from_u64(5);
        let prof = HardwareProfile {
            phase_slope_std: 0.0,
            noise_std: 0.0,
            agc_wobble_db: 2.0,
            antenna_gain_ripple_db: 0.0,
            impulse_probability: 0.0,
            outlier_probability: 0.0,
            quantize_8bit: false,
            ..HardwareProfile::default()
        };
        for _ in 0..50 {
            let mut p = clean_packet(2, 4);
            prof.apply(&mut p, &mut rng);
            let ratio = p.get(0, 1).abs() / p.get(1, 1).abs();
            assert!((ratio - 1.0).abs() < 1e-9, "AGC failed to cancel: {ratio}");
        }
    }
}
