//! Indoor multipath channel model.
//!
//! Each deployment environment (empty hall / lab / library, paper §IV) is a
//! set of static scatterers scattered around the link plus a LoS ray. Every
//! scatterer contributes a delayed, attenuated copy of the signal whose
//! phase depends on the actual tx→scatterer→rx path length — so different
//! receive antennas and different subcarriers see different multipath sums,
//! which is exactly the frequency diversity WiMi's "good subcarrier"
//! selection exploits (paper Fig. 6).
//!
//! Scatterers also jitter slightly from packet to packet (people moving,
//! fans, door reflections), which is what turns subcarrier-dependent
//! multipath into subcarrier-dependent phase-difference *variance*.

use crate::complex::Complex;
use crate::geometry::Point;
use crate::units::{Hertz, Meters};
use rand::Rng;
use rand_distr_shim::StandardNormalShim;

/// Deployment environments of the paper, ordered by multipath richness.
///
/// Multipath is modelled as two scatterer populations: a **static** one
/// (walls, furniture — frequency-selective, biases both captures the same
/// way) and a **dynamic** one (people, fans, swinging doors — its phase
/// churns from packet to packet, so averaging over packets suppresses it;
/// this is exactly why the paper's accuracy grows with packet count,
/// Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Empty hall: low multipath.
    EmptyHall,
    /// Laboratory/office: medium multipath.
    Lab,
    /// Library: high multipath.
    Library,
}

impl Environment {
    /// All three environments in increasing multipath order.
    pub const ALL: [Environment; 3] = [
        Environment::EmptyHall,
        Environment::Lab,
        Environment::Library,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Environment::EmptyHall => "Hall",
            Environment::Lab => "Lab",
            Environment::Library => "Library",
        }
    }

    /// Tunable multipath profile for this environment.
    pub fn profile(self) -> EnvironmentProfile {
        match self {
            Environment::EmptyHall => EnvironmentProfile {
                n_static: 3,
                static_to_los_db: -52.0,
                n_dynamic: 3,
                dynamic_to_los_db: -40.0,
                phase_jitter_std: 2.0,
                gain_jitter_std: 0.10,
            },
            Environment::Lab => EnvironmentProfile {
                n_static: 6,
                static_to_los_db: -48.0,
                n_dynamic: 6,
                dynamic_to_los_db: -36.0,
                phase_jitter_std: 2.2,
                gain_jitter_std: 0.15,
            },
            Environment::Library => EnvironmentProfile {
                n_static: 10,
                static_to_los_db: -44.0,
                n_dynamic: 10,
                dynamic_to_los_db: -31.0,
                phase_jitter_std: 2.4,
                gain_jitter_std: 0.20,
            },
        }
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Numeric multipath parameters of an [`Environment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvironmentProfile {
    /// Number of static scatterers (furniture, walls).
    pub n_static: usize,
    /// Total static-scatterer power relative to the LoS, dB.
    pub static_to_los_db: f64,
    /// Number of dynamic scatterers (people, fans).
    pub n_dynamic: usize,
    /// Total dynamic-scatterer power relative to the LoS, dB.
    pub dynamic_to_los_db: f64,
    /// Per-packet phase jitter of each *dynamic* scatterer, radians (std
    /// dev). Values ≳ 2 rad make the dynamic population nearly zero-mean,
    /// so packet averaging suppresses it.
    pub phase_jitter_std: f64,
    /// Per-packet fractional gain jitter of each dynamic scatterer.
    pub gain_jitter_std: f64,
}

/// A single point scatterer: position, complex gain, and mobility class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Position in the deployment plane.
    pub position: Point,
    /// Static complex gain (relative to a unit-amplitude LoS).
    pub gain: Complex,
    /// Whether this scatterer jitters per packet.
    pub dynamic: bool,
}

/// A realised multipath channel: a fixed scatterer constellation for one
/// deployment, plus the jitter parameters that animate it per packet.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    scatterers: Vec<Scatterer>,
    phase_jitter_std: f64,
    gain_jitter_std: f64,
}

/// Per-packet multipath state: one complex jitter multiplier per scatterer.
///
/// Drawn once per packet and shared by every antenna and subcarrier of that
/// packet, as physical scatterer motion would be.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketJitter {
    multipliers: Vec<Complex>,
}

impl PacketJitter {
    /// An empty jitter state, used as the reusable scratch target of
    /// [`MultipathChannel::draw_jitter_into`].
    pub fn empty() -> PacketJitter {
        PacketJitter {
            // wlint: allow(hot-path-alloc) — Vec::new is capacity-0: no heap touch until first push; `empty` only backs a mem::replace swap
            multipliers: Vec::new(),
        }
    }
}

impl MultipathChannel {
    /// Realises a channel for an environment around a link from `tx` to the
    /// neighbourhood of `rx_center`, using `rng` for scatterer placement.
    ///
    /// Scatterers are placed uniformly in a rectangle extending 2 m beyond
    /// the link on each side, excluding a 30 cm corridor around the LoS so
    /// the direct path stays distinct.
    pub fn realize<R: Rng + ?Sized>(
        env: Environment,
        tx: Point,
        rx_center: Point,
        rng: &mut R,
    ) -> Self {
        let prof = env.profile();
        let min_x = tx.x.min(rx_center.x) - 2.0;
        let max_x = tx.x.max(rx_center.x) + 2.0;
        let span_y = 2.5;

        let total = prof.n_static + prof.n_dynamic;
        let mut scatterers = Vec::with_capacity(total);
        while scatterers.len() < total {
            let dynamic = scatterers.len() >= prof.n_static;
            // Dynamic power is heterogeneous: the first dynamic scatterer
            // (the person walking closest to the link) dominates, the rest
            // taper geometrically. This makes the per-subcarrier phase
            // variance frequency-selective — the structure good-subcarrier
            // selection exploits (paper Fig. 6).
            let per_amp = if dynamic {
                let idx = scatterers.len() - prof.n_static;
                let total_amp = 10f64.powf(prof.dynamic_to_los_db / 20.0);
                let weight: f64 = 0.5f64.powi(idx as i32);
                let norm: f64 = (0..prof.n_dynamic)
                    .map(|i| 0.25f64.powi(i as i32))
                    .sum::<f64>()
                    .sqrt();
                total_amp * weight / norm
            } else {
                10f64.powf(prof.static_to_los_db / 20.0) / (prof.n_static as f64).sqrt()
            };
            let x: f64 = rng.gen_range(min_x..max_x);
            let y: f64 = rng.gen_range(-span_y..span_y);
            // Keep scatterers off the LoS corridor.
            if y.abs() < 0.3 {
                continue;
            }
            // Rayleigh-like gain: complex Gaussian around the target power.
            let g = Complex::new(
                per_amp * rng.sample(StandardNormalShim) / std::f64::consts::SQRT_2,
                per_amp * rng.sample(StandardNormalShim) / std::f64::consts::SQRT_2,
            );
            scatterers.push(Scatterer {
                position: Point::new(x, y),
                gain: g,
                dynamic,
            });
        }
        MultipathChannel {
            scatterers,
            phase_jitter_std: prof.phase_jitter_std,
            gain_jitter_std: prof.gain_jitter_std,
        }
    }

    /// The realised scatterers.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Draws the per-packet jitter state: static scatterers stay put,
    /// dynamic ones get a fresh phase/gain perturbation.
    pub fn draw_jitter<R: Rng + ?Sized>(&self, rng: &mut R) -> PacketJitter {
        let mut jitter = PacketJitter {
            multipliers: Vec::new(),
        };
        self.draw_jitter_into(rng, &mut jitter);
        jitter
    }

    /// [`Self::draw_jitter`] into a caller-owned jitter state, reusing its
    /// multiplier buffer — the per-packet capture loop's allocation-free
    /// variant. RNG draw order is identical to `draw_jitter`.
    // wlint: hot
    pub fn draw_jitter_into<R: Rng + ?Sized>(&self, rng: &mut R, jitter: &mut PacketJitter) {
        jitter.multipliers.clear();
        jitter.multipliers.reserve(self.scatterers.len());
        for s in &self.scatterers {
            let m = if !s.dynamic {
                Complex::ONE
            } else {
                let g: f64 = 1.0 + self.gain_jitter_std * rng.sample(StandardNormalShim);
                let p: f64 = self.phase_jitter_std * rng.sample(StandardNormalShim);
                Complex::from_polar(g.max(0.0), p)
            };
            jitter.multipliers.push(m);
        }
    }

    /// A jitter state that leaves the channel static (for deterministic tests).
    pub fn frozen_jitter(&self) -> PacketJitter {
        PacketJitter {
            multipliers: vec![Complex::ONE; self.scatterers.len()],
        }
    }

    /// Sum of all scatterer contributions at one receive antenna and
    /// frequency, given this packet's jitter and a per-scatterer extra
    /// multiplier (e.g. through-target insertion on the scattered path).
    ///
    /// The phase of each path is `−β₀·(d_tx→s + d_s→rx)` with `β₀ = ω/c`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` was drawn from a channel with a different number
    /// of scatterers, or if `extra` (when `Some`) has the wrong length.
    pub fn response(
        &self,
        tx: Point,
        rx: Point,
        f: Hertz,
        jitter: &PacketJitter,
        extra: Option<&[Complex]>,
    ) -> Complex {
        assert_eq!(
            jitter.multipliers.len(),
            self.scatterers.len(),
            "jitter state does not match this channel"
        );
        if let Some(extra) = extra {
            assert_eq!(
                extra.len(),
                self.scatterers.len(),
                "extra multipliers must be per-scatterer"
            );
        }
        let beta0 = f.angular() / crate::constants::SPEED_OF_LIGHT;
        self.scatterers
            .iter()
            .enumerate()
            .map(|(n, s)| {
                let d = tx.distance_to(s.position).value() + s.position.distance_to(rx).value();
                let mut h = s.gain * Complex::cis(-beta0 * d) * jitter.multipliers[n];
                if let Some(extra) = extra {
                    h *= extra[n];
                }
                h
            })
            .sum()
    }

    /// Static per-scatterer path gains at one receive antenna and
    /// frequency: `gain_n · e^{−jβ₀·(d_tx→n + d_n→rx)}`. These depend only
    /// on the (fixed) geometry, so a caller generating many packets can
    /// compute them once and combine each packet's jitter with
    /// [`Self::response_from_gains`] — the distance and `cis` work per
    /// scatterer then drops out of the packet loop.
    pub fn path_gains(&self, tx: Point, rx: Point, f: Hertz) -> Vec<Complex> {
        let beta0 = f.angular() / crate::constants::SPEED_OF_LIGHT;
        self.scatterers
            .iter()
            .map(|s| {
                let d = tx.distance_to(s.position).value() + s.position.distance_to(rx).value();
                s.gain * Complex::cis(-beta0 * d)
            })
            .collect()
    }

    /// Combines cached [`Self::path_gains`] with one packet's jitter;
    /// equals `response(tx, rx, f, jitter, None)` for the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if `gains` or `jitter` were built from a channel with a
    /// different number of scatterers.
    pub fn response_from_gains(&self, gains: &[Complex], jitter: &PacketJitter) -> Complex {
        assert_eq!(
            gains.len(),
            self.scatterers.len(),
            "path gains do not match this channel"
        );
        assert_eq!(
            jitter.multipliers.len(),
            self.scatterers.len(),
            "jitter state does not match this channel"
        );
        gains
            .iter()
            .zip(&jitter.multipliers)
            .map(|(g, m)| *g * *m)
            .sum()
    }
}

/// Free-space LoS response (unit amplitude at the reference distance):
/// `e^{−jβ₀·d}·(d_ref/d)` so amplitude is normalised to 1 at `d = d_ref`.
pub fn los_response(tx: Point, rx: Point, f: Hertz, d_ref: Meters) -> Complex {
    let d = tx.distance_to(rx).value();
    let beta0 = f.angular() / crate::constants::SPEED_OF_LIGHT;
    Complex::cis(-beta0 * d) * (d_ref.value() / d)
}

/// Internal shim: sample a standard normal via Box–Muller so we only depend
/// on `rand`'s uniform sampling (`rand_distr` is not in the approved set).
mod rand_distr_shim {
    use rand::distributions::Distribution;
    use rand::Rng;

    /// Standard normal distribution N(0, 1).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardNormalShim;

    impl Distribution<f64> for StandardNormalShim {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller transform on two uniforms in (0, 1].
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }
}

pub use rand_distr_shim::StandardNormalShim as StandardNormal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const F: Hertz = Hertz(5.24e9);

    fn link() -> (Point, Point) {
        (Point::new(0.0, 0.0), Point::new(2.0, 0.0))
    }

    #[test]
    fn environments_order_by_richness() {
        let dynamic: Vec<f64> = Environment::ALL
            .iter()
            .map(|e| e.profile().dynamic_to_los_db)
            .collect();
        assert!(dynamic[0] < dynamic[1] && dynamic[1] < dynamic[2]);
        let static_db: Vec<f64> = Environment::ALL
            .iter()
            .map(|e| e.profile().static_to_los_db)
            .collect();
        assert!(static_db[0] < static_db[1] && static_db[1] < static_db[2]);
        let counts: Vec<usize> = Environment::ALL
            .iter()
            .map(|e| e.profile().n_static + e.profile().n_dynamic)
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn realize_places_requested_scatterers_off_los() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(7);
        let ch = MultipathChannel::realize(Environment::Library, tx, rx, &mut rng);
        let prof = Environment::Library.profile();
        assert_eq!(ch.scatterers().len(), prof.n_static + prof.n_dynamic);
        assert_eq!(
            ch.scatterers().iter().filter(|s| s.dynamic).count(),
            prof.n_dynamic
        );
        for s in ch.scatterers() {
            assert!(s.position.y.abs() >= 0.3, "scatterer on the LoS corridor");
        }
    }

    #[test]
    fn static_scatterers_never_jitter() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(11);
        let ch = MultipathChannel::realize(Environment::Lab, tx, rx, &mut rng);
        let j = ch.draw_jitter(&mut rng);
        for (s, m) in ch.scatterers().iter().zip(&j.multipliers) {
            if !s.dynamic {
                assert_eq!(*m, Complex::ONE);
            }
        }
    }

    #[test]
    fn multipath_power_tracks_environment() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(3);
        // Average response power over many realizations per environment.
        let mut avg = |env: Environment| -> f64 {
            let mut acc = 0.0;
            let n = 60;
            for _ in 0..n {
                let ch = MultipathChannel::realize(env, tx, rx, &mut rng);
                let j = ch.frozen_jitter();
                acc += ch.response(tx, rx, F, &j, None).norm_sqr();
            }
            acc / n as f64
        };
        let hall = avg(Environment::EmptyHall);
        let library = avg(Environment::Library);
        assert!(
            library > 3.0 * hall,
            "library ({library:.4}) should be much richer than hall ({hall:.4})"
        );
    }

    #[test]
    fn cached_path_gains_reproduce_direct_response() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(5);
        let ch = MultipathChannel::realize(Environment::Lab, tx, rx, &mut rng);
        let gains = ch.path_gains(tx, rx, F);
        for _ in 0..8 {
            let j = ch.draw_jitter(&mut rng);
            let direct = ch.response(tx, rx, F, &j, None);
            let cached = ch.response_from_gains(&gains, &j);
            assert!(
                (direct - cached).abs() < 1e-12,
                "cached gains diverge: {direct:?} vs {cached:?}"
            );
        }
    }

    #[test]
    fn frozen_jitter_makes_response_deterministic() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(1);
        let ch = MultipathChannel::realize(Environment::Lab, tx, rx, &mut rng);
        let j = ch.frozen_jitter();
        let a = ch.response(tx, rx, F, &j, None);
        let b = ch.response(tx, rx, F, &j, None);
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_perturbs_response_slightly() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(2);
        let ch = MultipathChannel::realize(Environment::Lab, tx, rx, &mut rng);
        let frozen = ch.frozen_jitter();
        let base = ch.response(tx, rx, F, &frozen, None);
        let jittered = ch.draw_jitter(&mut rng);
        let moved = ch.response(tx, rx, F, &jittered, None);
        let delta = (moved - base).abs();
        assert!(delta > 0.0, "jitter had no effect");
        assert!(delta < base.abs() + 0.5, "jitter unreasonably large");
    }

    #[test]
    fn response_differs_across_antennas_and_subcarriers() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(5);
        let ch = MultipathChannel::realize(Environment::Library, tx, rx, &mut rng);
        let j = ch.frozen_jitter();
        let h1 = ch.response(tx, Point::new(2.0, 0.0), F, &j, None);
        let h2 = ch.response(tx, Point::new(2.0, 0.029), F, &j, None);
        assert!((h1 - h2).abs() > 1e-6, "antennas should decorrelate");
        let f2 = Hertz(F.value() + 8.75e6);
        let h3 = ch.response(tx, Point::new(2.0, 0.0), f2, &j, None);
        assert!((h1 - h3).abs() > 1e-6, "subcarriers should decorrelate");
    }

    #[test]
    fn los_normalisation() {
        let (tx, rx) = link();
        let h = los_response(tx, rx, F, Meters(2.0));
        assert!((h.abs() - 1.0).abs() < 1e-12);
        let h_far = los_response(tx, Point::new(4.0, 0.0), F, Meters(2.0));
        assert!((h_far.abs() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "jitter state")]
    fn response_rejects_foreign_jitter() {
        let (tx, rx) = link();
        let mut rng = StdRng::seed_from_u64(9);
        let a = MultipathChannel::realize(Environment::EmptyHall, tx, rx, &mut rng);
        let b = MultipathChannel::realize(Environment::Library, tx, rx, &mut rng);
        let j = b.frozen_jitter();
        let _ = a.response(tx, rx, F, &j, None);
    }

    #[test]
    fn standard_normal_shim_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
