//! CSI packet and capture containers.
//!
//! A [`CsiPacket`] is what one received Wi-Fi frame yields: a complex
//! channel estimate per (receive antenna × subcarrier). A [`CsiCapture`] is
//! a time-ordered sequence of packets, the unit the WiMi pipeline consumes.

use crate::complex::Complex;

/// CSI for a single received packet: `n_antennas × n_subcarriers` complex
/// channel estimates, stored row-major by antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiPacket {
    n_antennas: usize,
    n_subcarriers: usize,
    data: Vec<Complex>,
}

impl CsiPacket {
    /// Creates a packet from row-major data (antenna-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n_antennas * n_subcarriers` or either
    /// dimension is zero.
    pub fn new(n_antennas: usize, n_subcarriers: usize, data: Vec<Complex>) -> Self {
        assert!(n_antennas > 0, "packet needs at least one antenna");
        assert!(n_subcarriers > 0, "packet needs at least one subcarrier");
        assert_eq!(
            data.len(),
            n_antennas * n_subcarriers,
            "CSI data length must equal antennas × subcarriers"
        );
        CsiPacket {
            n_antennas,
            n_subcarriers,
            data,
        }
    }

    /// Creates an all-zero packet (useful as an accumulator).
    pub fn zeros(n_antennas: usize, n_subcarriers: usize) -> Self {
        Self::new(
            n_antennas,
            n_subcarriers,
            vec![Complex::ZERO; n_antennas * n_subcarriers],
        )
    }

    /// Number of receive antennas.
    pub fn n_antennas(&self) -> usize {
        self.n_antennas
    }

    /// Number of subcarriers.
    pub fn n_subcarriers(&self) -> usize {
        self.n_subcarriers
    }

    /// Channel estimate for `(antenna, subcarrier)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, antenna: usize, subcarrier: usize) -> Complex {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        self.data[antenna * self.n_subcarriers + subcarrier]
    }

    /// Mutable access to one channel estimate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get_mut(&mut self, antenna: usize, subcarrier: usize) -> &mut Complex {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        &mut self.data[antenna * self.n_subcarriers + subcarrier]
    }

    /// The CSI row of one antenna across all subcarriers.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` is out of bounds.
    pub fn antenna_row(&self, antenna: usize) -> &[Complex] {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        let start = antenna * self.n_subcarriers;
        &self.data[start..start + self.n_subcarriers]
    }

    /// Amplitudes `|H|` of one antenna across all subcarriers.
    pub fn amplitudes(&self, antenna: usize) -> Vec<f64> {
        self.antenna_row(antenna).iter().map(|h| h.abs()).collect()
    }

    /// Phases `∠H` of one antenna across all subcarriers.
    pub fn phases(&self, antenna: usize) -> Vec<f64> {
        self.antenna_row(antenna).iter().map(|h| h.arg()).collect()
    }

    /// `true` when every channel estimate has finite real and imaginary
    /// parts.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|h| h.is_finite())
    }

    /// `true` when one antenna's row is identically zero — the signature
    /// of a dead RF chain.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` is out of bounds.
    pub fn antenna_is_zero(&self, antenna: usize) -> bool {
        self.antenna_row(antenna)
            .iter()
            .all(|h| *h == Complex::ZERO)
    }

    /// A copy holding only the antennas in `keep`, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or names an out-of-bounds antenna.
    pub fn select_antennas(&self, keep: &[usize]) -> CsiPacket {
        assert!(!keep.is_empty(), "must keep at least one antenna");
        let mut data = Vec::with_capacity(keep.len() * self.n_subcarriers);
        for &a in keep {
            data.extend_from_slice(self.antenna_row(a));
        }
        CsiPacket::new(keep.len(), self.n_subcarriers, data)
    }

    /// Cross-antenna conjugate product `H_a · H_b*` per subcarrier — its
    /// argument is the phase difference that cancels NIC-common offsets
    /// (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if either antenna index is out of bounds.
    pub fn cross_antenna(&self, a: usize, b: usize) -> Vec<Complex> {
        let ra = self.antenna_row(a).to_vec();
        let rb = self.antenna_row(b);
        ra.iter()
            .zip(rb.iter())
            .map(|(x, y)| *x * y.conj())
            .collect()
    }
}

/// A time-ordered CSI capture: every packet has identical dimensions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsiCapture {
    packets: Vec<CsiPacket>,
}

impl CsiCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        CsiCapture {
            packets: Vec::new(),
        }
    }

    /// Creates a capture from packets.
    ///
    /// # Panics
    ///
    /// Panics if packets have inconsistent dimensions.
    pub fn from_packets(packets: Vec<CsiPacket>) -> Self {
        if let Some(first) = packets.first() {
            let (a, s) = (first.n_antennas(), first.n_subcarriers());
            assert!(
                packets
                    .iter()
                    .all(|p| p.n_antennas() == a && p.n_subcarriers() == s),
                "all packets in a capture must share dimensions"
            );
        }
        CsiCapture { packets }
    }

    /// Appends a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet's dimensions differ from packets already held.
    pub fn push(&mut self, packet: CsiPacket) {
        if let Some(first) = self.packets.first() {
            assert_eq!(
                (first.n_antennas(), first.n_subcarriers()),
                (packet.n_antennas(), packet.n_subcarriers()),
                "packet dimensions must match the capture"
            );
        }
        self.packets.push(packet);
    }

    /// Number of packets captured.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` when no packets have been captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Packet at time index `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn packet(&self, m: usize) -> &CsiPacket {
        &self.packets[m]
    }

    /// Iterates over packets in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, CsiPacket> {
        self.packets.iter()
    }

    /// Number of antennas per packet (0 if empty).
    pub fn n_antennas(&self) -> usize {
        self.packets.first().map_or(0, |p| p.n_antennas())
    }

    /// Number of subcarriers per packet (0 if empty).
    pub fn n_subcarriers(&self) -> usize {
        self.packets.first().map_or(0, |p| p.n_subcarriers())
    }

    /// Amplitude time series `|H_m|` of one (antenna, subcarrier) across
    /// all packets.
    pub fn amplitude_series(&self, antenna: usize, subcarrier: usize) -> Vec<f64> {
        self.packets
            .iter()
            .map(|p| p.get(antenna, subcarrier).abs())
            .collect()
    }

    /// Phase time series `∠H_m` of one (antenna, subcarrier).
    pub fn phase_series(&self, antenna: usize, subcarrier: usize) -> Vec<f64> {
        self.packets
            .iter()
            .map(|p| p.get(antenna, subcarrier).arg())
            .collect()
    }

    /// Phase-difference time series `∠(H_a·H_b*)` between two antennas on
    /// one subcarrier across all packets.
    pub fn phase_difference_series(&self, a: usize, b: usize, subcarrier: usize) -> Vec<f64> {
        self.packets
            .iter()
            .map(|p| (p.get(a, subcarrier) * p.get(b, subcarrier).conj()).arg())
            .collect()
    }

    /// A copy holding only the antennas in `keep`, in the given order
    /// (empty captures pass through unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or names an out-of-bounds antenna while
    /// the capture is non-empty.
    pub fn select_antennas(&self, keep: &[usize]) -> CsiCapture {
        CsiCapture {
            packets: self
                .packets
                .iter()
                .map(|p| p.select_antennas(keep))
                .collect(),
        }
    }

    /// Amplitude-ratio time series `|H_a|/|H_b|` on one subcarrier.
    ///
    /// Ratios with a zero denominator are reported as `f64::INFINITY`.
    pub fn amplitude_ratio_series(&self, a: usize, b: usize, subcarrier: usize) -> Vec<f64> {
        self.packets
            .iter()
            .map(|p| {
                let num = p.get(a, subcarrier).abs();
                let den = p.get(b, subcarrier).abs();
                // Magnitudes are non-negative, so `<= 0.0` is the zero test.
                if den <= 0.0 {
                    f64::INFINITY
                } else {
                    num / den
                }
            })
            .collect()
    }
}

impl FromIterator<CsiPacket> for CsiCapture {
    fn from_iter<I: IntoIterator<Item = CsiPacket>>(iter: I) -> Self {
        CsiCapture::from_packets(iter.into_iter().collect())
    }
}

impl Extend<CsiPacket> for CsiCapture {
    fn extend<I: IntoIterator<Item = CsiPacket>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

/// A source of CSI captures.
///
/// The simulator implements this; a driver for real hardware (e.g. the
/// Intel 5300 CSI tool) could implement it too, making the WiMi pipeline
/// hardware-agnostic.
pub trait CsiSource {
    /// Captures `n_packets` consecutive packets of CSI.
    fn capture(&mut self, n_packets: usize) -> CsiCapture;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(n_ant: usize, n_sub: usize, seed: f64) -> CsiPacket {
        let data = (0..n_ant * n_sub)
            .map(|i| Complex::from_polar(1.0 + i as f64 * 0.1, seed + i as f64))
            .collect();
        CsiPacket::new(n_ant, n_sub, data)
    }

    #[test]
    fn packet_indexing_is_row_major() {
        let p = packet(2, 3, 0.0);
        assert_eq!(p.get(1, 0), p.antenna_row(1)[0]);
        assert_eq!(p.antenna_row(0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "antennas × subcarriers")]
    fn packet_rejects_bad_length() {
        let _ = CsiPacket::new(2, 3, vec![Complex::ZERO; 5]);
    }

    #[test]
    #[should_panic(expected = "antenna index")]
    fn packet_rejects_bad_antenna() {
        let p = packet(2, 3, 0.0);
        let _ = p.get(2, 0);
    }

    #[test]
    fn amplitudes_and_phases_match_complex_values() {
        let p = packet(1, 4, 0.5);
        let amps = p.amplitudes(0);
        let phases = p.phases(0);
        for k in 0..4 {
            assert!((amps[k] - p.get(0, k).abs()).abs() < 1e-15);
            assert!((phases[k] - p.get(0, k).arg()).abs() < 1e-15);
        }
    }

    #[test]
    fn cross_antenna_cancels_common_phase() {
        // Two antennas with identical per-subcarrier phase plus a common
        // random rotation: the conjugate product's phase must be zero.
        let common = Complex::cis(2.1);
        let data = vec![
            common * Complex::from_polar(1.0, 0.3),
            common * Complex::from_polar(2.0, 0.3),
        ];
        let p = CsiPacket::new(2, 1, data);
        let x = p.cross_antenna(0, 1);
        assert!(x[0].arg().abs() < 1e-12);
    }

    #[test]
    fn capture_series_extraction() {
        let cap: CsiCapture = (0..5).map(|m| packet(2, 3, m as f64)).collect();
        assert_eq!(cap.len(), 5);
        assert_eq!(cap.n_antennas(), 2);
        assert_eq!(cap.n_subcarriers(), 3);
        assert_eq!(cap.amplitude_series(0, 1).len(), 5);
        assert_eq!(cap.phase_series(1, 2).len(), 5);
        assert_eq!(cap.phase_difference_series(0, 1, 0).len(), 5);
        assert_eq!(cap.amplitude_ratio_series(0, 1, 0).len(), 5);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn capture_rejects_mismatched_packets() {
        let mut cap = CsiCapture::new();
        cap.push(packet(2, 3, 0.0));
        cap.push(packet(2, 4, 0.0));
    }

    #[test]
    fn amplitude_ratio_handles_zero_denominator() {
        let p = CsiPacket::new(2, 1, vec![Complex::ONE, Complex::ZERO]);
        let cap = CsiCapture::from_packets(vec![p]);
        assert!(cap.amplitude_ratio_series(0, 1, 0)[0].is_infinite());
    }

    #[test]
    fn zeros_packet() {
        let p = CsiPacket::zeros(3, 30);
        assert_eq!(p.n_antennas(), 3);
        assert_eq!(p.n_subcarriers(), 30);
        assert_eq!(p.get(2, 29), Complex::ZERO);
    }

    #[test]
    fn extend_and_empty() {
        let mut cap = CsiCapture::new();
        assert!(cap.is_empty());
        cap.extend((0..3).map(|m| packet(1, 2, m as f64)));
        assert_eq!(cap.len(), 3);
    }
}
