//! CSI packet and capture containers.
//!
//! A [`CsiPacket`] is what one received Wi-Fi frame yields: a complex
//! channel estimate per (receive antenna × subcarrier). A [`CsiCapture`] is
//! a time-ordered sequence of packets, the unit the WiMi pipeline consumes.
//!
//! # Data layout
//!
//! `CsiCapture` stores its packets structure-of-arrays: two flat `f64`
//! planes (real and imaginary) indexed `(m · n_antennas + a) ·
//! n_subcarriers + k` for packet `m`, antenna `a`, subcarrier `k`. One
//! packet's antenna row is therefore a contiguous lane of `n_subcarriers`
//! elements in each plane — the unit the simulator writes and the hardware
//! and fault injectors mutate — while a per-packet time series strides by
//! `n_antennas · n_subcarriers`. [`CsiPacket`] keeps the original
//! array-of-structs `Vec<Complex>` shape for single-frame construction and
//! as the reference layout the equivalence tests compare against.

use crate::complex::Complex;

/// CSI for a single received packet: `n_antennas × n_subcarriers` complex
/// channel estimates, stored row-major by antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiPacket {
    n_antennas: usize,
    n_subcarriers: usize,
    data: Vec<Complex>,
}

impl CsiPacket {
    /// Creates a packet from row-major data (antenna-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n_antennas * n_subcarriers` or either
    /// dimension is zero.
    pub fn new(n_antennas: usize, n_subcarriers: usize, data: Vec<Complex>) -> Self {
        assert!(n_antennas > 0, "packet needs at least one antenna");
        assert!(n_subcarriers > 0, "packet needs at least one subcarrier");
        assert_eq!(
            data.len(),
            n_antennas * n_subcarriers,
            "CSI data length must equal antennas × subcarriers"
        );
        CsiPacket {
            n_antennas,
            n_subcarriers,
            data,
        }
    }

    /// Creates an all-zero packet (useful as an accumulator).
    pub fn zeros(n_antennas: usize, n_subcarriers: usize) -> Self {
        Self::new(
            n_antennas,
            n_subcarriers,
            vec![Complex::ZERO; n_antennas * n_subcarriers],
        )
    }

    /// Number of receive antennas.
    pub fn n_antennas(&self) -> usize {
        self.n_antennas
    }

    /// Number of subcarriers.
    pub fn n_subcarriers(&self) -> usize {
        self.n_subcarriers
    }

    /// Channel estimate for `(antenna, subcarrier)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, antenna: usize, subcarrier: usize) -> Complex {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        self.data[antenna * self.n_subcarriers + subcarrier]
    }

    /// Mutable access to one channel estimate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get_mut(&mut self, antenna: usize, subcarrier: usize) -> &mut Complex {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        &mut self.data[antenna * self.n_subcarriers + subcarrier]
    }

    /// The CSI row of one antenna across all subcarriers.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` is out of bounds.
    pub fn antenna_row(&self, antenna: usize) -> &[Complex] {
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        let start = antenna * self.n_subcarriers;
        &self.data[start..start + self.n_subcarriers]
    }

    /// Amplitudes `|H|` of one antenna across all subcarriers.
    pub fn amplitudes(&self, antenna: usize) -> Vec<f64> {
        self.antenna_row(antenna).iter().map(|h| h.abs()).collect()
    }

    /// Phases `∠H` of one antenna across all subcarriers.
    pub fn phases(&self, antenna: usize) -> Vec<f64> {
        self.antenna_row(antenna).iter().map(|h| h.arg()).collect()
    }

    /// `true` when every channel estimate has finite real and imaginary
    /// parts.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|h| h.is_finite())
    }

    /// `true` when one antenna's row is identically zero — the signature
    /// of a dead RF chain.
    ///
    /// # Panics
    ///
    /// Panics if `antenna` is out of bounds.
    pub fn antenna_is_zero(&self, antenna: usize) -> bool {
        self.antenna_row(antenna)
            .iter()
            .all(|h| *h == Complex::ZERO)
    }

    /// A copy holding only the antennas in `keep`, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or names an out-of-bounds antenna.
    pub fn select_antennas(&self, keep: &[usize]) -> CsiPacket {
        assert!(!keep.is_empty(), "must keep at least one antenna");
        let mut data = Vec::with_capacity(keep.len() * self.n_subcarriers);
        for &a in keep {
            data.extend_from_slice(self.antenna_row(a));
        }
        CsiPacket::new(keep.len(), self.n_subcarriers, data)
    }

    /// Cross-antenna conjugate product `H_a · H_b*` per subcarrier — its
    /// argument is the phase difference that cancels NIC-common offsets
    /// (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if either antenna index is out of bounds.
    pub fn cross_antenna(&self, a: usize, b: usize) -> Vec<Complex> {
        let ra = self.antenna_row(a).to_vec();
        let rb = self.antenna_row(b);
        ra.iter()
            .zip(rb.iter())
            .map(|(x, y)| *x * y.conj())
            .collect()
    }
}

/// A time-ordered CSI capture: every packet has identical dimensions,
/// stored as flat structure-of-arrays real/imaginary `f64` planes (see the
/// module docs for the layout).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsiCapture {
    n_packets: usize,
    n_antennas: usize,
    n_subcarriers: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl CsiCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        CsiCapture::default()
    }

    /// Creates an all-zero capture of the given dimensions, ready for the
    /// simulator to fill packet by packet.
    ///
    /// # Panics
    ///
    /// Panics if `n_packets > 0` while either per-packet dimension is zero.
    pub fn zeros(n_packets: usize, n_antennas: usize, n_subcarriers: usize) -> Self {
        // Zero packets is the canonical empty capture regardless of the
        // requested per-packet dimensions, so `zeros(0, a, k) == new()`.
        if n_packets == 0 {
            return CsiCapture::new();
        }
        assert!(n_antennas > 0, "packet needs at least one antenna");
        assert!(n_subcarriers > 0, "packet needs at least one subcarrier");
        let len = n_packets * n_antennas * n_subcarriers;
        CsiCapture {
            n_packets,
            n_antennas,
            n_subcarriers,
            re: vec![0.0; len],
            im: vec![0.0; len],
        }
    }

    /// Creates a capture from packets.
    ///
    /// # Panics
    ///
    /// Panics if packets have inconsistent dimensions.
    pub fn from_packets(packets: Vec<CsiPacket>) -> Self {
        let mut cap = CsiCapture::new();
        for p in packets {
            cap.push(p);
        }
        cap
    }

    /// Appends a packet (copying it into the flat planes).
    ///
    /// # Panics
    ///
    /// Panics if the packet's dimensions differ from packets already held.
    pub fn push(&mut self, packet: CsiPacket) {
        if self.n_packets == 0 {
            self.n_antennas = packet.n_antennas();
            self.n_subcarriers = packet.n_subcarriers();
        } else {
            assert_eq!(
                (self.n_antennas, self.n_subcarriers),
                (packet.n_antennas(), packet.n_subcarriers()),
                "packet dimensions must match the capture"
            );
        }
        self.re.reserve(packet.data.len());
        self.im.reserve(packet.data.len());
        for h in &packet.data {
            self.re.push(h.re);
            self.im.push(h.im);
        }
        self.n_packets += 1;
    }

    /// Number of packets captured.
    pub fn len(&self) -> usize {
        self.n_packets
    }

    /// Returns `true` when no packets have been captured.
    pub fn is_empty(&self) -> bool {
        self.n_packets == 0
    }

    /// Number of antennas per packet (0 if empty).
    pub fn n_antennas(&self) -> usize {
        if self.n_packets == 0 {
            0
        } else {
            self.n_antennas
        }
    }

    /// Number of subcarriers per packet (0 if empty).
    pub fn n_subcarriers(&self) -> usize {
        if self.n_packets == 0 {
            0
        } else {
            self.n_subcarriers
        }
    }

    /// Flat plane index of `(packet, antenna, subcarrier)`.
    #[inline]
    fn idx(&self, m: usize, a: usize, k: usize) -> usize {
        (m * self.n_antennas + a) * self.n_subcarriers + k
    }

    /// Channel estimate for `(packet, antenna, subcarrier)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn get(&self, m: usize, antenna: usize, subcarrier: usize) -> Complex {
        assert!(m < self.n_packets, "packet index out of bounds");
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        let i = self.idx(m, antenna, subcarrier);
        Complex::new(self.re[i], self.im[i])
    }

    /// Packet at time index `m`, materialised into the array-of-structs
    /// [`CsiPacket`] shape (a copy — intended for tests and cold paths;
    /// hot paths read the planes via [`CsiCapture::packet_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn packet(&self, m: usize) -> CsiPacket {
        assert!(m < self.n_packets, "packet index out of bounds");
        let start = self.idx(m, 0, 0);
        let len = self.n_antennas * self.n_subcarriers;
        let data: Vec<Complex> = self.re[start..start + len]
            .iter()
            .zip(&self.im[start..start + len])
            .map(|(&re, &im)| Complex::new(re, im))
            .collect();
        CsiPacket::new(self.n_antennas, self.n_subcarriers, data)
    }

    /// Iterates over materialised packets in time order (copies; see
    /// [`CsiCapture::packet`]).
    pub fn packets(&self) -> impl Iterator<Item = CsiPacket> + '_ {
        (0..self.n_packets).map(|m| self.packet(m))
    }

    /// One antenna's contiguous subcarrier lane of packet `m`, as
    /// `(re, im)` plane slices of length `n_subcarriers`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn packet_row(&self, m: usize, antenna: usize) -> (&[f64], &[f64]) {
        assert!(m < self.n_packets, "packet index out of bounds");
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        let start = self.idx(m, antenna, 0);
        let end = start + self.n_subcarriers;
        (&self.re[start..end], &self.im[start..end])
    }

    /// Mutable access to one whole packet as `(re, im)` plane slices of
    /// length `n_antennas · n_subcarriers` (antenna-major, matching
    /// [`CsiPacket`] row order).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    #[inline]
    pub fn packet_planes_mut(&mut self, m: usize) -> (&mut [f64], &mut [f64]) {
        assert!(m < self.n_packets, "packet index out of bounds");
        let start = self.idx(m, 0, 0);
        let end = start + self.n_antennas * self.n_subcarriers;
        (&mut self.re[start..end], &mut self.im[start..end])
    }

    /// The whole capture's `(re, im)` planes.
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutable access to the whole capture's `(re, im)` planes.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// `true` when every channel estimate of packet `m` has finite real
    /// and imaginary parts.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn packet_is_finite(&self, m: usize) -> bool {
        assert!(m < self.n_packets, "packet index out of bounds");
        let start = self.idx(m, 0, 0);
        let end = start + self.n_antennas * self.n_subcarriers;
        self.re[start..end].iter().all(|x| x.is_finite())
            && self.im[start..end].iter().all(|x| x.is_finite())
    }

    /// `true` when antenna `a`'s row of packet `m` is identically zero —
    /// the signature of a dead RF chain.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn antenna_row_is_zero(&self, m: usize, antenna: usize) -> bool {
        let (re, im) = self.packet_row(m, antenna);
        re.iter()
            .zip(im)
            .all(|(&r, &i)| Complex::new(r, i) == Complex::ZERO)
    }

    /// `true` when any channel estimate of packet `m` is exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn packet_has_zero(&self, m: usize) -> bool {
        assert!(m < self.n_packets, "packet index out of bounds");
        let start = self.idx(m, 0, 0);
        let end = start + self.n_antennas * self.n_subcarriers;
        self.re[start..end]
            .iter()
            .zip(&self.im[start..end])
            .any(|(&re, &im)| Complex::new(re, im).norm_sqr() <= 0.0)
    }

    /// Amplitude time series `|H_m|` of one (antenna, subcarrier) across
    /// all packets.
    pub fn amplitude_series(&self, antenna: usize, subcarrier: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.amplitude_series_into(antenna, subcarrier, &mut out);
        out
    }

    /// [`CsiCapture::amplitude_series`] into a caller-provided buffer
    /// (cleared first) — the hot-path variant that avoids an allocation
    /// per series.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds while the capture is
    /// non-empty.
    pub fn amplitude_series_into(&self, antenna: usize, subcarrier: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.n_packets);
        if self.n_packets == 0 {
            return;
        }
        assert!(antenna < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        let stride = self.n_antennas * self.n_subcarriers;
        let mut i = self.idx(0, antenna, subcarrier);
        for _ in 0..self.n_packets {
            out.push(Complex::new(self.re[i], self.im[i]).abs());
            i += stride;
        }
    }

    /// Phase time series `∠H_m` of one (antenna, subcarrier).
    pub fn phase_series(&self, antenna: usize, subcarrier: usize) -> Vec<f64> {
        (0..self.n_packets)
            .map(|m| self.get(m, antenna, subcarrier).arg())
            .collect()
    }

    /// Phase-difference time series `∠(H_a·H_b*)` between two antennas on
    /// one subcarrier across all packets.
    pub fn phase_difference_series(&self, a: usize, b: usize, subcarrier: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.phase_difference_series_into(a, b, subcarrier, &mut out);
        out
    }

    /// [`CsiCapture::phase_difference_series`] into a caller-provided
    /// buffer (cleared first) — the hot-path variant that avoids an
    /// allocation per series.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds while the capture is
    /// non-empty.
    pub fn phase_difference_series_into(
        &self,
        a: usize,
        b: usize,
        subcarrier: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(self.n_packets);
        if self.n_packets == 0 {
            return;
        }
        assert!(a < self.n_antennas, "antenna index out of bounds");
        assert!(b < self.n_antennas, "antenna index out of bounds");
        assert!(
            subcarrier < self.n_subcarriers,
            "subcarrier index out of bounds"
        );
        let stride = self.n_antennas * self.n_subcarriers;
        let mut ia = self.idx(0, a, subcarrier);
        let mut ib = self.idx(0, b, subcarrier);
        for _ in 0..self.n_packets {
            let ha = Complex::new(self.re[ia], self.im[ia]);
            let hb = Complex::new(self.re[ib], self.im[ib]);
            out.push((ha * hb.conj()).arg());
            ia += stride;
            ib += stride;
        }
    }

    /// A copy holding only the antennas in `keep`, in the given order
    /// (empty captures pass through unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or names an out-of-bounds antenna while
    /// the capture is non-empty.
    pub fn select_antennas(&self, keep: &[usize]) -> CsiCapture {
        if self.n_packets == 0 {
            return self.clone();
        }
        let all = vec![true; self.n_packets];
        self.select_packets_antennas(&all, keep)
    }

    /// A copy holding only the packets where `keep_packets` is `true` and
    /// only the antennas in `keep_antennas`, in the given order — the
    /// one-pass rebuild the screening stage uses.
    ///
    /// # Panics
    ///
    /// Panics if `keep_packets.len() != self.len()`, `keep_antennas` is
    /// empty, or an antenna index is out of bounds.
    pub fn select_packets_antennas(
        &self,
        keep_packets: &[bool],
        keep_antennas: &[usize],
    ) -> CsiCapture {
        assert_eq!(
            keep_packets.len(),
            self.n_packets,
            "keep mask length must equal packet count"
        );
        assert!(!keep_antennas.is_empty(), "must keep at least one antenna");
        for &a in keep_antennas {
            assert!(a < self.n_antennas, "antenna index out of bounds");
        }
        let kept = keep_packets.iter().filter(|&&k| k).count();
        let n_sub = self.n_subcarriers;
        let mut re = Vec::with_capacity(kept * keep_antennas.len() * n_sub);
        let mut im = Vec::with_capacity(kept * keep_antennas.len() * n_sub);
        for (m, &keep) in keep_packets.iter().enumerate() {
            if !keep {
                continue;
            }
            for &a in keep_antennas {
                let (r, i) = self.packet_row(m, a);
                re.extend_from_slice(r);
                im.extend_from_slice(i);
            }
        }
        CsiCapture {
            n_packets: kept,
            n_antennas: keep_antennas.len(),
            n_subcarriers: n_sub,
            re,
            im,
        }
    }

    /// Amplitude-ratio time series `|H_a|/|H_b|` on one subcarrier.
    ///
    /// Ratios with a zero denominator are reported as `f64::INFINITY`.
    pub fn amplitude_ratio_series(&self, a: usize, b: usize, subcarrier: usize) -> Vec<f64> {
        (0..self.n_packets)
            .map(|m| {
                let num = self.get(m, a, subcarrier).abs();
                let den = self.get(m, b, subcarrier).abs();
                // Magnitudes are non-negative, so `<= 0.0` is the zero test.
                if den <= 0.0 {
                    f64::INFINITY
                } else {
                    num / den
                }
            })
            .collect()
    }
}

impl FromIterator<CsiPacket> for CsiCapture {
    fn from_iter<I: IntoIterator<Item = CsiPacket>>(iter: I) -> Self {
        let mut cap = CsiCapture::new();
        for p in iter {
            cap.push(p);
        }
        cap
    }
}

impl Extend<CsiPacket> for CsiCapture {
    fn extend<I: IntoIterator<Item = CsiPacket>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

/// A source of CSI captures.
///
/// The simulator implements this; a driver for real hardware (e.g. the
/// Intel 5300 CSI tool) could implement it too, making the WiMi pipeline
/// hardware-agnostic.
pub trait CsiSource {
    /// Captures `n_packets` consecutive packets of CSI.
    fn capture(&mut self, n_packets: usize) -> CsiCapture;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(n_ant: usize, n_sub: usize, seed: f64) -> CsiPacket {
        let data = (0..n_ant * n_sub)
            .map(|i| Complex::from_polar(1.0 + i as f64 * 0.1, seed + i as f64))
            .collect();
        CsiPacket::new(n_ant, n_sub, data)
    }

    #[test]
    fn packet_indexing_is_row_major() {
        let p = packet(2, 3, 0.0);
        assert_eq!(p.get(1, 0), p.antenna_row(1)[0]);
        assert_eq!(p.antenna_row(0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "antennas × subcarriers")]
    fn packet_rejects_bad_length() {
        let _ = CsiPacket::new(2, 3, vec![Complex::ZERO; 5]);
    }

    #[test]
    #[should_panic(expected = "antenna index")]
    fn packet_rejects_bad_antenna() {
        let p = packet(2, 3, 0.0);
        let _ = p.get(2, 0);
    }

    #[test]
    fn amplitudes_and_phases_match_complex_values() {
        let p = packet(1, 4, 0.5);
        let amps = p.amplitudes(0);
        let phases = p.phases(0);
        for k in 0..4 {
            assert!((amps[k] - p.get(0, k).abs()).abs() < 1e-15);
            assert!((phases[k] - p.get(0, k).arg()).abs() < 1e-15);
        }
    }

    #[test]
    fn cross_antenna_cancels_common_phase() {
        // Two antennas with identical per-subcarrier phase plus a common
        // random rotation: the conjugate product's phase must be zero.
        let common = Complex::cis(2.1);
        let data = vec![
            common * Complex::from_polar(1.0, 0.3),
            common * Complex::from_polar(2.0, 0.3),
        ];
        let p = CsiPacket::new(2, 1, data);
        let x = p.cross_antenna(0, 1);
        assert!(x[0].arg().abs() < 1e-12);
    }

    #[test]
    fn capture_series_extraction() {
        let cap: CsiCapture = (0..5).map(|m| packet(2, 3, m as f64)).collect();
        assert_eq!(cap.len(), 5);
        assert_eq!(cap.n_antennas(), 2);
        assert_eq!(cap.n_subcarriers(), 3);
        assert_eq!(cap.amplitude_series(0, 1).len(), 5);
        assert_eq!(cap.phase_series(1, 2).len(), 5);
        assert_eq!(cap.phase_difference_series(0, 1, 0).len(), 5);
        assert_eq!(cap.amplitude_ratio_series(0, 1, 0).len(), 5);
    }

    #[test]
    fn soa_roundtrip_is_exact() {
        // Packets in → planes → packets out must be bit-for-bit identical,
        // and every capture accessor must agree with the packet-layout
        // reference computation.
        let originals: Vec<CsiPacket> = (0..4).map(|m| packet(3, 5, m as f64 * 0.7)).collect();
        let cap = CsiCapture::from_packets(originals.clone());
        for (m, p) in originals.iter().enumerate() {
            assert_eq!(&cap.packet(m), p);
            for a in 0..3 {
                for k in 0..5 {
                    assert_eq!(cap.get(m, a, k), p.get(a, k));
                }
                let (re, im) = cap.packet_row(m, a);
                for (k, h) in p.antenna_row(a).iter().enumerate() {
                    assert_eq!(re[k], h.re);
                    assert_eq!(im[k], h.im);
                }
            }
        }
        for a in 0..3 {
            for k in 0..5 {
                let reference: Vec<f64> = originals.iter().map(|p| p.get(a, k).abs()).collect();
                assert_eq!(cap.amplitude_series(a, k), reference);
            }
        }
        let reference: Vec<f64> = originals
            .iter()
            .map(|p| (p.get(0, 2) * p.get(1, 2).conj()).arg())
            .collect();
        assert_eq!(cap.phase_difference_series(0, 1, 2), reference);
    }

    #[test]
    fn series_into_matches_allocating_variant() {
        let cap: CsiCapture = (0..6).map(|m| packet(2, 4, m as f64)).collect();
        let mut buf = vec![1.0; 3]; // pre-dirtied: _into must clear it
        cap.amplitude_series_into(1, 2, &mut buf);
        assert_eq!(buf, cap.amplitude_series(1, 2));
        cap.phase_difference_series_into(0, 1, 3, &mut buf);
        assert_eq!(buf, cap.phase_difference_series(0, 1, 3));
    }

    #[test]
    fn select_packets_antennas_filters_both_axes() {
        let cap: CsiCapture = (0..4).map(|m| packet(3, 2, m as f64)).collect();
        let out = cap.select_packets_antennas(&[true, false, true, false], &[2, 0]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.n_antennas(), 2);
        assert_eq!(out.get(0, 0, 1), cap.get(0, 2, 1));
        assert_eq!(out.get(1, 1, 0), cap.get(2, 0, 0));
    }

    #[test]
    fn zero_scans_match_packet_layout() {
        let mut p0 = packet(2, 3, 0.0);
        for k in 0..3 {
            *p0.get_mut(1, k) = Complex::ZERO;
        }
        let mut p1 = packet(2, 3, 1.0);
        *p1.get_mut(0, 1) = Complex::new(f64::NAN, 0.0);
        let cap = CsiCapture::from_packets(vec![p0.clone(), p1.clone()]);
        assert_eq!(cap.packet_is_finite(0), p0.is_finite());
        assert_eq!(cap.packet_is_finite(1), p1.is_finite());
        assert_eq!(cap.antenna_row_is_zero(0, 1), p0.antenna_is_zero(1));
        assert!(!cap.antenna_row_is_zero(1, 0));
        assert!(cap.packet_has_zero(0));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn capture_rejects_mismatched_packets() {
        let mut cap = CsiCapture::new();
        cap.push(packet(2, 3, 0.0));
        cap.push(packet(2, 4, 0.0));
    }

    #[test]
    fn amplitude_ratio_handles_zero_denominator() {
        let p = CsiPacket::new(2, 1, vec![Complex::ONE, Complex::ZERO]);
        let cap = CsiCapture::from_packets(vec![p]);
        assert!(cap.amplitude_ratio_series(0, 1, 0)[0].is_infinite());
    }

    #[test]
    fn zeros_packet() {
        let p = CsiPacket::zeros(3, 30);
        assert_eq!(p.n_antennas(), 3);
        assert_eq!(p.n_subcarriers(), 30);
        assert_eq!(p.get(2, 29), Complex::ZERO);
    }

    #[test]
    fn zeros_capture() {
        let cap = CsiCapture::zeros(4, 3, 30);
        assert_eq!(cap.len(), 4);
        assert_eq!(cap.n_antennas(), 3);
        assert_eq!(cap.n_subcarriers(), 30);
        assert_eq!(cap.get(3, 2, 29), Complex::ZERO);
    }

    #[test]
    fn extend_and_empty() {
        let mut cap = CsiCapture::new();
        assert!(cap.is_empty());
        cap.extend((0..3).map(|m| packet(1, 2, m as f64)));
        assert_eq!(cap.len(), 3);
    }
}
