//! # wimi-phy
//!
//! Wi-Fi PHY, channel, material and hardware-impairment simulator — the
//! substrate of the WiMi reproduction (Feng et al., ICDCS 2019).
//!
//! The paper's evaluation uses an Intel 5300 NIC measuring real liquids;
//! this crate substitutes that hardware with a physics-grounded simulator:
//!
//! - [`material`]: Debye dielectric models for the ten paper liquids and
//!   the propagation constants (α, β) the WiMi feature is built on.
//! - [`geometry`]: the link/beaker layout producing the per-antenna chord
//!   lengths `D_i`.
//! - [`channel`]: environment-dependent indoor multipath.
//! - [`hardware`]: CFO/SFO/PBD phase corruption, AGC wobble, impulse
//!   noise, outliers and Intel 5300 quantisation.
//! - [`scenario`]: the end-to-end [`scenario::Simulator`], a
//!   [`csi::CsiSource`] producing baseline/target [`csi::CsiCapture`]s.
//!
//! # Quick example
//!
//! ```
//! use wimi_phy::csi::CsiSource;
//! use wimi_phy::material::Liquid;
//! use wimi_phy::scenario::{Scenario, Simulator};
//!
//! let mut sim = Simulator::new(Scenario::builder().build(), 7);
//! let baseline = sim.capture(20);
//! sim.set_liquid(Some(Liquid::Pepsi.into()));
//! let target = sim.capture(20);
//! assert_eq!(baseline.n_subcarriers(), target.n_subcarriers());
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod complex;
pub mod constants;
pub mod csi;
pub mod fault;
pub mod geometry;
pub mod hardware;
pub mod material;
pub mod ofdm;
pub mod scenario;
pub mod units;

pub use complex::Complex;
pub use csi::{CsiCapture, CsiPacket, CsiSource};
pub use fault::FaultPlan;
pub use scenario::{Beaker, LiquidSpec, Scenario, Simulator};
