//! 802.11n OFDM channel layout and the Intel 5300 CSI subcarrier map.

use crate::units::Hertz;

/// 802.11n subcarrier spacing for 20 MHz channels: 312.5 kHz.
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// The 30 subcarrier indices reported by the Intel 5300 CSI tool for a
/// 20 MHz channel (grouping Ng = 2, per the 802.11n CSI feedback format).
pub const INTEL5300_SUBCARRIERS_20MHZ: [i32; 30] = [
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1, 1, 3, 5, 7, 9, 11, 13,
    15, 17, 19, 21, 23, 25, 27, 28,
];

/// An OFDM channel: centre frequency plus the set of reported subcarriers.
///
/// # Examples
///
/// ```
/// use wimi_phy::ofdm::ChannelSpec;
///
/// let ch = ChannelSpec::intel5300_20mhz_5ghz();
/// assert_eq!(ch.num_subcarriers(), 30);
/// // Subcarrier frequencies straddle the channel centre.
/// assert!(ch.subcarrier_freq(0).value() < ch.center.value());
/// assert!(ch.subcarrier_freq(29).value() > ch.center.value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// Channel centre frequency.
    pub center: Hertz,
    /// Subcarrier indices relative to the centre (index × 312.5 kHz offset).
    pub subcarrier_indices: Vec<i32>,
}

impl ChannelSpec {
    /// The default WiMi configuration: 802.11n channel at 5.24 GHz
    /// (channel 48), 20 MHz wide, with the Intel 5300's 30 subcarriers.
    pub fn intel5300_20mhz_5ghz() -> Self {
        ChannelSpec {
            center: Hertz::from_ghz(5.24),
            subcarrier_indices: INTEL5300_SUBCARRIERS_20MHZ.to_vec(),
        }
    }

    /// A custom channel.
    ///
    /// # Panics
    ///
    /// Panics if the centre frequency is not positive or no subcarriers are
    /// given.
    pub fn new(center: Hertz, subcarrier_indices: Vec<i32>) -> Self {
        assert!(center.value() > 0.0, "centre frequency must be positive");
        assert!(
            !subcarrier_indices.is_empty(),
            "channel must have at least one subcarrier"
        );
        ChannelSpec {
            center,
            subcarrier_indices,
        }
    }

    /// Number of reported subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.subcarrier_indices.len()
    }

    /// Absolute frequency of the `k`-th reported subcarrier.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn subcarrier_freq(&self, k: usize) -> Hertz {
        let idx = self.subcarrier_indices[k];
        Hertz(self.center.value() + idx as f64 * SUBCARRIER_SPACING_HZ)
    }

    /// Iterator over all subcarrier frequencies in report order.
    pub fn subcarrier_freqs(&self) -> impl Iterator<Item = Hertz> + '_ {
        (0..self.num_subcarriers()).map(|k| self.subcarrier_freq(k))
    }

    /// Occupied bandwidth between first and last reported subcarrier.
    pub fn occupied_bandwidth(&self) -> Hertz {
        // The index table is non-empty for every supported format; an empty
        // table degrades to zero bandwidth rather than panicking.
        let lo = self.subcarrier_indices.iter().copied().min().unwrap_or(0);
        let hi = self.subcarrier_indices.iter().copied().max().unwrap_or(0);
        Hertz((hi - lo) as f64 * SUBCARRIER_SPACING_HZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel5300_map_has_30_valid_entries() {
        assert_eq!(INTEL5300_SUBCARRIERS_20MHZ.len(), 30);
        // Strictly increasing, within the ±28 span of a 20 MHz channel,
        // and skipping DC.
        assert!(INTEL5300_SUBCARRIERS_20MHZ.windows(2).all(|w| w[0] < w[1]));
        assert!(INTEL5300_SUBCARRIERS_20MHZ
            .iter()
            .all(|&i| (-28..=28).contains(&i) && i != 0));
    }

    #[test]
    fn subcarrier_frequencies_are_monotone() {
        let ch = ChannelSpec::intel5300_20mhz_5ghz();
        let freqs: Vec<f64> = ch.subcarrier_freqs().map(|f| f.value()).collect();
        assert!(freqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn edge_subcarrier_offset_is_8_75_mhz() {
        let ch = ChannelSpec::intel5300_20mhz_5ghz();
        let edge = ch.subcarrier_freq(29).value() - ch.center.value();
        assert!((edge - 28.0 * 312_500.0).abs() < 1.0);
    }

    #[test]
    fn occupied_bandwidth_is_17_5_mhz() {
        let ch = ChannelSpec::intel5300_20mhz_5ghz();
        assert!((ch.occupied_bandwidth().value() - 17.5e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn empty_subcarrier_list_rejected() {
        let _ = ChannelSpec::new(Hertz::from_ghz(5.0), vec![]);
    }
}
