//! The material feature database (paper §III-E: "we put the extracted
//! feature values into the material database").

use crate::feature::MaterialFeature;
use wimi_ml::dataset::Dataset;

/// A store of labelled material features used to train the classifier.
#[derive(Debug, Clone, Default)]
pub struct MaterialDatabase {
    materials: Vec<String>,
    features: Vec<(usize, MaterialFeature)>,
}

impl MaterialDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        MaterialDatabase::default()
    }

    /// Registers a material name, returning its label id; re-registering
    /// an existing name returns the existing id.
    pub fn register(&mut self, name: &str) -> usize {
        if let Some(idx) = self.materials.iter().position(|m| m == name) {
            idx
        } else {
            self.materials.push(name.to_owned());
            self.materials.len() - 1
        }
    }

    /// Adds one feature sample for a material (registering the name if
    /// needed).
    pub fn add(&mut self, name: &str, feature: MaterialFeature) {
        let label = self.register(name);
        self.features.push((label, feature));
    }

    /// Number of stored feature samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Registered material names.
    pub fn materials(&self) -> &[String] {
        &self.materials
    }

    /// Name for a label id.
    ///
    /// # Panics
    ///
    /// Panics if the label is unknown.
    pub fn name(&self, label: usize) -> &str {
        &self.materials[label]
    }

    /// All samples of one material.
    pub fn samples_of(&self, name: &str) -> Vec<&MaterialFeature> {
        match self.materials.iter().position(|m| m == name) {
            Some(label) => self
                .features
                .iter()
                .filter(|(l, _)| *l == label)
                .map(|(_, f)| f)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Converts to an ML dataset of Ω̄ vectors.
    ///
    /// # Panics
    ///
    /// Panics if the database is empty or features have inconsistent
    /// dimensionality (mixed subcarrier counts).
    pub fn to_dataset(&self) -> Dataset {
        assert!(!self.is_empty(), "database holds no samples");
        let mut ds = Dataset::new(self.materials.clone());
        for (label, feature) in &self.features {
            ds.push(feature.as_vector(), *label);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(omega: f64, n: usize) -> MaterialFeature {
        MaterialFeature {
            pair: (0, 1),
            subcarriers: (0..n).collect(),
            omega: vec![omega; n],
            delta_theta: vec![0.5; n],
            delta_psi: vec![0.9; n],
            gamma: 0,
            dispersion: 0.01,
        }
    }

    #[test]
    fn register_is_idempotent() {
        let mut db = MaterialDatabase::new();
        let a = db.register("Milk");
        let b = db.register("Milk");
        assert_eq!(a, b);
        assert_eq!(db.materials(), &["Milk".to_owned()]);
    }

    #[test]
    fn add_and_query() {
        let mut db = MaterialDatabase::new();
        db.add("Milk", feature(0.1, 4));
        db.add("Oil", feature(0.04, 4));
        db.add("Milk", feature(0.11, 4));
        assert_eq!(db.len(), 3);
        assert_eq!(db.samples_of("Milk").len(), 2);
        assert_eq!(db.samples_of("Oil").len(), 1);
        assert!(db.samples_of("Honey").is_empty());
        assert_eq!(db.name(0), "Milk");
    }

    #[test]
    fn dataset_conversion() {
        let mut db = MaterialDatabase::new();
        for i in 0..5 {
            db.add("A", feature(0.1 + i as f64 * 1e-3, 3));
            db.add("B", feature(0.3 + i as f64 * 1e-3, 3));
        }
        let ds = db.to_dataset();
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_dataset_rejected() {
        let _ = MaterialDatabase::new().to_dataset();
    }
}
