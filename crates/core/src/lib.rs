//! # wimi-core
//!
//! The WiMi material-identification pipeline (Feng et al., ICDCS 2019):
//! contactless target material identification from commodity Wi-Fi CSI.
//!
//! The pipeline mirrors the paper's Fig. 5 workflow:
//!
//! 1. **Data collection** — a baseline capture with the empty container on
//!    the LoS path, then a target capture with the liquid poured in
//!    (any [`wimi_phy::csi::CsiSource`] works; the bundled simulator or a
//!    real Intel 5300 driver).
//! 2. **Phase calibration** ([`phase`]) — cross-antenna phase differencing
//!    cancels CFO/SFO/PBD, then [`subcarrier`] selection keeps the least
//!    multipath-contaminated subcarriers.
//! 3. **Amplitude denoising** ([`amplitude`]) — 3σ outlier rejection,
//!    wavelet-correlation denoising, cross-antenna amplitude ratio.
//! 4. **Feature extraction** ([`feature`]) — the size-independent material
//!    feature `Ω̄ = −ln ΔΨ / (ΔΘ + 2γπ)`.
//! 5. **Classification** ([`pipeline`]) — an SVM over the material
//!    database ([`database`]).
//!
//! # End-to-end example
//!
//! ```
//! use wimi_core::{MaterialDatabase, WiMi, WiMiConfig};
//! use wimi_phy::csi::CsiSource;
//! use wimi_phy::material::Liquid;
//! use wimi_phy::scenario::{Scenario, Simulator};
//!
//! // Collect training features for two liquids. Measurements the
//! // pipeline refuses (ambiguous placement) are simply retaken — here we
//! // just skip to the next trial.
//! let extractor = WiMi::new(WiMiConfig::default());
//! let mut db = MaterialDatabase::new();
//! for trial in 0..8 {
//!     for liquid in [Liquid::PureWater, Liquid::Oil] {
//!         let mut sim = Simulator::new(Scenario::builder().build(), 10 + trial);
//!         let baseline = sim.capture(20);
//!         sim.set_liquid(Some(liquid.into()));
//!         let target = sim.capture(20);
//!         if let Ok(feature) = extractor.extract_feature(&baseline, &target) {
//!             db.add(liquid.name(), feature);
//!         }
//!     }
//! }
//!
//! // Train, then identify unseen captures; count the hits. A refused
//! // identification means "re-seat the beaker and measure again".
//! let mut wimi = WiMi::new(WiMiConfig::default());
//! wimi.train(&db);
//! let mut correct = 0;
//! let mut total = 0;
//! for trial in 0..10u64 {
//!     let mut builder = Scenario::builder();
//!     // Each re-measurement places the beaker slightly differently.
//!     builder.target_offset(wimi_phy::units::Meters::from_cm(0.8 + 0.05 * trial as f64));
//!     let mut sim = Simulator::new(builder.build(), 77 + trial);
//!     let baseline = sim.capture(20);
//!     sim.set_liquid(Some(Liquid::PureWater.into()));
//!     let target = sim.capture(20);
//!     if let Ok(id) = wimi.identify(&baseline, &target) {
//!         total += 1;
//!         correct += (id.material == "Pure water") as usize;
//!     }
//! }
//! assert!(total >= 2 && correct * 3 >= total * 2, "{correct}/{total}");
//! ```

#![warn(missing_docs)]

pub mod amplitude;
pub mod antenna;
pub mod database;
pub mod error;
pub mod feature;
pub mod phase;
pub mod pipeline;
pub mod subcarrier;

/// Scoped-thread parallel fan-out (worker count from `WIMI_THREADS`).
///
/// The implementation lives in `wimi_ml::par` so the SVM trainer below
/// this crate in the dependency graph can share it; it is re-exported
/// here because the extraction pipeline and the experiment harness are
/// its other consumers.
pub use wimi_ml::par;

pub use amplitude::{AmplitudeConfig, AmplitudeRatioProfile};
pub use antenna::{PairScore, PairSelection};
pub use database::MaterialDatabase;
pub use error::{FeatureError, IdentifyError, IssueKind, Stage, StageIssue};
pub use feature::{FeatureConfig, JointDiagnostics, MaterialFeature};
pub use phase::PhaseDifferenceProfile;
pub use pipeline::{Identification, Measurement, QualityReport, WiMi, WiMiConfig};
pub use subcarrier::SubcarrierSelection;
