//! The end-to-end WiMi identification pipeline.
//!
//! Ties together every stage of the paper's Fig. 5 workflow: data
//! collection (baseline + target captures), CSI pre-processing (phase
//! calibration, good-subcarrier selection, amplitude denoising), material
//! feature extraction (Ω̄), and SVM classification against the material
//! database.

use crate::amplitude::{AmplitudeConfig, AmplitudeRatioProfile};
use crate::antenna::PairSelection;
use crate::database::MaterialDatabase;
use crate::error::{FeatureError, IdentifyError};
use crate::feature::{FeatureConfig, MaterialFeature};
use crate::phase::PhaseDifferenceProfile;
use crate::subcarrier::SubcarrierSelection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wimi_ml::dataset::Dataset;
use wimi_ml::multiclass::MulticlassSvm;
use wimi_ml::scale::StandardScaler;
use wimi_ml::svm::SvmParams;
use wimi_phy::csi::CsiCapture;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WiMiConfig {
    /// Subcarrier selection strategy (default: best 4 by variance).
    pub subcarriers: SubcarrierSelection,
    /// Amplitude cleaning configuration.
    pub amplitude: AmplitudeConfig,
    /// Feature extraction (γ search, consistency gate).
    pub feature: FeatureConfig,
    /// Antenna pair strategy.
    pub pairs: PairSelection,
    /// SVM hyperparameters.
    pub svm: SvmParams,
    /// RNG seed for SMO's random second-choice heuristic (training is
    /// deterministic given this seed).
    pub train_seed: u64,
}

impl Default for WiMiConfig {
    fn default() -> Self {
        WiMiConfig {
            subcarriers: SubcarrierSelection::default(),
            amplitude: AmplitudeConfig::default(),
            feature: FeatureConfig::default(),
            pairs: PairSelection::default(),
            svm: SvmParams::default(),
            train_seed: 0x5EED,
        }
    }
}

/// One identification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Identification {
    /// Predicted material name.
    pub material: String,
    /// Predicted label id in the database.
    pub label: usize,
    /// The feature the decision was based on.
    pub feature: MaterialFeature,
}

/// The WiMi system: feature extractor plus trained classifier.
///
/// # Examples
///
/// See the crate-level documentation of `wimi-core` for the end-to-end
/// train/identify flow.
#[derive(Debug, Clone)]
pub struct WiMi {
    config: WiMiConfig,
    class_names: Vec<String>,
    scaler: Option<StandardScaler>,
    model: Option<MulticlassSvm>,
}

impl WiMi {
    /// Creates an untrained system.
    pub fn new(config: WiMiConfig) -> Self {
        WiMi {
            config,
            class_names: Vec::new(),
            scaler: None,
            model: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WiMiConfig {
        &self.config
    }

    /// Whether [`WiMi::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Extracts the material feature from a baseline/target capture pair.
    ///
    /// Pair handling follows the strategy:
    ///
    /// - [`PairSelection::Best`]: features are extracted for *every*
    ///   antenna pair and the one with the lowest Ω̄ dispersion wins —
    ///   a stronger version of the paper's §III-F pair selection that
    ///   judges pairs by the quality of the feature they actually produce.
    /// - [`PairSelection::Fixed`]: that pair only.
    /// - [`PairSelection::All`]: every pair must extract successfully; the
    ///   per-pair Ω̄ vectors are concatenated in ascending pair order so
    ///   the classifier input keeps a fixed layout.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureError`] values: empty/mismatched captures, too
    /// few antennas, degenerate amplitudes, or no physically consistent
    /// feature (blocked/moving target).
    pub fn extract_feature(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
    ) -> Result<MaterialFeature, FeatureError> {
        if baseline.is_empty() || target.is_empty() {
            return Err(FeatureError::EmptyCapture);
        }
        if baseline.n_antennas() != target.n_antennas()
            || baseline.n_subcarriers() != target.n_subcarriers()
        {
            return Err(FeatureError::DimensionMismatch);
        }
        if baseline.n_antennas() < 2 {
            return Err(FeatureError::NeedTwoAntennas);
        }

        match &self.config.pairs {
            PairSelection::Fixed(a, b) => self.extract_for_pair(baseline, target, *a, *b),
            PairSelection::Best => self.extract_joint(baseline, target),
            PairSelection::All => {
                // Every pair extracts independently, so fan out across
                // workers; errors surface in ascending pair order exactly
                // as the serial loop reported them.
                let pairs = crate::antenna::enumerate_pairs(baseline.n_antennas());
                let extracted = crate::par::map(&pairs, |_, &(a, b)| {
                    self.extract_for_pair(baseline, target, a, b)
                });
                let mut combined: Option<MaterialFeature> = None;
                for f in extracted {
                    let f = f?;
                    match &mut combined {
                        None => combined = Some(f),
                        Some(c) => {
                            c.omega.extend(f.omega);
                            c.dispersion = c.dispersion.max(f.dispersion);
                        }
                    }
                }
                combined.ok_or(FeatureError::NeedTwoAntennas)
            }
        }
    }

    /// Joint extraction over every antenna pair with cross-pair γ
    /// resolution (see [`MaterialFeature::extract_joint`]).
    fn extract_joint(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
    ) -> Result<MaterialFeature, FeatureError> {
        // The per-pair profile computation (phase differencing, subcarrier
        // ranking, amplitude denoising) is the hot path of every
        // measurement and is independent across pairs — fan it out.
        let pairs = crate::antenna::enumerate_pairs(baseline.n_antennas());
        let profiles = crate::par::map(&pairs, |_, &(a, b)| {
            let phase_base = PhaseDifferenceProfile::compute(baseline, a, b);
            let phase_tar = PhaseDifferenceProfile::compute(target, a, b);
            let selected = self.config.subcarriers.resolve(&phase_base, &phase_tar);
            let amp_base = AmplitudeRatioProfile::compute(baseline, a, b, &self.config.amplitude);
            let amp_tar = AmplitudeRatioProfile::compute(target, a, b, &self.config.amplitude);
            (phase_base, phase_tar, amp_base, amp_tar, selected)
        });
        let inputs: Vec<crate::feature::PairMeasurement<'_>> = profiles
            .iter()
            .map(|(phase_base, phase_tar, amp_base, amp_tar, selected)| {
                crate::feature::PairMeasurement {
                    phase_base,
                    phase_tar,
                    amp_base,
                    amp_tar,
                    subcarriers: selected,
                }
            })
            .collect();
        MaterialFeature::extract_joint(&inputs, &self.config.feature)
    }

    fn extract_for_pair(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
        a: usize,
        b: usize,
    ) -> Result<MaterialFeature, FeatureError> {
        let phase_base = PhaseDifferenceProfile::compute(baseline, a, b);
        let phase_tar = PhaseDifferenceProfile::compute(target, a, b);
        let selected = self.config.subcarriers.resolve(&phase_base, &phase_tar);
        let amp_base = AmplitudeRatioProfile::compute(baseline, a, b, &self.config.amplitude);
        let amp_tar = AmplitudeRatioProfile::compute(target, a, b, &self.config.amplitude);
        MaterialFeature::extract(
            &phase_base,
            &phase_tar,
            &amp_base,
            &amp_tar,
            &selected,
            &self.config.feature,
        )
    }

    /// Trains the SVM on a material database.
    ///
    /// # Panics
    ///
    /// Panics if the database is empty or holds fewer than two materials.
    pub fn train(&mut self, database: &MaterialDatabase) {
        let ds = database.to_dataset();
        self.train_on_dataset(&ds);
    }

    /// Trains directly on a prepared dataset (used by the evaluation
    /// harness to reuse extracted features).
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than two populated classes.
    pub fn train_on_dataset(&mut self, ds: &Dataset) {
        let scaler = StandardScaler::fit(ds.features());
        let mut scaled = Dataset::new(ds.class_names().to_vec());
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            scaled.push(scaler.transform_one(x), y);
        }
        let mut rng = StdRng::seed_from_u64(self.config.train_seed);
        let model = MulticlassSvm::train(&scaled, &self.config.svm, &mut rng);
        self.class_names = ds.class_names().to_vec();
        self.scaler = Some(scaler);
        self.model = Some(model);
    }

    /// Identifies the target material from a baseline/target capture pair.
    ///
    /// # Errors
    ///
    /// [`IdentifyError::NotTrained`] before [`WiMi::train`];
    /// [`IdentifyError::Feature`] when extraction fails.
    pub fn identify(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
    ) -> Result<Identification, IdentifyError> {
        let model = self.model.as_ref().ok_or(IdentifyError::NotTrained)?;
        let scaler = self.scaler.as_ref().ok_or(IdentifyError::NotTrained)?;
        let feature = self.extract_feature(baseline, target)?;
        let label = model.predict(&scaler.transform_one(&feature.as_vector()));
        Ok(Identification {
            material: self.class_names[label].clone(),
            label,
            feature,
        })
    }

    /// Classifies an already-extracted feature.
    ///
    /// # Errors
    ///
    /// [`IdentifyError::NotTrained`] before training.
    pub fn classify_feature(&self, feature: &MaterialFeature) -> Result<usize, IdentifyError> {
        let model = self.model.as_ref().ok_or(IdentifyError::NotTrained)?;
        let scaler = self.scaler.as_ref().ok_or(IdentifyError::NotTrained)?;
        Ok(model.predict(&scaler.transform_one(&feature.as_vector())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::material::Liquid;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture_pair(liquid: Liquid, seed: u64, n: usize) -> (CsiCapture, CsiCapture) {
        capture_pair_at(liquid, seed, n, 1.0)
    }

    fn capture_pair_at(
        liquid: Liquid,
        seed: u64,
        n: usize,
        offset_cm: f64,
    ) -> (CsiCapture, CsiCapture) {
        let mut builder = Scenario::builder();
        builder.target_offset(wimi_phy::units::Meters::from_cm(offset_cm));
        let mut sim = Simulator::new(builder.build(), seed);
        let baseline = sim.capture(n);
        sim.set_liquid(Some(liquid.into()));
        let target = sim.capture(n);
        (baseline, target)
    }

    /// Extracts a feature, retrying with fresh captures and a nudged
    /// beaker when the pipeline reports an ambiguous/inconsistent
    /// measurement (the operator's "re-seat and re-measure" move).
    fn extract_with_retry(
        wimi: &WiMi,
        liquid: Liquid,
        seed: u64,
        n: usize,
    ) -> Option<MaterialFeature> {
        for (attempt, &offset_cm) in [1.2, 0.9, 1.5, 1.0, 1.35].iter().enumerate() {
            let (base, tar) = capture_pair_at(liquid, seed + 1000 * attempt as u64, n, offset_cm);
            if let Ok(f) = wimi.extract_feature(&base, &tar) {
                return Some(f);
            }
        }
        None
    }

    #[test]
    fn extract_feature_produces_finite_omega() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let wimi = WiMi::new(WiMiConfig::default());
        let feat = wimi.extract_feature(&base, &tar).expect("feature");
        assert_eq!(feat.omega.len(), 4);
        assert!(feat.omega.iter().all(|o| o.is_finite()));
        assert!(feat.omega_mean().abs() > 1e-3);
    }

    #[test]
    fn water_and_oil_features_differ() {
        let wimi = WiMi::new(WiMiConfig::default());
        let water = extract_with_retry(&wimi, Liquid::PureWater, 2, 40).expect("water");
        let oil = extract_with_retry(&wimi, Liquid::Oil, 3, 40).expect("oil");
        assert!(
            (water.omega_mean() - oil.omega_mean()).abs() > 0.02,
            "water {} vs oil {}",
            water.omega_mean(),
            oil.omega_mean()
        );
    }

    #[test]
    fn empty_capture_is_rejected() {
        let wimi = WiMi::new(WiMiConfig::default());
        let (base, _) = capture_pair(Liquid::Milk, 4, 10);
        let err = wimi.extract_feature(&base, &CsiCapture::new());
        assert_eq!(err, Err(FeatureError::EmptyCapture));
    }

    #[test]
    fn identify_before_training_fails() {
        let wimi = WiMi::new(WiMiConfig::default());
        let (base, tar) = capture_pair(Liquid::Milk, 5, 10);
        assert_eq!(wimi.identify(&base, &tar), Err(IdentifyError::NotTrained));
    }

    #[test]
    fn train_and_identify_two_liquids() {
        // Trials whose every placement is refused are dropped, exactly as
        // the measurement protocol would skip them; the classifier only
        // needs a handful of good measurements per class.
        let mut db = MaterialDatabase::new();
        let wimi_extractor = WiMi::new(WiMiConfig::default());
        for trial in 0..10 {
            for &liquid in &[Liquid::PureWater, Liquid::Oil] {
                if let Some(feat) = extract_with_retry(&wimi_extractor, liquid, 100 + trial, 30) {
                    db.add(liquid.name(), feat);
                }
            }
        }
        assert!(
            db.samples_of("Pure water").len() >= 5,
            "too few water samples"
        );
        assert!(db.samples_of("Oil").len() >= 5, "too few oil samples");
        let mut wimi = WiMi::new(WiMiConfig::default());
        wimi.train(&db);
        assert!(wimi.is_trained());

        let mut correct = 0;
        let mut total = 0;
        for trial in 0..8 {
            for &liquid in &[Liquid::PureWater, Liquid::Oil] {
                if let Some(feat) = extract_with_retry(&wimi, liquid, 900 + trial, 30) {
                    let label = wimi.classify_feature(&feat).expect("classify");
                    total += 1;
                    if db.name(label) == liquid.name() {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total >= 10, "too many refused test measurements: {total}");
        assert!(
            correct as f64 >= 0.9 * total as f64,
            "water-vs-oil should be nearly perfect: {correct}/{total}"
        );
    }

    #[test]
    fn all_pairs_concatenates_features() {
        let cfg = WiMiConfig {
            pairs: PairSelection::All,
            ..WiMiConfig::default()
        };
        let wimi = WiMi::new(cfg);
        let (base, tar) = capture_pair(Liquid::Milk, 6, 40);
        if let Ok(feat) = wimi.extract_feature(&base, &tar) {
            // 3 pairs × 4 subcarriers when every pair extracts cleanly;
            // at minimum the best pair's 4.
            assert!(feat.omega.len() >= 4);
            assert_eq!(feat.omega.len() % 4, 0);
        }
    }

    #[test]
    fn config_accessors() {
        let wimi = WiMi::new(WiMiConfig::default());
        assert!(!wimi.is_trained());
        assert_eq!(
            wimi.config().subcarriers,
            SubcarrierSelection::BestByVariance(4)
        );
    }
}
