//! The end-to-end WiMi identification pipeline.
//!
//! Ties together every stage of the paper's Fig. 5 workflow: data
//! collection (baseline + target captures), CSI pre-processing (phase
//! calibration, good-subcarrier selection, amplitude denoising), material
//! feature extraction (Ω̄), and SVM classification against the material
//! database.

use crate::amplitude::{AmplitudeConfig, AmplitudeRatioProfile, CleanedAmplitudes};
use crate::antenna::PairSelection;
use crate::database::MaterialDatabase;
use crate::error::{FeatureError, IdentifyError, IssueKind, Stage, StageIssue};
use crate::feature::{FeatureConfig, MaterialFeature};
use crate::phase::PhaseDifferenceProfile;
use crate::subcarrier::SubcarrierSelection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::borrow::Cow;
use std::sync::Arc;
use wimi_ml::dataset::Dataset;
use wimi_ml::multiclass::MulticlassSvm;
use wimi_ml::scale::StandardScaler;
use wimi_ml::svm::SvmParams;
use wimi_obs::{CounterId, IssueId, Recorder, StageId};
use wimi_phy::csi::CsiCapture;
use wimi_trace::{Ctx, TraceEvent, TraceSink};

/// An antenna whose rows are all-zero in more than this fraction of a
/// capture's finite packets is treated as dead and dropped for the whole
/// measurement (rather than poisoning every pair it appears in).
const DEAD_ANTENNA_FRACTION: f64 = 0.3;
/// Minimum packets per capture the extractor accepts after screening.
const MIN_SCREENED_PACKETS: usize = 4;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WiMiConfig {
    /// Subcarrier selection strategy (default: best 4 by variance).
    pub subcarriers: SubcarrierSelection,
    /// Amplitude cleaning configuration.
    pub amplitude: AmplitudeConfig,
    /// Feature extraction (γ search, consistency gate).
    pub feature: FeatureConfig,
    /// Antenna pair strategy.
    pub pairs: PairSelection,
    /// SVM hyperparameters.
    pub svm: SvmParams,
    /// RNG seed for SMO's random second-choice heuristic (training is
    /// deterministic given this seed).
    pub train_seed: u64,
}

impl Default for WiMiConfig {
    fn default() -> Self {
        WiMiConfig {
            subcarriers: SubcarrierSelection::default(),
            amplitude: AmplitudeConfig::default(),
            feature: FeatureConfig::default(),
            pairs: PairSelection::default(),
            svm: SvmParams::default(),
            train_seed: 0x5EED,
        }
    }
}

/// Per-measurement quality accounting: what screening kept, what it
/// dropped, and every issue any stage reported. A measurement can succeed
/// with a non-empty issue list — that is graceful degradation, and the
/// report is how callers (the experiment harness, a deployment monitor)
/// see how close to the edge a measurement ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualityReport {
    /// Baseline packets before screening.
    pub baseline_packets_total: usize,
    /// Baseline packets surviving screening.
    pub baseline_packets_kept: usize,
    /// Target packets before screening.
    pub target_packets_total: usize,
    /// Target packets surviving screening.
    pub target_packets_kept: usize,
    /// Antennas in the original captures.
    pub antennas_total: usize,
    /// Antennas dropped as dead (original indices).
    pub antennas_dropped: Vec<usize>,
    /// Antenna pairs the extractor attempted.
    pub pairs_attempted: usize,
    /// Antenna pairs that resolved a phase-wrap count.
    pub pairs_resolved: usize,
    /// Subcarriers rejected as unusable across the capture.
    pub subcarriers_rejected: usize,
    /// Everything any stage reported, in detection order.
    pub issues: Vec<StageIssue>,
}

impl QualityReport {
    /// `true` when screening had to discard packets or antennas to make
    /// the measurement work.
    pub fn salvaged(&self) -> bool {
        self.baseline_packets_kept < self.baseline_packets_total
            || self.target_packets_kept < self.target_packets_total
            || !self.antennas_dropped.is_empty()
    }

    /// `true` when nothing was dropped and no stage reported an issue.
    pub fn is_clean(&self) -> bool {
        !self.salvaged() && self.issues.is_empty()
    }
}

/// One measurement: the extraction outcome plus its quality report. This
/// is what [`WiMi::measure`] returns instead of a bare `Result` — the
/// report is populated whether or not extraction succeeded.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The extracted feature, or why extraction failed.
    pub feature: Result<MaterialFeature, FeatureError>,
    /// Quality accounting for the measurement.
    pub quality: QualityReport,
}

impl Measurement {
    /// `true` when a feature was extracted.
    pub fn is_ok(&self) -> bool {
        self.feature.is_ok()
    }
}

/// One identification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Identification {
    /// Predicted material name.
    pub material: String,
    /// Predicted label id in the database.
    pub label: usize,
    /// The feature the decision was based on.
    pub feature: MaterialFeature,
}

/// The WiMi system: feature extractor plus trained classifier.
///
/// # Examples
///
/// See the crate-level documentation of `wimi-core` for the end-to-end
/// train/identify flow.
#[derive(Debug, Clone)]
pub struct WiMi {
    config: WiMiConfig,
    class_names: Vec<String>,
    scaler: Option<StandardScaler>,
    model: Option<MulticlassSvm>,
    /// Optional observability sink; stage spans and counters flow here.
    /// `None` (the default) costs one branch per measurement. Recording
    /// never changes any pipeline output.
    recorder: Option<Arc<Recorder>>,
    /// Optional flight-recorder sink; ordered per-task events flow here.
    /// Events are only emitted from calling-thread code — never from
    /// inside the pair fan-out — so traces stay deterministic under any
    /// `WIMI_THREADS` setting. Tracing never changes any pipeline output.
    trace: Option<Arc<TraceSink>>,
}

impl WiMi {
    /// Creates an untrained system.
    pub fn new(config: WiMiConfig) -> Self {
        WiMi {
            config,
            class_names: Vec::new(),
            scaler: None,
            model: None,
            recorder: None,
            trace: None,
        }
    }

    /// Attaches (or detaches) an observability recorder. Measurements,
    /// training, and classification then report stage spans, counters,
    /// histograms, and quality issues; outputs stay bit-identical.
    pub fn set_recorder(&mut self, recorder: Option<Arc<Recorder>>) {
        self.recorder = recorder;
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Attaches (or detaches) a flight-recorder trace sink. Measurements,
    /// training, and classification then emit ordered events into the
    /// caller's current [`wimi_trace::TaskKey`] scope; outputs stay
    /// bit-identical.
    pub fn set_trace(&mut self, trace: Option<Arc<TraceSink>>) {
        self.trace = trace;
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &WiMiConfig {
        &self.config
    }

    /// Whether [`WiMi::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Extracts the material feature from a baseline/target capture pair.
    ///
    /// Pair handling follows the strategy:
    ///
    /// - [`PairSelection::Best`]: features are extracted for *every*
    ///   antenna pair and the one with the lowest Ω̄ dispersion wins —
    ///   a stronger version of the paper's §III-F pair selection that
    ///   judges pairs by the quality of the feature they actually produce.
    /// - [`PairSelection::Fixed`]: that pair only.
    /// - [`PairSelection::All`]: every pair must extract successfully; the
    ///   per-pair Ω̄ vectors are concatenated in ascending pair order so
    ///   the classifier input keeps a fixed layout.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureError`] values: empty/mismatched captures, too
    /// few antennas, degenerate amplitudes, or no physically consistent
    /// feature (blocked/moving target).
    pub fn extract_feature(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
    ) -> Result<MaterialFeature, FeatureError> {
        self.measure(baseline, target).feature
    }

    /// Full measurement: screening, salvage, extraction, and a
    /// [`QualityReport`] — the graceful-degradation entry point that
    /// [`WiMi::extract_feature`] wraps.
    ///
    /// Screening discards packets holding NaN/Inf CSI, drops antennas
    /// whose rows are all-zero in too many packets (a dead RF chain), and
    /// then discards remaining packets with all-zero rows on a surviving
    /// antenna. Extraction runs on the survivors; with three antennas a
    /// dead chain costs two of the three pairs yet the measurement still
    /// goes through on the remaining one. On clean captures screening is
    /// a strict no-op: the extracted feature is bit-identical to what the
    /// pre-salvage pipeline produced.
    pub fn measure(&self, baseline: &CsiCapture, target: &CsiCapture) -> Measurement {
        let m = self.measure_inner(baseline, target);
        if let Some(rec) = &self.recorder {
            record_measurement(rec, &m);
        }
        if let Some(trace) = &self.trace {
            trace_measurement(trace, &m);
        }
        m
    }

    fn measure_inner(&self, baseline: &CsiCapture, target: &CsiCapture) -> Measurement {
        let mut quality = QualityReport {
            baseline_packets_total: baseline.len(),
            baseline_packets_kept: baseline.len(),
            target_packets_total: target.len(),
            target_packets_kept: target.len(),
            antennas_total: baseline.n_antennas(),
            ..QualityReport::default()
        };
        if baseline.is_empty() || target.is_empty() {
            return failed(quality, FeatureError::EmptyCapture);
        }
        if baseline.n_antennas() != target.n_antennas()
            || baseline.n_subcarriers() != target.n_subcarriers()
        {
            return failed(quality, FeatureError::DimensionMismatch);
        }
        if baseline.n_antennas() < 2 {
            return failed(quality, FeatureError::NeedTwoAntennas);
        }

        let screened = {
            let _span = self.recorder.as_ref().map(|r| r.span(StageId::Screening));
            let _trace_span = self.trace.as_ref().map(|t| t.span(StageId::Screening));
            match screen(baseline, target, &mut quality) {
                Ok(s) => s,
                Err(e) => return failed(quality, e),
            }
        };
        let base = screened.baseline.as_ref();
        let tar = screened.target.as_ref();
        let survivors = &screened.survivors;
        let rejected = &screened.rejected_subcarriers;

        let feature = match &self.config.pairs {
            PairSelection::Fixed(a, b) => {
                quality.pairs_attempted = 1;
                let result = remap_fixed_pair(*a, *b, survivors)
                    .and_then(|(ra, rb)| self.extract_for_pair(base, tar, ra, rb, rejected, None));
                quality.pairs_resolved = result.is_ok() as usize;
                result
            }
            PairSelection::Best
                if base.n_antennas() == 2 && !quality.antennas_dropped.is_empty() =>
            {
                // Salvage left a single pair: the joint extractor's
                // cross-pair ambiguity gate has nothing to compare against
                // and would refuse; the single-pair path (built for
                // two-antenna hardware) handles this.
                quality.pairs_attempted = 1;
                let result = self.extract_for_pair(base, tar, 0, 1, rejected, None);
                quality.pairs_resolved = result.is_ok() as usize;
                result
            }
            PairSelection::Best => {
                let (result, diag) = self.extract_joint(base, tar, rejected);
                quality.pairs_attempted = diag.pairs_attempted;
                quality.pairs_resolved = diag.pairs_resolved;
                if let Some(rec) = &self.recorder {
                    rec.add(CounterId::PairsUsable, diag.pairs_usable as u64);
                    rec.add(
                        CounterId::PairsSkippedDegenerate,
                        diag.pairs_skipped_degenerate as u64,
                    );
                    rec.add(
                        CounterId::PairsSkippedBandUnusable,
                        diag.pairs_skipped_band_unusable as u64,
                    );
                }
                if diag.pairs_resolved < diag.pairs_attempted {
                    quality.issues.push(StageIssue::new(
                        Stage::GammaResolution,
                        IssueKind::PairsUnresolved {
                            attempted: diag.pairs_attempted,
                            resolved: diag.pairs_resolved,
                        },
                    ));
                }
                result
            }
            PairSelection::All => {
                // Every pair extracts independently, so fan out across
                // workers; errors surface in ascending pair order exactly
                // as the serial loop reported them.
                let pairs = crate::antenna::enumerate_pairs(base.n_antennas());
                quality.pairs_attempted = pairs.len();
                // Shared cleaned-amplitude cache, built before the fan-out
                // (see `extract_joint`).
                let amp_cache = (
                    CleanedAmplitudes::compute(base, &self.config.amplitude),
                    CleanedAmplitudes::compute(tar, &self.config.amplitude),
                );
                let extracted = crate::par::map(&pairs, |_, &(a, b)| {
                    self.extract_for_pair(
                        base,
                        tar,
                        a,
                        b,
                        rejected,
                        Some((&amp_cache.0, &amp_cache.1)),
                    )
                });
                quality.pairs_resolved = extracted.iter().filter(|f| f.is_ok()).count();
                let mut combined: Result<Option<MaterialFeature>, FeatureError> = Ok(None);
                for f in extracted {
                    combined = combined.and_then(|acc| {
                        let f = f?;
                        Ok(Some(match acc {
                            None => f,
                            Some(mut c) => {
                                c.omega.extend(f.omega);
                                c.dispersion = c.dispersion.max(f.dispersion);
                                c
                            }
                        }))
                    });
                    if combined.is_err() {
                        break;
                    }
                }
                combined.and_then(|c| c.ok_or(FeatureError::NeedTwoAntennas))
            }
        };

        match feature {
            Ok(mut f) => {
                // Report the pair in the original capture's antenna
                // numbering even when screening dropped antennas.
                f.pair = (survivors[f.pair.0], survivors[f.pair.1]);
                Measurement {
                    feature: Ok(f),
                    quality,
                }
            }
            Err(e) => failed(quality, e),
        }
    }

    /// Joint extraction over every antenna pair with cross-pair γ
    /// resolution (see [`MaterialFeature::extract_joint`]).
    fn extract_joint(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
        rejected: &[usize],
    ) -> (
        Result<MaterialFeature, FeatureError>,
        crate::feature::JointDiagnostics,
    ) {
        // The per-pair profile computation (phase differencing, subcarrier
        // ranking, amplitude denoising) is the hot path of every
        // measurement and is independent across pairs — fan it out.
        let pairs = crate::antenna::enumerate_pairs(baseline.n_antennas());
        // Clean every antenna's amplitude series once, before the fan-out:
        // each antenna appears in several pairs, and the cleaning chain is
        // the most expensive per-pair stage. Running it up front (rather
        // than inside the workers) also keeps the work deterministic per
        // antenna regardless of thread count.
        let amp_cache = {
            let _span = self
                .recorder
                .as_ref()
                .map(|r| r.span(StageId::AmplitudeDenoising));
            (
                CleanedAmplitudes::compute(baseline, &self.config.amplitude),
                CleanedAmplitudes::compute(target, &self.config.amplitude),
            )
        };
        let profiles = crate::par::map(&pairs, |_, &(a, b)| {
            self.pair_profiles(
                baseline,
                target,
                a,
                b,
                rejected,
                Some((&amp_cache.0, &amp_cache.1)),
            )
        });
        let inputs: Vec<crate::feature::PairMeasurement<'_>> = profiles
            .iter()
            .map(|(phase_base, phase_tar, amp_base, amp_tar, selected)| {
                crate::feature::PairMeasurement {
                    phase_base,
                    phase_tar,
                    amp_base,
                    amp_tar,
                    subcarriers: selected,
                    rejected,
                }
            })
            .collect();
        let _span = self
            .recorder
            .as_ref()
            .map(|r| r.span(StageId::GammaResolution));
        let _trace_span = self
            .trace
            .as_ref()
            .map(|t| t.span(StageId::GammaResolution));
        MaterialFeature::extract_joint_with_diag(&inputs, &self.config.feature)
    }

    /// Per-pair profile computation shared by the joint and single-pair
    /// paths: phase calibration, good-subcarrier selection, amplitude
    /// denoising — each under its stage span when a recorder is attached.
    #[allow(clippy::type_complexity)]
    fn pair_profiles(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
        a: usize,
        b: usize,
        rejected: &[usize],
        amps: Option<(&CleanedAmplitudes, &CleanedAmplitudes)>,
    ) -> (
        PhaseDifferenceProfile,
        PhaseDifferenceProfile,
        AmplitudeRatioProfile,
        AmplitudeRatioProfile,
        Vec<usize>,
    ) {
        let rec = self.recorder.as_ref();
        let (phase_base, phase_tar) = {
            let _span = rec.map(|r| r.span(StageId::PhaseCalibration));
            (
                PhaseDifferenceProfile::compute(baseline, a, b),
                PhaseDifferenceProfile::compute(target, a, b),
            )
        };
        let selected = {
            let _span = rec.map(|r| r.span(StageId::SubcarrierSelection));
            self.config
                .subcarriers
                .resolve_excluding(&phase_base, &phase_tar, rejected)
        };
        let (amp_base, amp_tar) = {
            let _span = rec.map(|r| r.span(StageId::AmplitudeDenoising));
            match amps {
                Some((clean_base, clean_tar)) => (
                    AmplitudeRatioProfile::from_cleaned(clean_base, a, b),
                    AmplitudeRatioProfile::from_cleaned(clean_tar, a, b),
                ),
                None => (
                    AmplitudeRatioProfile::compute(baseline, a, b, &self.config.amplitude),
                    AmplitudeRatioProfile::compute(target, a, b, &self.config.amplitude),
                ),
            }
        };
        (phase_base, phase_tar, amp_base, amp_tar, selected)
    }

    fn extract_for_pair(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
        a: usize,
        b: usize,
        rejected: &[usize],
        amps: Option<(&CleanedAmplitudes, &CleanedAmplitudes)>,
    ) -> Result<MaterialFeature, FeatureError> {
        let (phase_base, phase_tar, amp_base, amp_tar, selected) =
            self.pair_profiles(baseline, target, a, b, rejected, amps);
        let _span = self
            .recorder
            .as_ref()
            .map(|r| r.span(StageId::GammaResolution));
        MaterialFeature::extract_excluding(
            &phase_base,
            &phase_tar,
            &amp_base,
            &amp_tar,
            &selected,
            rejected,
            &self.config.feature,
        )
    }

    /// Trains the SVM on a material database.
    ///
    /// # Panics
    ///
    /// Panics if the database is empty or holds fewer than two materials.
    pub fn train(&mut self, database: &MaterialDatabase) {
        let ds = database.to_dataset();
        self.train_on_dataset(&ds);
    }

    /// Trains directly on a prepared dataset (used by the evaluation
    /// harness to reuse extracted features).
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than two populated classes.
    pub fn train_on_dataset(&mut self, ds: &Dataset) {
        let scaler = StandardScaler::fit(ds.features());
        let mut scaled = Dataset::new(ds.class_names().to_vec());
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            scaled.push(scaler.transform_one(x), y);
        }
        let mut rng = StdRng::seed_from_u64(self.config.train_seed);
        let model = MulticlassSvm::train_observed(
            &scaled,
            &self.config.svm,
            &mut rng,
            self.recorder.as_deref(),
            self.trace.as_deref(),
        );
        self.class_names = ds.class_names().to_vec();
        self.scaler = Some(scaler);
        self.model = Some(model);
    }

    /// Identifies the target material from a baseline/target capture pair.
    ///
    /// # Errors
    ///
    /// [`IdentifyError::NotTrained`] before [`WiMi::train`];
    /// [`IdentifyError::Feature`] when extraction fails.
    pub fn identify(
        &self,
        baseline: &CsiCapture,
        target: &CsiCapture,
    ) -> Result<Identification, IdentifyError> {
        let model = self.model.as_ref().ok_or(IdentifyError::NotTrained)?;
        let scaler = self.scaler.as_ref().ok_or(IdentifyError::NotTrained)?;
        let feature = self.extract_feature(baseline, target)?;
        let _span = self
            .recorder
            .as_ref()
            .map(|r| r.span(StageId::Classification));
        let _trace_span = self.trace.as_ref().map(|t| t.span(StageId::Classification));
        let label = model.predict(&scaler.transform_one(&feature.as_vector()));
        Ok(Identification {
            material: self.class_names[label].clone(),
            label,
            feature,
        })
    }

    /// Classifies an already-extracted feature.
    ///
    /// # Errors
    ///
    /// [`IdentifyError::NotTrained`] before training.
    pub fn classify_feature(&self, feature: &MaterialFeature) -> Result<usize, IdentifyError> {
        let model = self.model.as_ref().ok_or(IdentifyError::NotTrained)?;
        let scaler = self.scaler.as_ref().ok_or(IdentifyError::NotTrained)?;
        let _span = self
            .recorder
            .as_ref()
            .map(|r| r.span(StageId::Classification));
        let _trace_span = self.trace.as_ref().map(|t| t.span(StageId::Classification));
        Ok(model.predict(&scaler.transform_one(&feature.as_vector())))
    }

    /// Classifies a batch of already-extracted features in one call:
    /// one classification span and one model dispatch amortised over the
    /// whole batch. This is the inference path the `wimi-serve` engine
    /// coalesces concurrent session requests onto; labels come back in
    /// input order, identical to calling [`WiMi::classify_feature`] per
    /// feature.
    ///
    /// # Errors
    ///
    /// [`IdentifyError::NotTrained`] before training.
    pub fn classify_features(
        &self,
        features: &[MaterialFeature],
    ) -> Result<Vec<usize>, IdentifyError> {
        let model = self.model.as_ref().ok_or(IdentifyError::NotTrained)?;
        let scaler = self.scaler.as_ref().ok_or(IdentifyError::NotTrained)?;
        let _span = self
            .recorder
            .as_ref()
            .map(|r| r.span(StageId::Classification));
        let _trace_span = self.trace.as_ref().map(|t| t.span(StageId::Classification));
        let scaled: Vec<Vec<f64>> = features
            .iter()
            .map(|f| scaler.transform_one(&f.as_vector()))
            .collect();
        Ok(model.predict_batch(&scaled))
    }
}

/// Folds one finished measurement into the recorder: outcome counters,
/// packet/antenna/pair accounting, per-issue tallies, and the γ and Ω̄
/// dispersion histograms on success.
fn record_measurement(rec: &Recorder, m: &Measurement) {
    let q = &m.quality;
    rec.incr(CounterId::MeasurementsAttempted);
    rec.incr(if m.is_ok() {
        CounterId::MeasurementsOk
    } else {
        CounterId::MeasurementsFailed
    });
    if q.salvaged() {
        rec.incr(CounterId::MeasurementsSalvaged);
    }
    let total = (q.baseline_packets_total + q.target_packets_total) as u64;
    let kept = (q.baseline_packets_kept + q.target_packets_kept) as u64;
    rec.add(CounterId::PacketsKept, kept);
    rec.add(CounterId::PacketsDropped, total.saturating_sub(kept));
    rec.add(CounterId::AntennasDropped, q.antennas_dropped.len() as u64);
    rec.add(
        CounterId::SubcarriersRejected,
        q.subcarriers_rejected as u64,
    );
    rec.add(CounterId::PairsAttempted, q.pairs_attempted as u64);
    rec.add(CounterId::PairsResolved, q.pairs_resolved as u64);
    for issue in &q.issues {
        rec.issue(issue_id(&issue.kind), 1);
    }
    if let Ok(f) = &m.feature {
        rec.record_gamma(f.gamma);
        rec.record_dispersion(f.dispersion);
    }
}

/// Folds one finished measurement into the flight recorder as *ordered*
/// events, mirroring [`record_measurement`]'s aggregates plus the
/// locating context the aggregates throw away (which antenna died, how
/// many packets a triage decision dropped, where extraction failed).
///
/// Runs on the calling thread after the pair fan-out has joined, so
/// every event lands in the caller's current task scope in a
/// deterministic order regardless of `WIMI_THREADS`.
fn trace_measurement(trace: &Arc<TraceSink>, m: &Measurement) {
    let q = &m.quality;
    trace.emit(TraceEvent::Count {
        counter: CounterId::MeasurementsAttempted,
        delta: 1,
    });
    trace.emit(TraceEvent::Count {
        counter: if m.is_ok() {
            CounterId::MeasurementsOk
        } else {
            CounterId::MeasurementsFailed
        },
        delta: 1,
    });
    if q.salvaged() {
        trace.emit(TraceEvent::Count {
            counter: CounterId::MeasurementsSalvaged,
            delta: 1,
        });
    }
    let total = (q.baseline_packets_total + q.target_packets_total) as u64;
    let kept = (q.baseline_packets_kept + q.target_packets_kept) as u64;
    let dropped = total.saturating_sub(kept);
    trace.emit(TraceEvent::Count {
        counter: CounterId::PacketsKept,
        delta: kept,
    });
    if dropped > 0 {
        trace.emit(TraceEvent::Salvage {
            action: "drop_bad_packets",
            count: dropped,
        });
    }
    if !q.antennas_dropped.is_empty() {
        trace.emit(TraceEvent::Salvage {
            action: "drop_dead_antenna",
            count: q.antennas_dropped.len() as u64,
        });
    }
    trace.emit(TraceEvent::Count {
        counter: CounterId::PairsAttempted,
        delta: q.pairs_attempted as u64,
    });
    trace.emit(TraceEvent::Count {
        counter: CounterId::PairsResolved,
        delta: q.pairs_resolved as u64,
    });
    for issue in &q.issues {
        let (count, ctx) = issue_detail(&issue.kind);
        trace.emit(TraceEvent::Issue {
            issue: issue_id(&issue.kind),
            count,
            ctx,
        });
    }
    match &m.feature {
        Ok(f) => trace.emit(TraceEvent::Feature {
            pairs: q.pairs_resolved as u32,
            gamma_min: f.gamma,
            gamma_max: f.gamma,
            dispersion: f.dispersion,
        }),
        Err(e) => trace.emit(TraceEvent::Failed {
            stage: stage_to_id(stage_of(e)),
            issue: IssueId::Extraction,
        }),
    }
}

/// The occurrence count and locating context a [`QualityReport`] issue
/// carries into its trace event.
fn issue_detail(kind: &IssueKind) -> (u64, Ctx) {
    match kind {
        IssueKind::NonFinitePackets { dropped } | IssueKind::PartialDropout { dropped } => {
            (*dropped as u64, Ctx::NONE)
        }
        IssueKind::DeadAntenna { antenna } => (1, Ctx::antenna(*antenna as u32)),
        IssueKind::ShortCapture { kept, .. } => (1, Ctx::packet(*kept as u32)),
        IssueKind::RejectedSubcarriers { count } => (*count as u64, Ctx::NONE),
        IssueKind::PairsUnresolved {
            attempted,
            resolved,
        } => (attempted.saturating_sub(*resolved) as u64, Ctx::NONE),
        IssueKind::Extraction(FeatureError::AntennaFailed { antenna }) => {
            (1, Ctx::antenna(*antenna as u32))
        }
        IssueKind::Extraction(_) => (1, Ctx::NONE),
    }
}

/// The observability stage id a pipeline [`Stage`] maps to.
fn stage_to_id(stage: Stage) -> StageId {
    match stage {
        Stage::Screening => StageId::Screening,
        Stage::PhaseCalibration => StageId::PhaseCalibration,
        Stage::SubcarrierSelection => StageId::SubcarrierSelection,
        Stage::AmplitudeDenoising => StageId::AmplitudeDenoising,
        Stage::GammaResolution => StageId::GammaResolution,
        Stage::Classification => StageId::Classification,
    }
}

/// The recorder bucket a [`QualityReport`] issue tallies under.
fn issue_id(kind: &IssueKind) -> IssueId {
    match kind {
        IssueKind::NonFinitePackets { .. } => IssueId::NonFinitePackets,
        IssueKind::DeadAntenna { .. } => IssueId::DeadAntenna,
        IssueKind::PartialDropout { .. } => IssueId::PartialDropout,
        IssueKind::ShortCapture { .. } => IssueId::ShortCapture,
        IssueKind::RejectedSubcarriers { .. } => IssueId::RejectedSubcarriers,
        IssueKind::PairsUnresolved { .. } => IssueId::PairsUnresolved,
        IssueKind::Extraction(_) => IssueId::Extraction,
    }
}

/// Finalises a failed measurement, filing the error under the stage that
/// produced it.
fn failed(mut quality: QualityReport, err: FeatureError) -> Measurement {
    quality.issues.push(StageIssue::new(
        stage_of(&err),
        IssueKind::Extraction(err.clone()),
    ));
    Measurement {
        feature: Err(err),
        quality,
    }
}

/// The pipeline stage a [`FeatureError`] originates from.
fn stage_of(err: &FeatureError) -> Stage {
    match err {
        FeatureError::EmptyCapture
        | FeatureError::DimensionMismatch
        | FeatureError::NeedTwoAntennas
        | FeatureError::InsufficientPackets { .. }
        | FeatureError::AntennaFailed { .. } => Stage::Screening,
        FeatureError::DegenerateAmplitude => Stage::AmplitudeDenoising,
        FeatureError::NoConsistentFeature { .. } => Stage::GammaResolution,
    }
}

/// Maps a fixed pair's original antenna indices into the post-screening
/// numbering, or reports which antenna screening found dead.
fn remap_fixed_pair(
    a: usize,
    b: usize,
    survivors: &[usize],
) -> Result<(usize, usize), FeatureError> {
    let find = |x: usize| {
        survivors
            .iter()
            .position(|&s| s == x)
            .ok_or(FeatureError::AntennaFailed { antenna: x })
    };
    Ok((find(a)?, find(b)?))
}

/// Screened captures: possibly rebuilt (bad packets/antennas removed),
/// borrowed untouched when the input was clean.
struct Screened<'a> {
    baseline: Cow<'a, CsiCapture>,
    target: Cow<'a, CsiCapture>,
    /// Original indices of the surviving antennas, ascending. Survivor
    /// `i` of the screened captures is original antenna `survivors[i]`.
    survivors: Vec<usize>,
    /// Subcarrier indices triage found unusable (zero amplitude median on
    /// a surviving antenna); selection must not pick them.
    rejected_subcarriers: Vec<usize>,
}

/// Per-capture scan: finite mask, per-packet/per-antenna all-zero rows,
/// and whether any individual channel estimate was exactly zero.
struct CapScan {
    finite: Vec<bool>,
    zero_rows: Vec<Vec<bool>>,
    n_finite: usize,
    saw_zero: bool,
}

fn scan_capture(cap: &CsiCapture, n_ant: usize) -> CapScan {
    let mut finite = Vec::with_capacity(cap.len());
    let mut zero_rows = Vec::with_capacity(cap.len());
    let mut n_finite = 0usize;
    let mut saw_zero = false;
    for m in 0..cap.len() {
        let fin = cap.packet_is_finite(m);
        n_finite += fin as usize;
        finite.push(fin);
        let rows: Vec<bool> = (0..n_ant).map(|a| cap.antenna_row_is_zero(m, a)).collect();
        if !saw_zero {
            // `packet_has_zero` uses `norm_sqr <= 0.0` as the zero test.
            saw_zero = cap.packet_has_zero(m);
        }
        zero_rows.push(rows);
    }
    CapScan {
        finite,
        zero_rows,
        n_finite,
        saw_zero,
    }
}

/// Screens a baseline/target pair: drops non-finite packets, dead
/// antennas, and partial-dropout packets, recording everything in the
/// quality report. Clean captures pass through untouched (borrowed).
fn screen<'a>(
    baseline: &'a CsiCapture,
    target: &'a CsiCapture,
    quality: &mut QualityReport,
) -> Result<Screened<'a>, FeatureError> {
    let n_ant = baseline.n_antennas();
    let scan_b = scan_capture(baseline, n_ant);
    let scan_t = scan_capture(target, n_ant);

    let non_finite = (baseline.len() - scan_b.n_finite) + (target.len() - scan_t.n_finite);
    if non_finite > 0 {
        quality.issues.push(StageIssue::new(
            Stage::Screening,
            IssueKind::NonFinitePackets {
                dropped: non_finite,
            },
        ));
    }
    if scan_b.n_finite == 0 || scan_t.n_finite == 0 {
        quality.baseline_packets_kept = scan_b.n_finite;
        quality.target_packets_kept = scan_t.n_finite;
        return Err(FeatureError::InsufficientPackets {
            kept: scan_b.n_finite.min(scan_t.n_finite),
            needed: MIN_SCREENED_PACKETS,
        });
    }

    // Dead-antenna triage: the worst fraction of all-zero rows either
    // capture shows for the antenna, over its finite packets.
    let zero_fraction = |scan: &CapScan, a: usize| -> f64 {
        let zeros = scan
            .zero_rows
            .iter()
            .zip(&scan.finite)
            .filter(|(rows, &fin)| fin && rows[a])
            .count();
        zeros as f64 / scan.n_finite as f64
    };
    let mut candidates: Vec<(usize, f64)> = (0..n_ant)
        .map(|a| {
            let f = zero_fraction(&scan_b, a).max(zero_fraction(&scan_t, a));
            (a, f)
        })
        .filter(|&(_, f)| f > DEAD_ANTENNA_FRACTION)
        .collect();
    // Worst first; never drop below the two antennas a pair needs.
    candidates.sort_by(|x, y| y.1.total_cmp(&x.1));
    candidates.truncate(n_ant.saturating_sub(2));
    let mut dropped_antennas: Vec<usize> = candidates.iter().map(|&(a, _)| a).collect();
    dropped_antennas.sort_unstable();
    for &a in &dropped_antennas {
        quality.issues.push(StageIssue::new(
            Stage::Screening,
            IssueKind::DeadAntenna { antenna: a },
        ));
    }
    let survivors: Vec<usize> = (0..n_ant)
        .filter(|a| !dropped_antennas.contains(a))
        .collect();

    // Packet retention on the survivors: finite and no all-zero row.
    let keep_mask = |scan: &CapScan| -> Vec<bool> {
        scan.finite
            .iter()
            .zip(&scan.zero_rows)
            .map(|(&fin, rows)| fin && survivors.iter().all(|&a| !rows[a]))
            .collect()
    };
    let keep_b = keep_mask(&scan_b);
    let keep_t = keep_mask(&scan_t);
    let kept_b = keep_b.iter().filter(|&&k| k).count();
    let kept_t = keep_t.iter().filter(|&&k| k).count();
    let dropout_dropped = (scan_b.n_finite - kept_b) + (scan_t.n_finite - kept_t);
    if dropout_dropped > 0 {
        quality.issues.push(StageIssue::new(
            Stage::Screening,
            IssueKind::PartialDropout {
                dropped: dropout_dropped,
            },
        ));
    }
    quality.baseline_packets_kept = kept_b;
    quality.target_packets_kept = kept_t;
    quality.antennas_dropped = dropped_antennas;

    let salvaged = quality.salvaged();
    let kept_min = kept_b.min(kept_t);
    if salvaged && kept_min < MIN_SCREENED_PACKETS {
        return Err(FeatureError::InsufficientPackets {
            kept: kept_min,
            needed: MIN_SCREENED_PACKETS,
        });
    }
    if !salvaged && kept_min < MIN_SCREENED_PACKETS {
        // A deliberately short clean capture is the caller's choice;
        // note it and let extraction decide.
        quality.issues.push(StageIssue::new(
            Stage::Screening,
            IssueKind::ShortCapture {
                kept: kept_min,
                needed: MIN_SCREENED_PACKETS,
            },
        ));
    }

    let rebuild = |cap: &CsiCapture, keep: &[bool]| -> CsiCapture {
        cap.select_packets_antennas(keep, &survivors)
    };
    let (base, tar) = if salvaged {
        (
            Cow::Owned(rebuild(baseline, &keep_b)),
            Cow::Owned(rebuild(target, &keep_t)),
        )
    } else {
        (Cow::Borrowed(baseline), Cow::Borrowed(target))
    };

    // Subcarrier triage, only worth the scan when something was zero or
    // dropped: a subcarrier whose amplitude median is zero on a surviving
    // antenna in either capture carries no usable signal. The *set* (not
    // just the count) flows into subcarrier selection: a zeroed
    // subcarrier has constant phase, so its phase-difference variance is
    // zero and `BestByVariance` would otherwise pick it first.
    let mut rejected_subcarriers: Vec<usize> = Vec::new();
    if salvaged || scan_b.saw_zero || scan_t.saw_zero {
        let n_sub = base.n_subcarriers();
        rejected_subcarriers = (0..n_sub)
            .filter(|&k| {
                [base.as_ref(), tar.as_ref()].into_iter().any(|cap| {
                    (0..cap.n_antennas()).any(|a| {
                        let amps = cap.amplitude_series(a, k);
                        let m = wimi_dsp::stats::median(&amps);
                        // Amplitude medians are non-negative.
                        !m.is_finite() || m <= 0.0
                    })
                })
            })
            .collect();
        if !rejected_subcarriers.is_empty() {
            quality.subcarriers_rejected = rejected_subcarriers.len();
            quality.issues.push(StageIssue::new(
                Stage::SubcarrierSelection,
                IssueKind::RejectedSubcarriers {
                    count: rejected_subcarriers.len(),
                },
            ));
        }
    }

    Ok(Screened {
        baseline: base,
        target: tar,
        survivors,
        rejected_subcarriers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::material::Liquid;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture_pair(liquid: Liquid, seed: u64, n: usize) -> (CsiCapture, CsiCapture) {
        capture_pair_at(liquid, seed, n, 1.0)
    }

    fn capture_pair_at(
        liquid: Liquid,
        seed: u64,
        n: usize,
        offset_cm: f64,
    ) -> (CsiCapture, CsiCapture) {
        let mut builder = Scenario::builder();
        builder.target_offset(wimi_phy::units::Meters::from_cm(offset_cm));
        let mut sim = Simulator::new(builder.build(), seed);
        let baseline = sim.capture(n);
        sim.set_liquid(Some(liquid.into()));
        let target = sim.capture(n);
        (baseline, target)
    }

    /// Extracts a feature, retrying with fresh captures and a nudged
    /// beaker when the pipeline reports an ambiguous/inconsistent
    /// measurement (the operator's "re-seat and re-measure" move).
    fn extract_with_retry(
        wimi: &WiMi,
        liquid: Liquid,
        seed: u64,
        n: usize,
    ) -> Option<MaterialFeature> {
        for (attempt, &offset_cm) in [1.2, 0.9, 1.5, 1.0, 1.35].iter().enumerate() {
            let (base, tar) = capture_pair_at(liquid, seed + 1000 * attempt as u64, n, offset_cm);
            if let Ok(f) = wimi.extract_feature(&base, &tar) {
                return Some(f);
            }
        }
        None
    }

    #[test]
    fn extract_feature_produces_finite_omega() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let wimi = WiMi::new(WiMiConfig::default());
        let feat = wimi.extract_feature(&base, &tar).expect("feature");
        assert_eq!(feat.omega.len(), 4);
        assert!(feat.omega.iter().all(|o| o.is_finite()));
        assert!(feat.omega_mean().abs() > 1e-3);
    }

    #[test]
    fn water_and_oil_features_differ() {
        let wimi = WiMi::new(WiMiConfig::default());
        let water = extract_with_retry(&wimi, Liquid::PureWater, 2, 40).expect("water");
        let oil = extract_with_retry(&wimi, Liquid::Oil, 3, 40).expect("oil");
        assert!(
            (water.omega_mean() - oil.omega_mean()).abs() > 0.02,
            "water {} vs oil {}",
            water.omega_mean(),
            oil.omega_mean()
        );
    }

    #[test]
    fn empty_capture_is_rejected() {
        let wimi = WiMi::new(WiMiConfig::default());
        let (base, _) = capture_pair(Liquid::Milk, 4, 10);
        let err = wimi.extract_feature(&base, &CsiCapture::new());
        assert_eq!(err, Err(FeatureError::EmptyCapture));
    }

    #[test]
    fn identify_before_training_fails() {
        let wimi = WiMi::new(WiMiConfig::default());
        let (base, tar) = capture_pair(Liquid::Milk, 5, 10);
        assert_eq!(wimi.identify(&base, &tar), Err(IdentifyError::NotTrained));
    }

    #[test]
    fn train_and_identify_two_liquids() {
        // Trials whose every placement is refused are dropped, exactly as
        // the measurement protocol would skip them; the classifier only
        // needs a handful of good measurements per class.
        let mut db = MaterialDatabase::new();
        let wimi_extractor = WiMi::new(WiMiConfig::default());
        for trial in 0..10 {
            for &liquid in &[Liquid::PureWater, Liquid::Oil] {
                if let Some(feat) = extract_with_retry(&wimi_extractor, liquid, 100 + trial, 30) {
                    db.add(liquid.name(), feat);
                }
            }
        }
        assert!(
            db.samples_of("Pure water").len() >= 5,
            "too few water samples"
        );
        assert!(db.samples_of("Oil").len() >= 5, "too few oil samples");
        let mut wimi = WiMi::new(WiMiConfig::default());
        wimi.train(&db);
        assert!(wimi.is_trained());

        let mut correct = 0;
        let mut total = 0;
        for trial in 0..8 {
            for &liquid in &[Liquid::PureWater, Liquid::Oil] {
                if let Some(feat) = extract_with_retry(&wimi, liquid, 900 + trial, 30) {
                    let label = wimi.classify_feature(&feat).expect("classify");
                    total += 1;
                    if db.name(label) == liquid.name() {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total >= 10, "too many refused test measurements: {total}");
        assert!(
            correct as f64 >= 0.9 * total as f64,
            "water-vs-oil should be nearly perfect: {correct}/{total}"
        );
    }

    #[test]
    fn all_pairs_concatenates_features() {
        let cfg = WiMiConfig {
            pairs: PairSelection::All,
            ..WiMiConfig::default()
        };
        let wimi = WiMi::new(cfg);
        let (base, tar) = capture_pair(Liquid::Milk, 6, 40);
        if let Ok(feat) = wimi.extract_feature(&base, &tar) {
            // 3 pairs × 4 subcarriers when every pair extracts cleanly;
            // at minimum the best pair's 4.
            assert!(feat.omega.len() >= 4);
            assert_eq!(feat.omega.len() % 4, 0);
        }
    }

    /// Returns a copy of the capture with `antenna`'s rows zeroed in every
    /// packet from `start` on — a dead RF chain.
    fn kill_antenna(cap: &CsiCapture, antenna: usize, start: usize) -> CsiCapture {
        cap.packets()
            .enumerate()
            .map(|(m, mut p)| {
                if m >= start {
                    for k in 0..p.n_subcarriers() {
                        *p.get_mut(antenna, k) = wimi_phy::complex::Complex::ZERO;
                    }
                }
                p
            })
            .collect()
    }

    /// Returns a copy of the capture with one `subcarrier` zeroed on
    /// `antenna` in every packet — a dead tone on a surviving RF chain.
    fn kill_subcarrier(cap: &CsiCapture, antenna: usize, subcarrier: usize) -> CsiCapture {
        cap.packets()
            .map(|mut p| {
                *p.get_mut(antenna, subcarrier) = wimi_phy::complex::Complex::ZERO;
                p
            })
            .collect()
    }

    #[test]
    fn zeroed_subcarrier_is_rejected_not_selected_fixed_pair() {
        // Regression for the triage/selection disconnect: a subcarrier
        // zeroed on a surviving antenna has constant phase → zero
        // phase-difference variance → BestByVariance used to pick it
        // *first*, and the measurement failed with DegenerateAmplitude
        // despite 29 clean subcarriers being available.
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let base = kill_subcarrier(&base, 0, 5);
        let tar = kill_subcarrier(&tar, 0, 5);
        let wimi = WiMi::new(WiMiConfig {
            pairs: PairSelection::Fixed(0, 1),
            ..WiMiConfig::default()
        });
        let m = wimi.measure(&base, &tar);
        assert_eq!(m.quality.subcarriers_rejected, 1);
        assert!(m
            .quality
            .issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::RejectedSubcarriers { count: 1 })));
        let f = m
            .feature
            .expect("pre-fix this was Err(DegenerateAmplitude)");
        assert!(!f.subcarriers.contains(&5), "selected {:?}", f.subcarriers);
        assert_eq!(f.omega.len(), 4);
        assert!(f.omega.iter().all(|o| o.is_finite()));
    }

    #[test]
    fn zeroed_subcarrier_is_rejected_not_selected_best_pairs() {
        // Same regression through the default joint (Best) path: the
        // zeroed subcarrier poisoned both pairs touching antenna 0,
        // leaving fewer consistent pairs than the ambiguity gate needs.
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let base = kill_subcarrier(&base, 0, 5);
        let tar = kill_subcarrier(&tar, 0, 5);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar);
        assert_eq!(m.quality.subcarriers_rejected, 1);
        let f = m.feature.expect("joint extraction over clean subcarriers");
        assert!(!f.subcarriers.contains(&5), "selected {:?}", f.subcarriers);
        // The clean-capture feature over the same scenario uses the same
        // pipeline; zeroing one rejected tone must not panic or distort
        // the Ω̄ count.
        assert_eq!(f.omega.len(), 4);
    }

    #[test]
    fn measure_on_clean_captures_is_clean_and_matches_extract_feature() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar);
        assert!(m.quality.is_clean(), "issues: {:?}", m.quality.issues);
        assert!(!m.quality.salvaged());
        assert_eq!(m.quality.baseline_packets_kept, 40);
        assert_eq!(m.quality.target_packets_kept, 40);
        assert_eq!(m.quality.antennas_dropped, Vec::<usize>::new());
        assert_eq!(m.quality.pairs_attempted, 3);
        assert_eq!(m.feature, wimi.extract_feature(&base, &tar));
    }

    #[test]
    fn dead_antenna_is_dropped_and_measurement_survives() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let base = kill_antenna(&base, 2, 0);
        let tar = kill_antenna(&tar, 2, 0);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar);
        assert_eq!(m.quality.antennas_dropped, vec![2]);
        assert!(m.quality.salvaged());
        let f = m.feature.expect("salvaged measurement should extract");
        // The reported pair uses original antenna numbering; antenna 2 is
        // dead, so the surviving pair must be (0, 1).
        assert_eq!(f.pair, (0, 1));
        // The salvaged feature matches a genuine two-antenna fixed-pair
        // measurement on the surviving antennas.
        let fixed = WiMi::new(WiMiConfig {
            pairs: PairSelection::Fixed(0, 1),
            ..WiMiConfig::default()
        });
        let two = fixed
            .extract_feature(
                &base.select_antennas(&[0, 1]),
                &tar.select_antennas(&[0, 1]),
            )
            .expect("two-antenna extraction");
        assert_eq!(f.omega, two.omega);
    }

    #[test]
    fn partial_dropout_packets_are_dropped_not_fatal() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        // Antenna 1 dies for the last 8 packets of the target capture:
        // 20 % zero rows, below the dead threshold, so the packets go
        // instead of the antenna.
        let tar = kill_antenna(&tar, 1, 32);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar);
        assert_eq!(m.quality.antennas_dropped, Vec::<usize>::new());
        assert_eq!(m.quality.target_packets_kept, 32);
        assert_eq!(m.quality.baseline_packets_kept, 40);
        assert!(m
            .quality
            .issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::PartialDropout { dropped: 8 })));
        assert!(m.feature.is_ok());
    }

    #[test]
    fn fixed_pair_naming_dead_antenna_reports_antenna_failed() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 40);
        let base = kill_antenna(&base, 1, 0);
        let tar = kill_antenna(&tar, 1, 0);
        let cfg = WiMiConfig {
            pairs: PairSelection::Fixed(0, 1),
            ..WiMiConfig::default()
        };
        let wimi = WiMi::new(cfg);
        let m = wimi.measure(&base, &tar);
        assert_eq!(m.feature, Err(FeatureError::AntennaFailed { antenna: 1 }));
        assert!(m
            .quality
            .issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::DeadAntenna { antenna: 1 })));
    }

    #[test]
    fn non_finite_packets_are_dropped_and_reported() {
        let (base, mut tar_src) = capture_pair(Liquid::Milk, 1, 40);
        let mut packets: Vec<_> = tar_src.packets().collect();
        *packets[5].get_mut(0, 0) = wimi_phy::complex::Complex::new(f64::NAN, 0.0);
        *packets[17].get_mut(2, 3) = wimi_phy::complex::Complex::new(0.0, f64::INFINITY);
        tar_src = CsiCapture::from_packets(packets);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar_src);
        assert_eq!(m.quality.target_packets_kept, 38);
        assert!(m
            .quality
            .issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::NonFinitePackets { dropped: 2 })));
        assert!(m.feature.is_ok());
    }

    #[test]
    fn too_few_survivors_is_insufficient_packets() {
        let (base, tar) = capture_pair(Liquid::Milk, 1, 10);
        // Every target packet goes non-finite.
        let packets: Vec<_> = tar
            .packets()
            .map(|mut p| {
                *p.get_mut(0, 0) = wimi_phy::complex::Complex::new(f64::NAN, 0.0);
                p
            })
            .collect();
        let tar = CsiCapture::from_packets(packets);
        let wimi = WiMi::new(WiMiConfig::default());
        let m = wimi.measure(&base, &tar);
        assert_eq!(
            m.feature,
            Err(FeatureError::InsufficientPackets { kept: 0, needed: 4 })
        );
        assert_eq!(m.quality.target_packets_kept, 0);
    }

    #[test]
    fn config_accessors() {
        let wimi = WiMi::new(WiMiConfig::default());
        assert!(!wimi.is_trained());
        assert_eq!(
            wimi.config().subcarriers,
            SubcarrierSelection::BestByVariance(4)
        );
    }
}
