//! "Good" subcarrier selection (paper §III-B, Eq. 7, Fig. 6).
//!
//! Frequency diversity means multipath hits some subcarriers harder than
//! others. Subcarriers whose cross-antenna phase difference has the
//! smallest variance across packets are the least multipath-contaminated;
//! WiMi selects the `P` best and uses only those for material sensing
//! (the paper uses P = 4 and shows subcarriers 5, 20, 23, 24 winning in
//! its Fig. 6 example).

use crate::phase::PhaseDifferenceProfile;

/// Strategy for choosing which subcarriers feed the material feature.
#[derive(Debug, Clone, PartialEq)]
pub enum SubcarrierSelection {
    /// Pick the `P` subcarriers with smallest phase-difference variance
    /// (the paper's method).
    BestByVariance(usize),
    /// Use an explicit fixed set (for the Fig. 13 random-vs-good
    /// comparison and for ablations).
    Fixed(Vec<usize>),
}

impl Default for SubcarrierSelection {
    fn default() -> Self {
        SubcarrierSelection::BestByVariance(4)
    }
}

impl SubcarrierSelection {
    /// Resolves the strategy to concrete subcarrier indices (ascending),
    /// given variance profiles from the baseline and target captures.
    /// Variances of the two phases of the measurement are summed so a
    /// subcarrier must be clean in *both* to win.
    ///
    /// # Panics
    ///
    /// Panics if the profiles disagree in length, a fixed index is out of
    /// range, or the requested count is zero or exceeds the subcarrier
    /// count.
    pub fn resolve(
        &self,
        baseline: &PhaseDifferenceProfile,
        target: &PhaseDifferenceProfile,
    ) -> Vec<usize> {
        self.resolve_excluding(baseline, target, &[])
    }

    /// Like [`SubcarrierSelection::resolve`], but subcarriers in
    /// `rejected` (indices triage found unusable — e.g. a zeroed
    /// subcarrier on a surviving antenna) are excluded from
    /// [`SubcarrierSelection::BestByVariance`] ranking.
    ///
    /// The exclusion matters because an unusable subcarrier can *win* the
    /// variance ranking: a zeroed subcarrier has constant (zero) phase,
    /// hence zero phase-difference variance, and would be picked first —
    /// only to fail downstream with a degenerate amplitude.
    ///
    /// Panic-free fallback: when fewer than `P` subcarriers survive the
    /// exclusion, every survivor is taken and the remainder is filled
    /// from the rejected set in variance order, keeping the feature
    /// vector's length fixed (the classifier's input layout must not
    /// change with capture quality). [`SubcarrierSelection::Fixed`] is an
    /// explicit operator choice (ablations, Fig. 13 comparisons) and
    /// ignores `rejected`.
    ///
    /// # Panics
    ///
    /// Same contract as [`SubcarrierSelection::resolve`]: profile length
    /// mismatch, out-of-range fixed index, or a zero/oversized count.
    pub fn resolve_excluding(
        &self,
        baseline: &PhaseDifferenceProfile,
        target: &PhaseDifferenceProfile,
        rejected: &[usize],
    ) -> Vec<usize> {
        assert_eq!(
            baseline.len(),
            target.len(),
            "profiles must cover the same subcarriers"
        );
        let n = baseline.len();
        match self {
            SubcarrierSelection::BestByVariance(p) => {
                assert!(*p > 0, "must select at least one subcarrier");
                assert!(*p <= n, "cannot select more subcarriers than exist");
                let mut scored: Vec<(usize, f64)> = (0..n)
                    .map(|k| (k, baseline.variance[k] + target.variance[k]))
                    .collect();
                scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                let clean = scored.iter().filter(|(k, _)| !rejected.contains(k));
                // Fallback fill, best rejected first.
                let bad = scored.iter().filter(|(k, _)| rejected.contains(k));
                let mut chosen: Vec<usize> = clean.chain(bad).take(*p).map(|&(k, _)| k).collect();
                chosen.sort_unstable();
                chosen
            }
            SubcarrierSelection::Fixed(set) => {
                assert!(!set.is_empty(), "must select at least one subcarrier");
                assert!(
                    set.iter().all(|&k| k < n),
                    "fixed subcarrier index out of range"
                );
                let mut chosen = set.clone();
                chosen.sort_unstable();
                chosen.dedup();
                chosen
            }
        }
    }
}

/// Ranks all subcarriers by combined variance, cleanest first (useful for
/// reporting Fig. 6-style tables).
pub fn rank_subcarriers(
    baseline: &PhaseDifferenceProfile,
    target: &PhaseDifferenceProfile,
) -> Vec<(usize, f64)> {
    assert_eq!(
        baseline.len(),
        target.len(),
        "profiles must cover the same subcarriers"
    );
    let mut scored: Vec<(usize, f64)> = (0..baseline.len())
        .map(|k| (k, baseline.variance[k] + target.variance[k]))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(variances: Vec<f64>) -> PhaseDifferenceProfile {
        PhaseDifferenceProfile {
            pair: (0, 1),
            mean: vec![0.0; variances.len()],
            variance: variances,
        }
    }

    #[test]
    fn best_by_variance_picks_smallest() {
        let base = profile(vec![0.5, 0.1, 0.9, 0.05, 0.3]);
        let tar = profile(vec![0.4, 0.1, 0.8, 0.05, 0.3]);
        let chosen = SubcarrierSelection::BestByVariance(2).resolve(&base, &tar);
        assert_eq!(chosen, vec![1, 3]);
    }

    #[test]
    fn selection_requires_cleanliness_in_both_captures() {
        // Subcarrier 0 is clean in baseline but filthy in target → must
        // lose to subcarrier 2 which is decent in both.
        let base = profile(vec![0.01, 0.5, 0.10]);
        let tar = profile(vec![0.90, 0.5, 0.12]);
        let chosen = SubcarrierSelection::BestByVariance(1).resolve(&base, &tar);
        assert_eq!(chosen, vec![2]);
    }

    #[test]
    fn fixed_selection_passes_through_sorted_dedup() {
        let base = profile(vec![0.0; 10]);
        let tar = profile(vec![0.0; 10]);
        let chosen = SubcarrierSelection::Fixed(vec![7, 2, 7, 5]).resolve(&base, &tar);
        assert_eq!(chosen, vec![2, 5, 7]);
    }

    #[test]
    fn excluded_subcarrier_loses_even_with_zero_variance() {
        // A zeroed subcarrier has constant phase → zero variance → would
        // win the ranking; triage rejection must override that.
        let base = profile(vec![0.0, 0.3, 0.1, 0.2]);
        let tar = profile(vec![0.0, 0.3, 0.1, 0.2]);
        let chosen = SubcarrierSelection::BestByVariance(2).resolve_excluding(&base, &tar, &[0]);
        assert_eq!(chosen, vec![2, 3]);
    }

    #[test]
    fn exclusion_falls_back_when_too_few_survive() {
        // Only one clean subcarrier for P = 3: take it, then fill from
        // the rejected set in variance order — never panic, and keep the
        // selection length fixed.
        let base = profile(vec![0.4, 0.1, 0.3, 0.2]);
        let tar = profile(vec![0.0; 4]);
        let sel = SubcarrierSelection::BestByVariance(3);
        let chosen = sel.resolve_excluding(&base, &tar, &[0, 2, 3]);
        assert_eq!(chosen.len(), 3);
        assert!(chosen.contains(&1));
        assert_eq!(chosen, vec![1, 2, 3]); // 0.2 and 0.3 beat 0.4
                                           // Everything rejected: still a full-length, panic-free answer.
        let all_bad = sel.resolve_excluding(&base, &tar, &[0, 1, 2, 3]);
        assert_eq!(all_bad, vec![1, 2, 3]);
    }

    #[test]
    fn fixed_selection_ignores_rejections() {
        let base = profile(vec![0.0; 6]);
        let tar = profile(vec![0.0; 6]);
        let chosen = SubcarrierSelection::Fixed(vec![1, 4]).resolve_excluding(&base, &tar, &[1]);
        assert_eq!(chosen, vec![1, 4]);
    }

    #[test]
    fn empty_rejection_set_matches_resolve() {
        let base = profile(vec![0.5, 0.1, 0.9, 0.05, 0.3]);
        let tar = profile(vec![0.4, 0.1, 0.8, 0.05, 0.3]);
        let sel = SubcarrierSelection::BestByVariance(3);
        assert_eq!(
            sel.resolve(&base, &tar),
            sel.resolve_excluding(&base, &tar, &[])
        );
    }

    #[test]
    fn rank_is_total_and_sorted() {
        let base = profile(vec![0.3, 0.1, 0.2]);
        let tar = profile(vec![0.0, 0.0, 0.0]);
        let ranked = rank_subcarriers(&base, &tar);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, 1);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn default_is_paper_p4() {
        assert_eq!(
            SubcarrierSelection::default(),
            SubcarrierSelection::BestByVariance(4)
        );
    }

    #[test]
    #[should_panic(expected = "more subcarriers than exist")]
    fn rejects_oversized_p() {
        let base = profile(vec![0.0; 3]);
        let tar = profile(vec![0.0; 3]);
        let _ = SubcarrierSelection::BestByVariance(4).resolve(&base, &tar);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_fixed_index() {
        let base = profile(vec![0.0; 3]);
        let tar = profile(vec![0.0; 3]);
        let _ = SubcarrierSelection::Fixed(vec![5]).resolve(&base, &tar);
    }
}
