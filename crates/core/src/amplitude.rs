//! CSI amplitude denoising and the cross-antenna amplitude ratio
//! (paper §III-C).
//!
//! The pipeline per (antenna, subcarrier) amplitude time series:
//!
//! 1. 3σ outlier rejection (repair by interpolation),
//! 2. spatially-selective wavelet-correlation denoising,
//! 3. cross-antenna ratio `|H_a|/|H_b|`, whose common AGC/multipath
//!    variation cancels (paper Fig. 8).

use wimi_dsp::outlier::{reject_outliers_3sigma, reject_outliers_into, OutlierScratch};
use wimi_dsp::stats::{median_in, variance};
use wimi_dsp::wavelet::denoise::DenoiseScratch;
use wimi_dsp::wavelet::CorrelationDenoiser;
use wimi_phy::csi::CsiCapture;

/// Configuration of the amplitude stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeConfig {
    /// Apply 3σ outlier rejection.
    pub reject_outliers: bool,
    /// Apply the wavelet-correlation denoiser.
    pub wavelet_denoise: bool,
    /// Denoiser settings.
    pub denoiser: CorrelationDenoiser,
}

impl Default for AmplitudeConfig {
    fn default() -> Self {
        AmplitudeConfig {
            reject_outliers: true,
            wavelet_denoise: true,
            denoiser: CorrelationDenoiser::default(),
        }
    }
}

impl AmplitudeConfig {
    /// A configuration with every cleaning step off (the paper's
    /// "w/o noise removed" ablation of Fig. 14).
    pub fn raw() -> Self {
        AmplitudeConfig {
            reject_outliers: false,
            wavelet_denoise: false,
            denoiser: CorrelationDenoiser::default(),
        }
    }

    /// Cleans one amplitude time series according to the configuration.
    pub fn clean_series(&self, series: &[f64]) -> Vec<f64> {
        let mut xs = series.to_vec();
        if self.reject_outliers {
            xs = reject_outliers_3sigma(&xs);
        }
        if self.wavelet_denoise {
            xs = self.denoiser.denoise(&xs);
        }
        xs
    }

    /// [`Self::clean_series`] through caller-owned buffers — same bits,
    /// no steady-state allocation.
    // wlint: hot
    pub fn clean_series_into(
        &self,
        series: &[f64],
        scratch: &mut CleanScratch,
        out: &mut Vec<f64>,
    ) {
        if self.reject_outliers {
            reject_outliers_into(series, 3.0, &mut scratch.outlier, &mut scratch.rejected);
            if self.wavelet_denoise {
                self.denoiser
                    .denoise_into(&scratch.rejected, &mut scratch.denoise, out);
            } else {
                out.clear();
                out.extend_from_slice(&scratch.rejected);
            }
        } else if self.wavelet_denoise {
            self.denoiser
                .denoise_into(series, &mut scratch.denoise, out);
        } else {
            out.clear();
            out.extend_from_slice(series);
        }
    }
}

/// Scratch buffers for [`AmplitudeConfig::clean_series_into`].
#[derive(Debug, Clone, Default)]
pub struct CleanScratch {
    rejected: Vec<f64>,
    outlier: OutlierScratch,
    denoise: DenoiseScratch,
}

/// Every cleaned per-(antenna, subcarrier) amplitude time series of one
/// capture, computed once and shared across antenna pairs.
///
/// The amplitude cleaning chain (outlier repair + wavelet denoise) is a
/// function of a single antenna's series, yet each antenna participates in
/// several pairs — computing the cleaned series per *pair* repeats the
/// most expensive stage of the pipeline. Building this cache up front
/// de-duplicates that work; [`AmplitudeRatioProfile::from_cleaned`] then
/// forms ratios from the cached series, bit-for-bit equal to
/// [`AmplitudeRatioProfile::compute`].
#[derive(Debug, Clone)]
pub struct CleanedAmplitudes {
    n_antennas: usize,
    n_subcarriers: usize,
    series: Vec<Vec<f64>>,
}

impl CleanedAmplitudes {
    /// Cleans every (antenna, subcarrier) series of the capture.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty.
    pub fn compute(capture: &CsiCapture, config: &AmplitudeConfig) -> Self {
        assert!(!capture.is_empty(), "capture holds no packets");
        let n_antennas = capture.n_antennas();
        let n_subcarriers = capture.n_subcarriers();
        let mut scratch = CleanScratch::default();
        let mut raw = Vec::new();
        let mut series = Vec::with_capacity(n_antennas * n_subcarriers);
        for a in 0..n_antennas {
            for k in 0..n_subcarriers {
                capture.amplitude_series_into(a, k, &mut raw);
                let mut cleaned = Vec::new();
                config.clean_series_into(&raw, &mut scratch, &mut cleaned);
                series.push(cleaned);
            }
        }
        CleanedAmplitudes {
            n_antennas,
            n_subcarriers,
            series,
        }
    }

    /// The cleaned series of one (antenna, subcarrier).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn series(&self, antenna: usize, subcarrier: usize) -> &[f64] {
        assert!(antenna < self.n_antennas, "antenna index out of range");
        assert!(subcarrier < self.n_subcarriers, "subcarrier out of range");
        &self.series[antenna * self.n_subcarriers + subcarrier]
    }

    /// Number of antennas covered.
    pub fn n_antennas(&self) -> usize {
        self.n_antennas
    }

    /// Number of subcarriers covered.
    pub fn n_subcarriers(&self) -> usize {
        self.n_subcarriers
    }
}

/// Per-subcarrier amplitude-ratio summary for one antenna pair over a
/// capture.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeRatioProfile {
    /// Antenna pair (a, b).
    pub pair: (usize, usize),
    /// Median cleaned ratio `|H_a|/|H_b|` per subcarrier. The median (not
    /// the arithmetic mean) because the per-packet ratio is heavy-tailed:
    /// a single packet catching the denominator antenna in a deep fade
    /// skews the mean of a 20-packet capture enough to corrupt `ln ΔΨ`
    /// for low-loss liquids.
    pub mean: Vec<f64>,
    /// Variance of the cleaned per-packet ratio per subcarrier.
    pub variance: Vec<f64>,
}

impl AmplitudeRatioProfile {
    /// Computes the profile: cleans each antenna's amplitude series, then
    /// forms the per-packet ratio and summarises it.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty, indices are out of range or equal.
    pub fn compute(capture: &CsiCapture, a: usize, b: usize, config: &AmplitudeConfig) -> Self {
        assert!(!capture.is_empty(), "capture holds no packets");
        assert!(a != b, "amplitude ratio needs two distinct antennas");
        let n_ant = capture.n_antennas();
        assert!(a < n_ant && b < n_ant, "antenna index out of range");

        let n_sub = capture.n_subcarriers();
        let mut scratch = CleanScratch::default();
        let mut summary = RatioSummary::new(n_sub);
        let (mut raw, mut sa, mut sb) = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..n_sub {
            capture.amplitude_series_into(a, k, &mut raw);
            config.clean_series_into(&raw, &mut scratch, &mut sa);
            capture.amplitude_series_into(b, k, &mut raw);
            config.clean_series_into(&raw, &mut scratch, &mut sb);
            summary.push_ratio(&sa, &sb);
        }
        summary.finish(a, b)
    }

    /// Builds the profile from pre-cleaned series — bit-for-bit equal to
    /// [`Self::compute`] with the same configuration, without repeating
    /// the per-antenna cleaning for every pair the antenna appears in.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn from_cleaned(cleaned: &CleanedAmplitudes, a: usize, b: usize) -> Self {
        assert!(a != b, "amplitude ratio needs two distinct antennas");
        let n_ant = cleaned.n_antennas();
        assert!(a < n_ant && b < n_ant, "antenna index out of range");

        let n_sub = cleaned.n_subcarriers();
        let mut summary = RatioSummary::new(n_sub);
        for k in 0..n_sub {
            summary.push_ratio(cleaned.series(a, k), cleaned.series(b, k));
        }
        summary.finish(a, b)
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Returns `true` for an empty profile (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Mean ratio variance across subcarriers — the pair-stability score
    /// for antenna selection (paper Fig. 10b).
    pub fn mean_variance(&self) -> f64 {
        let finite: Vec<f64> = self
            .variance
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    }
}

/// Accumulates the per-subcarrier median/variance of the cleaned ratio,
/// reusing one ratio buffer and one sort buffer across subcarriers.
struct RatioSummary {
    mean: Vec<f64>,
    variance: Vec<f64>,
    ratio: Vec<f64>,
    sort: Vec<f64>,
}

impl RatioSummary {
    fn new(n_sub: usize) -> Self {
        RatioSummary {
            mean: Vec::with_capacity(n_sub),
            variance: Vec::with_capacity(n_sub),
            ratio: Vec::new(),
            sort: Vec::new(),
        }
    }

    // wlint: hot
    fn push_ratio(&mut self, sa: &[f64], sb: &[f64]) {
        self.ratio.clear();
        self.ratio.extend(
            sa.iter()
                .zip(sb)
                .map(|(x, y)| if *y > 0.0 { x / y } else { f64::NAN })
                .filter(|r| r.is_finite()),
        );
        if self.ratio.is_empty() {
            self.mean.push(f64::NAN);
            self.variance.push(f64::NAN);
        } else {
            self.mean.push(median_in(&self.ratio, &mut self.sort));
            self.variance.push(variance(&self.ratio));
        }
    }

    fn finish(self, a: usize, b: usize) -> AmplitudeRatioProfile {
        AmplitudeRatioProfile {
            pair: (a, b),
            mean: self.mean,
            variance: self.variance,
        }
    }
}

/// Per-antenna amplitude variance per subcarrier (uncleaned) — used for
/// the Fig. 8 comparison of single-antenna amplitude vs. the ratio.
pub fn per_antenna_amplitude_variance(capture: &CsiCapture, antenna: usize) -> Vec<f64> {
    assert!(!capture.is_empty(), "capture holds no packets");
    (0..capture.n_subcarriers())
        .map(|k| variance(&capture.amplitude_series(antenna, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_dsp::stats::mean;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture() -> CsiCapture {
        let mut sim = Simulator::new(Scenario::builder().build(), 17);
        sim.capture(120)
    }

    #[test]
    fn profile_dimensions() {
        let cap = capture();
        let prof = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::default());
        assert_eq!(prof.len(), 30);
        assert_eq!(prof.pair, (0, 1));
        assert!(!prof.is_empty());
        assert!(prof.mean.iter().all(|m| m.is_finite() && *m > 0.0));
    }

    #[test]
    fn ratio_is_more_stable_than_single_antenna() {
        // Reproduces the paper's Fig. 8 observation: AGC wobble and common
        // multipath cancel in the ratio.
        let cap = capture();
        let prof = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::raw());
        let ant0 = per_antenna_amplitude_variance(&cap, 0);
        // Compare normalised variation (variance / mean²) averaged over
        // subcarriers.
        let mean_amp: Vec<f64> = (0..30).map(|k| mean(&cap.amplitude_series(0, k))).collect();
        let cv_ant: f64 = (0..30)
            .map(|k| ant0[k] / (mean_amp[k] * mean_amp[k]))
            .sum::<f64>()
            / 30.0;
        let cv_ratio: f64 = (0..30)
            .map(|k| prof.variance[k] / (prof.mean[k] * prof.mean[k]))
            .sum::<f64>()
            / 30.0;
        assert!(
            cv_ratio < cv_ant,
            "ratio CV ({cv_ratio:.5}) should beat single-antenna CV ({cv_ant:.5})"
        );
    }

    #[test]
    fn cached_profiles_match_direct_compute_bitwise() {
        let cap = capture();
        for config in [AmplitudeConfig::default(), AmplitudeConfig::raw()] {
            let cleaned = CleanedAmplitudes::compute(&cap, &config);
            for (a, b) in [(0usize, 1usize), (0, 2), (1, 2), (2, 0)] {
                let direct = AmplitudeRatioProfile::compute(&cap, a, b, &config);
                let cached = AmplitudeRatioProfile::from_cleaned(&cleaned, a, b);
                assert_eq!(direct.pair, cached.pair);
                assert_eq!(direct.mean.len(), cached.mean.len());
                for (x, y) in direct.mean.iter().zip(&cached.mean) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                for (x, y) in direct.variance.iter().zip(&cached.variance) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn clean_series_into_matches_allocating_variant_bitwise() {
        let mut series: Vec<f64> = (0..64)
            .map(|i| 1.0 + 0.01 * (i as f64 * 0.4).sin())
            .collect();
        series[30] = 50.0;
        let mut scratch = CleanScratch::default();
        let mut out = Vec::new();
        for config in [
            AmplitudeConfig::default(),
            AmplitudeConfig::raw(),
            AmplitudeConfig {
                reject_outliers: true,
                wavelet_denoise: false,
                denoiser: CorrelationDenoiser::default(),
            },
            AmplitudeConfig {
                reject_outliers: false,
                wavelet_denoise: true,
                denoiser: CorrelationDenoiser::default(),
            },
        ] {
            config.clean_series_into(&series, &mut scratch, &mut out);
            let reference = config.clean_series(&series);
            assert_eq!(out.len(), reference.len());
            for (x, y) in out.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn cleaning_reduces_ratio_variance() {
        let cap = capture();
        let raw = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::raw());
        let cleaned = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::default());
        assert!(
            cleaned.mean_variance() < raw.mean_variance(),
            "cleaning should shrink variance: raw {} vs cleaned {}",
            raw.mean_variance(),
            cleaned.mean_variance()
        );
    }

    #[test]
    fn clean_series_respects_flags() {
        let mut series: Vec<f64> = (0..64)
            .map(|i| 1.0 + 0.01 * (i as f64 * 0.4).sin())
            .collect();
        series[30] = 50.0;
        let raw = AmplitudeConfig::raw().clean_series(&series);
        assert_eq!(raw, series);
        let cleaned = AmplitudeConfig::default().clean_series(&series);
        assert!(cleaned[30] < 2.0, "outlier survived: {}", cleaned[30]);
    }

    #[test]
    #[should_panic(expected = "distinct antennas")]
    fn rejects_same_antenna() {
        let cap = capture();
        let _ = AmplitudeRatioProfile::compute(&cap, 2, 2, &AmplitudeConfig::default());
    }

    #[test]
    fn mean_variance_skips_nans() {
        let prof = AmplitudeRatioProfile {
            pair: (0, 1),
            mean: vec![1.0, 1.0],
            variance: vec![0.5, f64::NAN],
        };
        assert!((prof.mean_variance() - 0.5).abs() < 1e-15);
    }
}
