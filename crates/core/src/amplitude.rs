//! CSI amplitude denoising and the cross-antenna amplitude ratio
//! (paper §III-C).
//!
//! The pipeline per (antenna, subcarrier) amplitude time series:
//!
//! 1. 3σ outlier rejection (repair by interpolation),
//! 2. spatially-selective wavelet-correlation denoising,
//! 3. cross-antenna ratio `|H_a|/|H_b|`, whose common AGC/multipath
//!    variation cancels (paper Fig. 8).

use wimi_dsp::outlier::reject_outliers_3sigma;
use wimi_dsp::stats::{median, variance};
use wimi_dsp::wavelet::CorrelationDenoiser;
use wimi_phy::csi::CsiCapture;

/// Configuration of the amplitude stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeConfig {
    /// Apply 3σ outlier rejection.
    pub reject_outliers: bool,
    /// Apply the wavelet-correlation denoiser.
    pub wavelet_denoise: bool,
    /// Denoiser settings.
    pub denoiser: CorrelationDenoiser,
}

impl Default for AmplitudeConfig {
    fn default() -> Self {
        AmplitudeConfig {
            reject_outliers: true,
            wavelet_denoise: true,
            denoiser: CorrelationDenoiser::default(),
        }
    }
}

impl AmplitudeConfig {
    /// A configuration with every cleaning step off (the paper's
    /// "w/o noise removed" ablation of Fig. 14).
    pub fn raw() -> Self {
        AmplitudeConfig {
            reject_outliers: false,
            wavelet_denoise: false,
            denoiser: CorrelationDenoiser::default(),
        }
    }

    /// Cleans one amplitude time series according to the configuration.
    pub fn clean_series(&self, series: &[f64]) -> Vec<f64> {
        let mut xs = series.to_vec();
        if self.reject_outliers {
            xs = reject_outliers_3sigma(&xs);
        }
        if self.wavelet_denoise {
            xs = self.denoiser.denoise(&xs);
        }
        xs
    }
}

/// Per-subcarrier amplitude-ratio summary for one antenna pair over a
/// capture.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeRatioProfile {
    /// Antenna pair (a, b).
    pub pair: (usize, usize),
    /// Median cleaned ratio `|H_a|/|H_b|` per subcarrier. The median (not
    /// the arithmetic mean) because the per-packet ratio is heavy-tailed:
    /// a single packet catching the denominator antenna in a deep fade
    /// skews the mean of a 20-packet capture enough to corrupt `ln ΔΨ`
    /// for low-loss liquids.
    pub mean: Vec<f64>,
    /// Variance of the cleaned per-packet ratio per subcarrier.
    pub variance: Vec<f64>,
}

impl AmplitudeRatioProfile {
    /// Computes the profile: cleans each antenna's amplitude series, then
    /// forms the per-packet ratio and summarises it.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty, indices are out of range or equal.
    pub fn compute(capture: &CsiCapture, a: usize, b: usize, config: &AmplitudeConfig) -> Self {
        assert!(!capture.is_empty(), "capture holds no packets");
        assert!(a != b, "amplitude ratio needs two distinct antennas");
        let n_ant = capture.n_antennas();
        assert!(a < n_ant && b < n_ant, "antenna index out of range");

        let n_sub = capture.n_subcarriers();
        let mut mean_out = Vec::with_capacity(n_sub);
        let mut var_out = Vec::with_capacity(n_sub);
        for k in 0..n_sub {
            let sa = config.clean_series(&capture.amplitude_series(a, k));
            let sb = config.clean_series(&capture.amplitude_series(b, k));
            let ratio: Vec<f64> = sa
                .iter()
                .zip(&sb)
                .map(|(x, y)| if *y > 0.0 { x / y } else { f64::NAN })
                .filter(|r| r.is_finite())
                .collect();
            if ratio.is_empty() {
                mean_out.push(f64::NAN);
                var_out.push(f64::NAN);
            } else {
                mean_out.push(median(&ratio));
                var_out.push(variance(&ratio));
            }
        }
        AmplitudeRatioProfile {
            pair: (a, b),
            mean: mean_out,
            variance: var_out,
        }
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Returns `true` for an empty profile (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Mean ratio variance across subcarriers — the pair-stability score
    /// for antenna selection (paper Fig. 10b).
    pub fn mean_variance(&self) -> f64 {
        let finite: Vec<f64> = self
            .variance
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    }
}

/// Per-antenna amplitude variance per subcarrier (uncleaned) — used for
/// the Fig. 8 comparison of single-antenna amplitude vs. the ratio.
pub fn per_antenna_amplitude_variance(capture: &CsiCapture, antenna: usize) -> Vec<f64> {
    assert!(!capture.is_empty(), "capture holds no packets");
    (0..capture.n_subcarriers())
        .map(|k| variance(&capture.amplitude_series(antenna, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_dsp::stats::mean;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture() -> CsiCapture {
        let mut sim = Simulator::new(Scenario::builder().build(), 17);
        sim.capture(120)
    }

    #[test]
    fn profile_dimensions() {
        let cap = capture();
        let prof = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::default());
        assert_eq!(prof.len(), 30);
        assert_eq!(prof.pair, (0, 1));
        assert!(!prof.is_empty());
        assert!(prof.mean.iter().all(|m| m.is_finite() && *m > 0.0));
    }

    #[test]
    fn ratio_is_more_stable_than_single_antenna() {
        // Reproduces the paper's Fig. 8 observation: AGC wobble and common
        // multipath cancel in the ratio.
        let cap = capture();
        let prof = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::raw());
        let ant0 = per_antenna_amplitude_variance(&cap, 0);
        // Compare normalised variation (variance / mean²) averaged over
        // subcarriers.
        let mean_amp: Vec<f64> = (0..30).map(|k| mean(&cap.amplitude_series(0, k))).collect();
        let cv_ant: f64 = (0..30)
            .map(|k| ant0[k] / (mean_amp[k] * mean_amp[k]))
            .sum::<f64>()
            / 30.0;
        let cv_ratio: f64 = (0..30)
            .map(|k| prof.variance[k] / (prof.mean[k] * prof.mean[k]))
            .sum::<f64>()
            / 30.0;
        assert!(
            cv_ratio < cv_ant,
            "ratio CV ({cv_ratio:.5}) should beat single-antenna CV ({cv_ant:.5})"
        );
    }

    #[test]
    fn cleaning_reduces_ratio_variance() {
        let cap = capture();
        let raw = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::raw());
        let cleaned = AmplitudeRatioProfile::compute(&cap, 0, 1, &AmplitudeConfig::default());
        assert!(
            cleaned.mean_variance() < raw.mean_variance(),
            "cleaning should shrink variance: raw {} vs cleaned {}",
            raw.mean_variance(),
            cleaned.mean_variance()
        );
    }

    #[test]
    fn clean_series_respects_flags() {
        let mut series: Vec<f64> = (0..64)
            .map(|i| 1.0 + 0.01 * (i as f64 * 0.4).sin())
            .collect();
        series[30] = 50.0;
        let raw = AmplitudeConfig::raw().clean_series(&series);
        assert_eq!(raw, series);
        let cleaned = AmplitudeConfig::default().clean_series(&series);
        assert!(cleaned[30] < 2.0, "outlier survived: {}", cleaned[30]);
    }

    #[test]
    #[should_panic(expected = "distinct antennas")]
    fn rejects_same_antenna() {
        let cap = capture();
        let _ = AmplitudeRatioProfile::compute(&cap, 2, 2, &AmplitudeConfig::default());
    }

    #[test]
    fn mean_variance_skips_nans() {
        let prof = AmplitudeRatioProfile {
            pair: (0, 1),
            mean: vec![1.0, 1.0],
            variance: vec![0.5, f64::NAN],
        };
        assert!((prof.mean_variance() - 0.5).abs() < 1e-15);
    }
}
