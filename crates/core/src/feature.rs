//! The size-independent material feature Ω̄ (paper §III-D/E).
//!
//! From the calibrated cross-antenna phase difference and amplitude ratio
//! of a baseline (empty beaker) and target (liquid poured in) capture:
//!
//! - `ΔΘ = (D₁ − D₂)(β_tar − β_free)`   (Eq. 18)
//! - `ΔΨ = e^{−(D₁ − D₂)(α_tar − α_free)}`   (Eq. 19)
//! - `Ω̄ = −ln ΔΨ / (ΔΘ + 2γπ) = (α_tar − α_free)/(β_tar − β_free)`   (Eq. 20–21)
//!
//! The unknown path-length difference `D₁ − D₂` cancels, so Ω̄ depends on
//! the material constants only — target size drops out. The integer γ
//! accounts for phase wrapping of `ΔΘ`; it is resolved by searching the
//! small candidate range for the value that makes Ω̄ consistent across
//! the selected subcarriers (Ω̄ is essentially frequency-flat over one
//! Wi-Fi channel) and sign-consistent with the amplitude ratio.
//!
//! Sign convention: a propagating field accumulates phase as `e^{−jβd}`,
//! so a longer in-material path *lowers* the measured phase while raising
//! the attenuation — `ΔΘ + 2γπ = −(D₁−D₂)(β_tar−β_free)` and
//! `−ln ΔΨ = (D₁−D₂)(α_tar−α_free)` carry opposite signs. We therefore
//! define the feature as `Ω̄ = −(−ln ΔΨ)/(ΔΘ + 2γπ)`, which is positive
//! for every passive liquid (`α_tar > α_free`, `β_tar > β_free`).

use crate::amplitude::AmplitudeRatioProfile;
use crate::error::FeatureError;
use crate::phase::PhaseDifferenceProfile;
use wimi_dsp::stats::{mean, std_dev, wrap_to_pi};

/// Physically plausible range for Ω̄ of liquids at 5 GHz: oil ≈ 0.04,
/// honey ≈ 0.3, brines up to ≈ 0.8. Per-subcarrier values get loose
/// bounds — for near-lossless liquids the amplitude term is tiny and
/// noise can flip an individual subcarrier's sign — while the *mean* must
/// sit in the physical range, which rejects the near-zero junk clusters
/// that large wrong |γ| values produce.
const OMEGA_SUBCARRIER_FLOOR: f64 = -0.10;
const OMEGA_SUBCARRIER_MAX: f64 = 2.5;
const OMEGA_MEAN_FLOOR: f64 = -0.015;
const OMEGA_MEAN_MAX: f64 = 2.0;
/// Absolute floor used when normalising dispersion/spread statistics so
/// legitimately-small Ω̄ (low-loss liquids) is not unfairly penalised.
const OMEGA_NORM_FLOOR: f64 = 0.03;

/// Configuration for feature extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Half-width of the γ search range (candidates `−g..=g`).
    pub gamma_search: i32,
    /// Maximum accepted relative dispersion (std/|mean|) of Ω̄ across
    /// subcarriers; above this the feature is rejected as inconsistent
    /// (blocked LoS, moving liquid, ...).
    pub max_dispersion: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            gamma_search: 3,
            max_dispersion: 0.8,
        }
    }
}

/// The extracted material feature for one antenna pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialFeature {
    /// Antenna pair the feature was computed over.
    pub pair: (usize, usize),
    /// Subcarriers used (indices into the capture's subcarrier axis).
    pub subcarriers: Vec<usize>,
    /// Ω̄ per selected subcarrier.
    pub omega: Vec<f64>,
    /// Wrapped phase change `ΔΘ` per selected subcarrier, radians.
    pub delta_theta: Vec<f64>,
    /// Amplitude ratio change `ΔΨ` per selected subcarrier.
    pub delta_psi: Vec<f64>,
    /// Resolved phase-wrap count γ.
    pub gamma: i32,
    /// Relative dispersion of Ω̄ across subcarriers (quality indicator).
    pub dispersion: f64,
}

impl MaterialFeature {
    /// Mean Ω̄ over the selected subcarriers.
    pub fn omega_mean(&self) -> f64 {
        mean(&self.omega)
    }

    /// The classifier input: per-subcarrier Ω̄ values (fixed length = the
    /// configured subcarrier count).
    pub fn as_vector(&self) -> Vec<f64> {
        self.omega.clone()
    }

    /// Extracts the feature from baseline/target phase and amplitude
    /// profiles restricted to `subcarriers`.
    ///
    /// # Errors
    ///
    /// - [`FeatureError::DegenerateAmplitude`] if any amplitude ratio is
    ///   non-positive or non-finite.
    /// - [`FeatureError::NoConsistentFeature`] if no γ candidate yields a
    ///   sign-consistent, frequency-consistent Ω̄ — the physical signature
    ///   of a target the signal cannot penetrate.
    ///
    /// # Panics
    ///
    /// Panics if the profiles cover different antenna pairs or subcarrier
    /// counts, or `subcarriers` is empty.
    pub fn extract(
        phase_base: &PhaseDifferenceProfile,
        phase_tar: &PhaseDifferenceProfile,
        amp_base: &AmplitudeRatioProfile,
        amp_tar: &AmplitudeRatioProfile,
        subcarriers: &[usize],
        config: &FeatureConfig,
    ) -> Result<MaterialFeature, FeatureError> {
        Self::extract_excluding(
            phase_base,
            phase_tar,
            amp_base,
            amp_tar,
            subcarriers,
            &[],
            config,
        )
    }

    /// Like [`MaterialFeature::extract`], but subcarriers in `rejected`
    /// (triage-found unusable: zero amplitude on a surviving antenna) are
    /// excluded from the *band-level* estimates — the band-median `ln ΔΨ`
    /// and the frequency-slope phase-unwrap anchor. A zeroed subcarrier
    /// reads a bogus constant phase (the argument of complex zero), which
    /// would otherwise corrupt the unwrap chain running across the band.
    ///
    /// # Errors
    ///
    /// Same error contract as [`MaterialFeature::extract`].
    ///
    /// # Panics
    ///
    /// Same panic contract as [`MaterialFeature::extract`].
    #[allow(clippy::too_many_arguments)]
    pub fn extract_excluding(
        phase_base: &PhaseDifferenceProfile,
        phase_tar: &PhaseDifferenceProfile,
        amp_base: &AmplitudeRatioProfile,
        amp_tar: &AmplitudeRatioProfile,
        subcarriers: &[usize],
        rejected: &[usize],
        config: &FeatureConfig,
    ) -> Result<MaterialFeature, FeatureError> {
        assert_eq!(
            phase_base.pair, phase_tar.pair,
            "phase profiles pair mismatch"
        );
        assert_eq!(
            amp_base.pair, amp_tar.pair,
            "amplitude profiles pair mismatch"
        );
        assert_eq!(
            phase_base.pair, amp_base.pair,
            "phase/amplitude pair mismatch"
        );
        assert!(!subcarriers.is_empty(), "need at least one subcarrier");

        // ΔΘ_k (wrapped) per selected subcarrier; ΔΨ reported per selected
        // subcarrier but *used* as a band-median over every subcarrier —
        // Ω̄ is frequency-flat over one Wi-Fi channel, and the median over
        // the full band suppresses per-subcarrier amplitude noise far
        // better than the handful of phase-selected subcarriers could.
        let mut delta_theta = Vec::with_capacity(subcarriers.len());
        let mut delta_psi = Vec::with_capacity(subcarriers.len());
        for &k in subcarriers {
            let dt = wrap_to_pi(phase_tar.mean[k] - phase_base.mean[k]);
            let base_ratio = amp_base.mean[k];
            let tar_ratio = amp_tar.mean[k];
            if !base_ratio.is_finite()
                || !tar_ratio.is_finite()
                || base_ratio <= 0.0
                || tar_ratio <= 0.0
            {
                return Err(FeatureError::DegenerateAmplitude);
            }
            delta_theta.push(dt);
            delta_psi.push(tar_ratio / base_ratio);
        }
        let ln_psi_band =
            band_ln_psi(amp_base, amp_tar, rejected).ok_or(FeatureError::DegenerateAmplitude)?;

        // γ resolution for a single pair: a low-loss liquid cannot have
        // wrapped (γ = 0); a lossy one picks the γ whose unwrapped phase
        // best matches the frequency-slope estimate. (The joint
        // multi-pair extraction in [`Self::extract_joint`] is more robust;
        // this single-pair path serves two-antenna hardware.)
        let mut best_dispersion_any = f64::INFINITY;
        let mut best: Option<GammaCandidate> = None;
        if ln_psi_band.abs() < LOW_LOSS_LN_PSI {
            let zero_cfg = FeatureConfig {
                gamma_search: 0,
                ..config.clone()
            };
            for cand in enumerate_gamma_candidates(
                &delta_theta,
                ln_psi_band,
                &zero_cfg,
                (LOW_LOSS_MEAN_FLOOR, OMEGA_MEAN_MAX),
            ) {
                best_dispersion_any = best_dispersion_any.min(cand.dispersion);
                if cand.dispersion <= config.max_dispersion {
                    best = Some(cand);
                }
            }
        } else {
            let slope_est = slope_unwrapped_estimate(phase_base, phase_tar, rejected);
            let dt_mean = mean(&delta_theta);
            let candidates = enumerate_gamma_candidates(
                &delta_theta,
                ln_psi_band,
                config,
                (0.004, OMEGA_MEAN_MAX),
            );
            for cand in candidates {
                best_dispersion_any = best_dispersion_any.min(cand.dispersion);
                if cand.dispersion > config.max_dispersion {
                    continue;
                }
                let unwrapped = dt_mean + cand.gamma as f64 * std::f64::consts::TAU;
                let dist = if slope_est.is_finite() {
                    (unwrapped - slope_est).abs()
                } else {
                    cand.gamma.abs() as f64
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let b_unwrapped = dt_mean + b.gamma as f64 * std::f64::consts::TAU;
                        let b_dist = if slope_est.is_finite() {
                            (b_unwrapped - slope_est).abs()
                        } else {
                            b.gamma.abs() as f64
                        };
                        dist < b_dist
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }

        match best {
            Some(cand) => Ok(MaterialFeature {
                pair: phase_base.pair,
                subcarriers: subcarriers.to_vec(),
                omega: cand.omegas.clone(),
                delta_theta,
                delta_psi,
                gamma: cand.gamma,
                dispersion: cand.dispersion,
            }),
            None => Err(FeatureError::NoConsistentFeature {
                best_dispersion: best_dispersion_any,
            }),
        }
    }

    /// Jointly extracts the feature over several antenna pairs, using the
    /// smallest-differential pair as a wrap-free anchor to resolve the
    /// phase-wrap count γ of the others.
    ///
    /// A single pair cannot disambiguate γ: when `ΔΘ` is nearly
    /// frequency-flat, every γ gives an equally self-consistent Ω̄ (they
    /// are scaled copies of each other). The physics offers two anchors:
    ///
    /// 1. `|ln ΔΨ|` is unambiguous (no wrapping) and proportional to
    ///    `|D₁ − D₂|`, so the pair with the smallest `|ln ΔΨ|` has the
    ///    smallest path differential — small enough that its `ΔΘ` cannot
    ///    have wrapped (γ = 0). Its Ω̄ estimate, though noisy, is within a
    ///    factor ~2 of the truth, which is all that is needed to pick the
    ///    right γ for the strong pairs (adjacent γ change Ω̄ by ≥ 2×).
    /// 2. If even the *largest* `|ln ΔΨ|` is tiny, the liquid is low-loss;
    ///    Debye liquids with low loss also have low permittivity, hence a
    ///    small `β` contrast, and no pair wraps: γ = 0 everywhere.
    ///
    /// This is the multi-antenna leverage the paper's §III-F points to.
    ///
    /// # Errors
    ///
    /// [`FeatureError::NoConsistentFeature`] when the resolved pairs still
    /// disagree (blocked LoS, moving liquid);
    /// [`FeatureError::DegenerateAmplitude`] when every pair's amplitudes
    /// are unusable.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn extract_joint(
        inputs: &[PairMeasurement<'_>],
        config: &FeatureConfig,
    ) -> Result<MaterialFeature, FeatureError> {
        Self::extract_joint_with_diag(inputs, config).0
    }

    /// Like [`MaterialFeature::extract_joint`], additionally reporting how
    /// many pairs were attempted, usable, and resolved — the pipeline's
    /// [quality report](crate::pipeline::QualityReport) is built from this.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn extract_joint_with_diag(
        inputs: &[PairMeasurement<'_>],
        config: &FeatureConfig,
    ) -> (Result<MaterialFeature, FeatureError>, JointDiagnostics) {
        let mut diag = JointDiagnostics {
            pairs_attempted: inputs.len(),
            ..JointDiagnostics::default()
        };
        let result = Self::extract_joint_inner(inputs, config, &mut diag);
        (result, diag)
    }

    fn extract_joint_inner(
        inputs: &[PairMeasurement<'_>],
        config: &FeatureConfig,
        diag: &mut JointDiagnostics,
    ) -> Result<MaterialFeature, FeatureError> {
        assert!(!inputs.is_empty(), "need at least one pair measurement");

        struct PairData {
            pair: (usize, usize),
            subcarriers: Vec<usize>,
            delta_theta: Vec<f64>,
            delta_psi: Vec<f64>,
            ln_psi_band: f64,
            /// Coarse unwrapped-ΔΘ estimate from the frequency slope.
            unwrapped_est: f64,
        }
        let mut per_pair: Vec<PairData> = Vec::new();
        for m in inputs {
            let mut delta_theta = Vec::with_capacity(m.subcarriers.len());
            let mut delta_psi = Vec::with_capacity(m.subcarriers.len());
            let mut degenerate = false;
            for &k in m.subcarriers {
                let dt = wrap_to_pi(m.phase_tar.mean[k] - m.phase_base.mean[k]);
                let br = m.amp_base.mean[k];
                let tr = m.amp_tar.mean[k];
                if !br.is_finite() || !tr.is_finite() || br <= 0.0 || tr <= 0.0 {
                    degenerate = true;
                    break;
                }
                delta_theta.push(dt);
                delta_psi.push(tr / br);
            }
            // A degenerate selected-subcarrier amplitude is already known
            // here — skip before paying for the band median, and count
            // the two skip reasons separately so diagnostics can tell a
            // bad selection from a bad band.
            if degenerate {
                diag.pairs_skipped_degenerate += 1;
                continue;
            }
            let Some(ln_psi_band) = band_ln_psi(m.amp_base, m.amp_tar, m.rejected) else {
                diag.pairs_skipped_band_unusable += 1;
                continue;
            };
            let unwrapped_est = slope_unwrapped_estimate(m.phase_base, m.phase_tar, m.rejected);
            per_pair.push(PairData {
                pair: m.phase_base.pair,
                subcarriers: m.subcarriers.to_vec(),
                delta_theta,
                delta_psi,
                ln_psi_band,
                unwrapped_est,
            });
        }
        diag.pairs_usable = per_pair.len();
        if per_pair.is_empty() {
            return Err(FeatureError::DegenerateAmplitude);
        }

        let strongest = per_pair
            .iter()
            .map(|p| p.ln_psi_band.abs())
            .fold(0.0f64, f64::max);

        // Resolve γ per pair.
        let mut resolved: Vec<(usize, GammaCandidate)> = Vec::new(); // (pair idx, cand)
        if strongest < LOW_LOSS_LN_PSI {
            // Low-loss liquid: nothing wraps, and slightly negative means
            // (pure amplitude noise on a near-zero contrast) are
            // tolerated. Pairs with a near-zero phase differential carry
            // no information for such liquids — their Ω̄ is noise over
            // noise — and are skipped.
            for (i, p) in per_pair.iter().enumerate() {
                if mean(&p.delta_theta).abs() < LOW_LOSS_MIN_PHASE {
                    continue;
                }
                let zero_cfg = FeatureConfig {
                    gamma_search: 0,
                    ..config.clone()
                };
                if let Some(c) = enumerate_gamma_candidates(
                    &p.delta_theta,
                    p.ln_psi_band,
                    &zero_cfg,
                    (LOW_LOSS_MEAN_FLOOR, OMEGA_MEAN_MAX),
                )
                .into_iter()
                .next()
                {
                    resolved.push((i, c));
                }
            }
        } else {
            // Multi-baseline unwrapping. All pairs share the material's
            // Ω̄, and each pair's wrap-free `−ln ΔΨ` predicts its
            // *unwrapped* phase change: `ΔΘ_true = −lnΔΨ_band / Ω̄`
            // (with the e^{−jβd} sign convention, phase drops as
            // attenuation grows). A 1-D search over Ω̄ scores how well
            // each candidate explains every pair's *wrapped* measurement;
            // pairs with different |D₁−D₂| alias at different rates, so
            // only the true Ω̄ reconciles them — the same principle as
            // multi-baseline interferometric phase unwrapping.
            let dt_band: Vec<f64> = per_pair
                .iter()
                .map(|p| wimi_dsp::stats::circular_mean(&p.delta_theta))
                .collect();
            let mut best_omega = f64::NAN;
            let mut best_score = f64::INFINITY;
            let n_grid = 600usize;
            let (lo, hi) = (OMEGA_GRID_MIN, OMEGA_MEAN_MAX);
            let mut grid_scores = Vec::with_capacity(n_grid);
            for i in 0..n_grid {
                let omega = lo * (hi / lo).powf(i as f64 / (n_grid - 1) as f64);
                let mut score = 0.0;
                let mut wsum: f64 = 0.0;
                for (p, &dt) in per_pair.iter().zip(&dt_band) {
                    let predicted = -p.ln_psi_band / omega;
                    if predicted.abs()
                        > (2 * config.gamma_search as usize + 1) as f64 * std::f64::consts::PI
                    {
                        // This Ω̄ would need more wraps than the geometry
                        // allows; penalise it heavily.
                        score += 10.0;
                        wsum += 1.0;
                        continue;
                    }
                    // Wrapped-phase residual (precise but 2π-ambiguous)…
                    let r = wrap_to_pi(predicted - dt);
                    score += r * r / (PHASE_RESIDUAL_STD * PHASE_RESIDUAL_STD);
                    // …plus the frequency-slope estimate of the unwrapped
                    // phase (coarse but unambiguous): `ΔΘ_true(f)` scales
                    // with `f`, so its slope across the band, extrapolated
                    // to the carrier, estimates the total unwrapped value.
                    if p.unwrapped_est.is_finite() {
                        let rs = predicted - p.unwrapped_est;
                        score += rs * rs / (SLOPE_RESIDUAL_STD * SLOPE_RESIDUAL_STD);
                    }
                    wsum += 1.0;
                }
                score /= wsum.max(1e-9);
                grid_scores.push((omega, score));
                if score < best_score {
                    best_score = score;
                    best_omega = omega;
                }
            }
            if !best_omega.is_finite() || best_score > UNWRAP_SCORE_GATE {
                return Err(FeatureError::NoConsistentFeature {
                    best_dispersion: best_score,
                });
            }
            // Ambiguity detection: at certain beaker placements two pairs'
            // path differentials coincide and a *different wrap hypothesis*
            // explains the data almost as well. Refusing such measurements
            // (→ retake with the beaker nudged) beats silently picking one.
            // An Ω̄ rival only counts if it implies a different γ vector —
            // a smooth score ridge around the same wraps (small-phase
            // liquids) is not ambiguity.
            let gamma_vector = |omega: f64| -> Vec<i32> {
                per_pair
                    .iter()
                    .zip(&dt_band)
                    .map(|(p, &dt)| {
                        ((-p.ln_psi_band / omega - dt) / std::f64::consts::TAU).round() as i32
                    })
                    .collect()
            };
            let best_gammas = gamma_vector(best_omega);
            let rival = grid_scores
                .iter()
                .filter(|(o, _)| {
                    (o / best_omega).ln().abs() > AMBIGUITY_LOG_SEPARATION
                        && gamma_vector(*o) != best_gammas
                })
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min);
            if rival - best_score < AMBIGUITY_MARGIN {
                return Err(FeatureError::NoConsistentFeature {
                    best_dispersion: rival - best_score,
                });
            }
            // Materialise the per-pair candidates implied by Ω̄*.
            for (i, (p, &dt)) in per_pair.iter().zip(&dt_band).enumerate() {
                let predicted = -p.ln_psi_band / best_omega;
                let gamma_f = (predicted - dt) / std::f64::consts::TAU;
                let gamma = gamma_f.round() as i32;
                if gamma.abs() > config.gamma_search {
                    continue;
                }
                let zero_cfg = FeatureConfig {
                    gamma_search: 0,
                    ..config.clone()
                };
                let shifted: Vec<f64> = p
                    .delta_theta
                    .iter()
                    .map(|d| d + gamma as f64 * std::f64::consts::TAU)
                    .collect();
                if let Some(mut c) = enumerate_gamma_candidates(
                    &shifted,
                    p.ln_psi_band,
                    &zero_cfg,
                    (OMEGA_MEAN_FLOOR, OMEGA_MEAN_MAX),
                )
                .into_iter()
                .next()
                {
                    c.gamma = gamma;
                    resolved.push((i, c));
                }
            }
        }
        // With three antennas every measurement offers three pairs; a
        // measurement where fewer than two of them resolve leaves the
        // cross-pair agreement gate below with nothing to check, and a
        // single noise-dominated pair (tiny ΔΘ and ln ΔΨ both near the
        // noise floor) then sails through with a fabricated Ω̄. Refuse
        // instead — the operator re-seats the beaker and retakes. The
        // single-pair case is still served by [`Self::extract`] for
        // genuine two-antenna hardware.
        let min_resolved = if inputs.len() >= 2 { 2 } else { 1 };
        diag.pairs_resolved = resolved.len();
        if resolved.len() < min_resolved {
            return Err(FeatureError::NoConsistentFeature {
                best_dispersion: f64::INFINITY,
            });
        }

        // Consistency gate: the resolved pairs' Ω̄ means must agree. This
        // is what rejects blocked (metal) or churning (flowing) targets.
        let means: Vec<f64> = resolved.iter().map(|(_, c)| mean(&c.omegas)).collect();
        let grand = mean(&means);
        let spread = if means.len() >= 2 {
            let max = means.iter().cloned().fold(f64::MIN, f64::max);
            let min = means.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / grand.abs().max(OMEGA_NORM_FLOOR)
        } else {
            resolved[0].1.dispersion
        };
        if spread > JOINT_SPREAD_GATE * config.max_dispersion {
            return Err(FeatureError::NoConsistentFeature {
                best_dispersion: spread,
            });
        }

        // Primary pair: the strongest phase differential among the
        // resolved (largest unwrapped |ΔΘ| → highest phase SNR; for lossy
        // liquids this coincides with the largest |lnΨ|, while for
        // low-loss liquids |lnΨ| is pure noise and must not decide).
        let denom_mag = |cand: &GammaCandidate, p: &PairData| -> f64 {
            let shift = cand.gamma as f64 * std::f64::consts::TAU;
            mean(&p.delta_theta.iter().map(|d| d + shift).collect::<Vec<_>>()).abs()
        };
        let best = resolved.into_iter().max_by(|(ia, ca), (ib, cb)| {
            denom_mag(ca, &per_pair[*ia]).total_cmp(&denom_mag(cb, &per_pair[*ib]))
        });
        // `resolved` passed the min_resolved gate above, so this branch is
        // unreachable; degrade to the no-feature error rather than panic.
        let Some((idx, cand)) = best else {
            return Err(FeatureError::NoConsistentFeature {
                best_dispersion: f64::INFINITY,
            });
        };
        if cand.dispersion > config.max_dispersion {
            return Err(FeatureError::NoConsistentFeature {
                best_dispersion: cand.dispersion,
            });
        }
        let pdata = &per_pair[idx];
        Ok(MaterialFeature {
            pair: pdata.pair,
            subcarriers: pdata.subcarriers.clone(),
            omega: cand.omegas.clone(),
            delta_theta: pdata.delta_theta.clone(),
            delta_psi: pdata.delta_psi.clone(),
            gamma: cand.gamma,
            dispersion: cand.dispersion,
        })
    }
}

/// Largest-pair `|ln ΔΨ|` below which the liquid is treated as low-loss
/// (γ = 0 everywhere; see [`MaterialFeature::extract_joint`]).
const LOW_LOSS_LN_PSI: f64 = 0.25;
/// Mean-Ω̄ floor used in the low-loss branch, where the amplitude term is
/// pure noise around zero.
const LOW_LOSS_MEAN_FLOOR: f64 = -0.25;
/// Minimum |ΔΘ| (radians) for a pair to count in the low-loss branch.
const LOW_LOSS_MIN_PHASE: f64 = 0.15;
/// Multiplier on `max_dispersion` for the joint cross-pair agreement gate.
const JOINT_SPREAD_GATE: f64 = 1.5;
/// Lower edge of the multi-baseline Ω̄ search grid.
const OMEGA_GRID_MIN: f64 = 0.01;
/// Assumed std dev of the wrapped-phase residual (radians).
const PHASE_RESIDUAL_STD: f64 = 0.20;
/// Assumed std dev of the frequency-slope unwrapped-phase estimate
/// (radians). Coarse — it only gently tilts the score between otherwise
/// tied wrap hypotheses.
const SLOPE_RESIDUAL_STD: f64 = 8.0;
/// Minimum score gap between the best Ω̄ and the best *distant* Ω̄
/// hypothesis; smaller gaps mean the geometry is wrap-ambiguous for this
/// placement and the measurement should be retaken.
const AMBIGUITY_MARGIN: f64 = 4.0;
/// Two Ω̄ hypotheses are "distant" when they differ by more than this in
/// log space (≈ 28 %).
const AMBIGUITY_LOG_SEPARATION: f64 = 0.25;
/// Maximum accepted normalised residual of the multi-baseline unwrapping;
/// larger means the pairs cannot be reconciled (blocked or churning
/// target).
const UNWRAP_SCORE_GATE: f64 = 12.0;

/// Estimates the *unwrapped* cross-antenna phase change from its slope
/// across the band: `ΔΘ_true(f) ∝ f`, so a least-squares slope over the
/// subcarriers, extrapolated to the carrier frequency, recovers the total
/// including any whole 2π turns the per-subcarrier measurement wraps away.
fn slope_unwrapped_estimate(
    phase_base: &PhaseDifferenceProfile,
    phase_tar: &PhaseDifferenceProfile,
    rejected: &[usize],
) -> f64 {
    let n = phase_base.mean.len().min(phase_tar.mean.len());
    let kept: Vec<usize> = (0..n).filter(|k| !rejected.contains(k)).collect();
    if kept.len() < 4 {
        return f64::NAN;
    }
    // Wrapped ΔΘ per kept subcarrier, then unwrap along the band
    // (adjacent kept subcarriers differ by far less than π). A rejected
    // (zeroed) subcarrier reads the argument of complex zero — a bogus
    // constant — and would corrupt the whole chain if left in.
    let mut series = Vec::with_capacity(kept.len());
    let mut prev = 0.0f64;
    for (i, &k) in kept.iter().enumerate() {
        let dt = wrap_to_pi(phase_tar.mean[k] - phase_base.mean[k]);
        let un = if i == 0 {
            dt
        } else {
            prev + wrap_to_pi(dt - prev)
        };
        series.push(un);
        prev = un;
    }
    // Least-squares slope against subcarrier position (uniform index is a
    // good proxy: the Intel 5300 map is nearly uniform). The abscissa is
    // the original index so exclusion gaps keep their true spacing.
    let xs: Vec<f64> = kept.iter().map(|&k| k as f64).collect();
    let mx = mean(&xs);
    let my = mean(&series);
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(&series) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    // A sum of squared deviations is non-negative; non-positive means the
    // abscissa is constant and no slope exists.
    if den <= 0.0 {
        return f64::NAN;
    }
    let slope_per_index = num / den;
    // The reported band spans ~56 subcarrier spacings of 312.5 kHz over a
    // carrier of 5.24 GHz; per reported index the fractional frequency
    // step is (56/29)·312.5 kHz / 5.24 GHz.
    let frac_per_index = (56.0 / (n as f64 - 1.0)) * 312_500.0 / 5.24e9;
    slope_per_index / frac_per_index
}

/// Band-median `−ln ΔΨ` over every finite, positive subcarrier ratio.
/// Returns `None` when fewer than half the subcarriers are usable.
fn band_ln_psi(
    amp_base: &AmplitudeRatioProfile,
    amp_tar: &AmplitudeRatioProfile,
    rejected: &[usize],
) -> Option<f64> {
    let n = amp_base.mean.len().min(amp_tar.mean.len());
    let considered: Vec<usize> = (0..n).filter(|k| !rejected.contains(k)).collect();
    let lps: Vec<f64> = considered
        .iter()
        .filter_map(|&k| {
            let b = amp_base.mean[k];
            let t = amp_tar.mean[k];
            if b.is_finite() && t.is_finite() && b > 0.0 && t > 0.0 {
                Some(-(t / b).ln())
            } else {
                None
            }
        })
        .collect();
    // The half-band quorum is judged over the subcarriers triage kept:
    // rejected ones carry no signal and must not dilute the vote.
    if lps.len() * 2 < considered.len() || lps.is_empty() {
        None
    } else {
        Some(wimi_dsp::stats::median(&lps))
    }
}

/// Joint-extraction pair accounting from
/// [`MaterialFeature::extract_joint_with_diag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JointDiagnostics {
    /// Pairs handed to the extractor.
    pub pairs_attempted: usize,
    /// Pairs whose amplitudes were usable (finite, positive, band-median
    /// computable).
    pub pairs_usable: usize,
    /// Pairs for which a phase-wrap count was resolved.
    pub pairs_resolved: usize,
    /// Pairs skipped because a *selected* subcarrier's amplitude was
    /// degenerate (non-finite or non-positive).
    pub pairs_skipped_degenerate: usize,
    /// Pairs skipped because the whole-band amplitude median was
    /// unusable (fewer than half the kept subcarriers finite/positive).
    pub pairs_skipped_band_unusable: usize,
}

/// One antenna pair's measurement inputs for
/// [`MaterialFeature::extract_joint`].
#[derive(Debug, Clone, Copy)]
pub struct PairMeasurement<'a> {
    /// Baseline phase-difference profile.
    pub phase_base: &'a PhaseDifferenceProfile,
    /// Target phase-difference profile.
    pub phase_tar: &'a PhaseDifferenceProfile,
    /// Baseline amplitude-ratio profile.
    pub amp_base: &'a AmplitudeRatioProfile,
    /// Target amplitude-ratio profile.
    pub amp_tar: &'a AmplitudeRatioProfile,
    /// Selected subcarriers.
    pub subcarriers: &'a [usize],
    /// Subcarriers screening triage rejected (excluded from band-level
    /// estimates; selection already avoids them).
    pub rejected: &'a [usize],
}

#[derive(Debug, Clone)]
struct GammaCandidate {
    gamma: i32,
    omegas: Vec<f64>,
    dispersion: f64,
}

/// Enumerates γ candidates whose Ω̄ values are finite and within the
/// plausible range on every subcarrier, with their relative dispersions.
/// `ln_psi_band` is the band-median `−ln ΔΨ`; `mean_bounds` gates the mean
/// Ω̄ (tighter for lossy liquids, looser for the low-loss branch).
fn enumerate_gamma_candidates(
    delta_theta: &[f64],
    ln_psi_band: f64,
    config: &FeatureConfig,
    mean_bounds: (f64, f64),
) -> Vec<GammaCandidate> {
    let tau = std::f64::consts::TAU;
    let sub_floor = OMEGA_SUBCARRIER_FLOOR.min(mean_bounds.0 * 2.5);
    let mut out = Vec::new();
    for gamma in -config.gamma_search..=config.gamma_search {
        let mut omegas = Vec::with_capacity(delta_theta.len());
        let mut valid = true;
        for dt in delta_theta {
            let denom = dt + gamma as f64 * tau;
            // A zero denominator yields ±inf or NaN, which the finiteness
            // gate below rejects — no explicit zero test needed.
            let omega = -ln_psi_band / denom;
            if !omega.is_finite() || !(sub_floor..=OMEGA_SUBCARRIER_MAX).contains(&omega) {
                valid = false;
                break;
            }
            omegas.push(omega);
        }
        if !valid {
            continue;
        }
        let m = mean(&omegas);
        if !(mean_bounds.0..=mean_bounds.1).contains(&m) {
            continue;
        }
        let dispersion = std_dev(&omegas) / m.abs().max(OMEGA_NORM_FLOOR);
        out.push(GammaCandidate {
            gamma,
            omegas,
            dispersion,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds synthetic profiles implementing the paper's equations
    /// exactly: ΔΘ_k = ΔD·(β−β₀), ΔΨ_k = e^{−ΔD·α}.
    fn synthetic(
        delta_d: f64,
        alpha: f64,
        beta_contrast: f64,
        n_sub: usize,
    ) -> (
        PhaseDifferenceProfile,
        PhaseDifferenceProfile,
        AmplitudeRatioProfile,
        AmplitudeRatioProfile,
    ) {
        // Per-index fractional frequency step matching the slope
        // estimator's model of the band (see slope_unwrapped_estimate).
        let frac = (56.0 / (n_sub as f64 - 1.0)) * 312_500.0 / 5.24e9;
        let base_phase = vec![0.3; n_sub];
        let tar_phase: Vec<f64> = (0..n_sub)
            .map(|k| {
                // Physical frequency dependence across subcarriers; phase
                // drops with in-material path (e^{−jβd} convention).
                let scale = 1.0 + frac * k as f64;
                wrap_to_pi(0.3 - delta_d * beta_contrast * scale)
            })
            .collect();
        let base_amp = vec![1.2; n_sub];
        let tar_amp: Vec<f64> = (0..n_sub)
            .map(|k| {
                let scale = 1.0 + 0.002 * k as f64;
                1.2 * (-delta_d * alpha * scale).exp()
            })
            .collect();
        (
            PhaseDifferenceProfile {
                pair: (0, 1),
                mean: base_phase,
                variance: vec![0.0; n_sub],
            },
            PhaseDifferenceProfile {
                pair: (0, 1),
                mean: tar_phase,
                variance: vec![0.0; n_sub],
            },
            AmplitudeRatioProfile {
                pair: (0, 1),
                mean: base_amp,
                variance: vec![0.0; n_sub],
            },
            AmplitudeRatioProfile {
                pair: (0, 1),
                mean: tar_amp,
                variance: vec![0.0; n_sub],
            },
        )
    }

    #[test]
    fn recovers_omega_without_wrapping() {
        // Oil-like: ΔΘ < π, γ = 0.
        let (pb, pt, ab, at) = synthetic(0.007, 2.8, 65.0, 4);
        let feat =
            MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &FeatureConfig::default())
                .unwrap();
        assert_eq!(feat.gamma, 0);
        let expect = 2.8 / 65.0;
        assert!(
            (feat.omega_mean() - expect).abs() / expect < 0.05,
            "omega = {}, expect {expect}",
            feat.omega_mean()
        );
    }

    #[test]
    fn recovers_omega_with_phase_wrap() {
        // Water-like: ΔD·(β−β₀) ≈ 6.1 rad of phase *drop* → the wrapped
        // measurement needs γ = −1 to recover the true −6.1 rad.
        let (pb, pt, ab, at) = synthetic(0.0073, 110.0, 830.0, 4);
        let feat =
            MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &FeatureConfig::default())
                .unwrap();
        assert_eq!(feat.gamma, -1);
        let expect = 110.0 / 830.0;
        assert!(
            (feat.omega_mean() - expect).abs() / expect < 0.05,
            "omega = {}, expect {expect}",
            feat.omega_mean()
        );
    }

    #[test]
    fn feature_is_size_independent() {
        // Two different ΔD (container sizes/positions) must give the same Ω̄.
        let (pb1, pt1, ab1, at1) = synthetic(0.004, 110.0, 830.0, 4);
        let (pb2, pt2, ab2, at2) = synthetic(0.009, 110.0, 830.0, 4);
        let cfg = FeatureConfig::default();
        let f1 = MaterialFeature::extract(&pb1, &pt1, &ab1, &at1, &[0, 1, 2, 3], &cfg).unwrap();
        let f2 = MaterialFeature::extract(&pb2, &pt2, &ab2, &at2, &[0, 1, 2, 3], &cfg).unwrap();
        assert!(
            (f1.omega_mean() - f2.omega_mean()).abs() / f1.omega_mean() < 0.05,
            "size leak: {} vs {}",
            f1.omega_mean(),
            f2.omega_mean()
        );
    }

    #[test]
    fn negative_delta_d_works() {
        // Antenna 2's chord longer than antenna 1's: both ΔΘ and ln ΔΨ flip
        // sign; Ω̄ must come out the same.
        let (pb, pt, ab, at) = synthetic(-0.006, 110.0, 830.0, 4);
        let feat =
            MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &FeatureConfig::default())
                .unwrap();
        let expect = 110.0 / 830.0;
        assert!(
            (feat.omega_mean() - expect).abs() / expect < 0.05,
            "omega = {}",
            feat.omega_mean()
        );
        assert!(feat.gamma >= 0);
    }

    #[test]
    fn rejects_random_phases_as_inconsistent() {
        // Uncorrelated phase/amplitude (blocked LoS): no γ can reconcile
        // the subcarriers.
        let n = 4;
        let pb = PhaseDifferenceProfile {
            pair: (0, 1),
            mean: vec![0.0; n],
            variance: vec![0.0; n],
        };
        let pt = PhaseDifferenceProfile {
            pair: (0, 1),
            mean: vec![2.9, -1.3, 0.4, -2.2],
            variance: vec![0.0; n],
        };
        let ab = AmplitudeRatioProfile {
            pair: (0, 1),
            mean: vec![1.0; n],
            variance: vec![0.0; n],
        };
        let at = AmplitudeRatioProfile {
            pair: (0, 1),
            mean: vec![0.8, 1.4, 0.7, 1.2],
            variance: vec![0.0; n],
        };
        let cfg = FeatureConfig {
            gamma_search: 3,
            max_dispersion: 0.3,
        };
        let res = MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &cfg);
        assert!(matches!(res, Err(FeatureError::NoConsistentFeature { .. })));
    }

    #[test]
    fn rejects_degenerate_amplitude() {
        let (pb, pt, ab, mut at) = synthetic(0.007, 2.8, 65.0, 4);
        at.mean[2] = 0.0;
        let res =
            MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &FeatureConfig::default());
        assert_eq!(res, Err(FeatureError::DegenerateAmplitude));
    }

    #[test]
    fn as_vector_matches_omega() {
        let (pb, pt, ab, at) = synthetic(0.007, 2.8, 65.0, 3);
        let feat =
            MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2], &FeatureConfig::default())
                .unwrap();
        assert_eq!(feat.as_vector(), feat.omega);
        assert_eq!(feat.as_vector().len(), 3);
        assert!(feat.dispersion < 0.1);
    }

    #[test]
    fn distinguishes_materials() {
        // Water-like vs oil-like targets must yield clearly different Ω̄.
        let cfg = FeatureConfig::default();
        let (pb, pt, ab, at) = synthetic(0.007, 110.0, 830.0, 4);
        let water = MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &cfg).unwrap();
        let (pb, pt, ab, at) = synthetic(0.007, 2.8, 65.0, 4);
        let oil = MaterialFeature::extract(&pb, &pt, &ab, &at, &[0, 1, 2, 3], &cfg).unwrap();
        assert!((water.omega_mean() - oil.omega_mean()).abs() > 0.05);
    }
}
