//! CSI phase calibration via cross-antenna differencing (paper §III-B).
//!
//! Raw per-packet CSI phase is useless: CFO/SFO/PBD randomise it across
//! packets (paper Eq. 5, Fig. 2). Antennas of one NIC share the sampling
//! and oscillator clocks, so the *difference* of phases between two
//! antennas cancels those errors (Eq. 6), leaving only a Gaussian residual
//! that time-averaging removes.

use wimi_dsp::stats::phase_summary;
use wimi_phy::csi::CsiCapture;

/// Fraction of most-deviant packets dropped from the per-subcarrier phase
/// aggregation — impulse-noise hits corrupt phase as well as amplitude.
const PHASE_TRIM_FRACTION: f64 = 0.2;

/// Per-subcarrier calibrated phase differences between one antenna pair,
/// summarised over a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDifferenceProfile {
    /// Antenna pair (a, b) the differences were computed over.
    pub pair: (usize, usize),
    /// Circular mean of `∠(H_a·H_b*)` per subcarrier, radians.
    pub mean: Vec<f64>,
    /// Wrap-safe variance per subcarrier (the paper's Eq. 7 statistic).
    pub variance: Vec<f64>,
}

impl PhaseDifferenceProfile {
    /// Computes the profile of antenna pair `(a, b)` over a capture.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty, either antenna index is out of
    /// range, or `a == b`.
    pub fn compute(capture: &CsiCapture, a: usize, b: usize) -> Self {
        assert!(!capture.is_empty(), "capture holds no packets");
        assert!(a != b, "phase difference needs two distinct antennas");
        let n_ant = capture.n_antennas();
        assert!(a < n_ant && b < n_ant, "antenna index out of range");

        let n_sub = capture.n_subcarriers();
        let mut mean = Vec::with_capacity(n_sub);
        let mut variance = Vec::with_capacity(n_sub);
        let mut series = Vec::new();
        let mut dev = Vec::new();
        for k in 0..n_sub {
            capture.phase_difference_series_into(a, b, k, &mut series);
            let (m, v) = phase_summary(&series, PHASE_TRIM_FRACTION, &mut dev);
            mean.push(m);
            variance.push(v);
        }
        PhaseDifferenceProfile {
            pair: (a, b),
            mean,
            variance,
        }
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// Returns `true` for a profile over zero subcarriers (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Mean variance across all subcarriers — the pair-stability score
    /// used for antenna-pair selection (paper §III-F, Fig. 10a).
    pub fn mean_variance(&self) -> f64 {
        self.variance.iter().sum::<f64>() / self.variance.len() as f64
    }
}

/// Summary statistics of raw (uncalibrated) phase across a capture —
/// used to demonstrate why calibration is necessary (Fig. 2/12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawPhaseSpread {
    /// Mean resultant length of the raw phase across packets (≈0 for the
    /// uniform spread commodity NICs exhibit).
    pub resultant: f64,
    /// Angular spread in degrees.
    pub spread_deg: f64,
}

/// Measures raw-phase spread of one (antenna, subcarrier) across packets.
///
/// # Panics
///
/// Panics if the capture is empty or indices are out of range.
pub fn raw_phase_spread(capture: &CsiCapture, antenna: usize, subcarrier: usize) -> RawPhaseSpread {
    assert!(!capture.is_empty(), "capture holds no packets");
    let series = capture.phase_series(antenna, subcarrier);
    RawPhaseSpread {
        resultant: wimi_dsp::stats::circular_resultant(&series),
        spread_deg: wimi_dsp::stats::angular_spread_deg(&series),
    }
}

/// Measures the calibrated phase-difference spread (degrees) of one
/// antenna pair and subcarrier — the number the paper quotes as "around
/// 18 degrees" after differencing (Fig. 12).
pub fn phase_difference_spread_deg(
    capture: &CsiCapture,
    a: usize,
    b: usize,
    subcarrier: usize,
) -> f64 {
    assert!(!capture.is_empty(), "capture holds no packets");
    let series = capture.phase_difference_series(a, b, subcarrier);
    wimi_dsp::stats::angular_spread_deg(&series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture() -> CsiCapture {
        let mut sim = Simulator::new(Scenario::builder().build(), 42);
        sim.capture(100)
    }

    #[test]
    fn raw_phase_is_uniform_but_difference_is_stable() {
        let cap = capture();
        let raw = raw_phase_spread(&cap, 0, 15);
        assert!(raw.resultant < 0.25, "raw resultant = {}", raw.resultant);
        let diff_spread = phase_difference_spread_deg(&cap, 0, 1, 15);
        assert!(
            diff_spread < 60.0,
            "calibrated spread should collapse, got {diff_spread}°"
        );
        assert!(raw.spread_deg > 2.0 * diff_spread);
    }

    #[test]
    fn profile_has_one_entry_per_subcarrier() {
        let cap = capture();
        let prof = PhaseDifferenceProfile::compute(&cap, 0, 1);
        assert_eq!(prof.len(), 30);
        assert_eq!(prof.pair, (0, 1));
        assert!(!prof.is_empty());
        assert!(prof.mean.iter().all(|m| m.is_finite()));
        assert!(prof.variance.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn mean_variance_aggregates() {
        let cap = capture();
        let prof = PhaseDifferenceProfile::compute(&cap, 0, 2);
        let manual: f64 = prof.variance.iter().sum::<f64>() / 30.0;
        assert!((prof.mean_variance() - manual).abs() < 1e-15);
    }

    #[test]
    fn variance_differs_across_subcarriers() {
        // Frequency-selective multipath must make some subcarriers cleaner
        // than others — the premise of good-subcarrier selection (Fig. 6).
        let cap = capture();
        let prof = PhaseDifferenceProfile::compute(&cap, 0, 1);
        let min = prof.variance.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = prof.variance.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 2.0 * min.max(1e-9),
            "variance should vary across subcarriers: min {min}, max {max}"
        );
    }

    #[test]
    #[should_panic(expected = "distinct antennas")]
    fn profile_rejects_same_antenna() {
        let cap = capture();
        let _ = PhaseDifferenceProfile::compute(&cap, 1, 1);
    }

    #[test]
    #[should_panic(expected = "no packets")]
    fn profile_rejects_empty_capture() {
        let _ = PhaseDifferenceProfile::compute(&CsiCapture::new(), 0, 1);
    }
}
