//! Error types for the WiMi pipeline.

use std::error::Error;
use std::fmt;

/// Errors from feature extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// A capture held no packets or too few to process.
    EmptyCapture,
    /// Captures disagree in antenna/subcarrier dimensions.
    DimensionMismatch,
    /// Fewer than two antennas: the cross-antenna feature needs a pair.
    NeedTwoAntennas,
    /// No phase-wrap count γ produced a physically consistent material
    /// feature — typically the LoS does not penetrate the target (metal
    /// or foil container) or the liquid is in motion.
    NoConsistentFeature {
        /// Best relative dispersion achieved over the γ candidates.
        best_dispersion: f64,
    },
    /// The amplitude ratio collapsed to zero/∞ (blocked or saturated link).
    DegenerateAmplitude,
    /// Screening left too few usable packets to extract from (severe
    /// packet loss or dropout).
    InsufficientPackets {
        /// Packets that survived screening (smaller of the two captures).
        kept: usize,
        /// Minimum the extractor needs.
        needed: usize,
    },
    /// A fixed-pair extraction names an antenna that screening found dead.
    AntennaFailed {
        /// The dead antenna's index in the original capture.
        antenna: usize,
    },
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::EmptyCapture => write!(f, "capture holds no packets"),
            FeatureError::DimensionMismatch => {
                write!(f, "baseline and target captures have mismatched dimensions")
            }
            FeatureError::NeedTwoAntennas => {
                write!(f, "material feature requires at least two receive antennas")
            }
            FeatureError::NoConsistentFeature { best_dispersion } => write!(
                f,
                "no phase-wrap count gives a consistent material feature \
                 (best dispersion {best_dispersion:.3}); the signal may not \
                 penetrate the target"
            ),
            FeatureError::DegenerateAmplitude => {
                write!(
                    f,
                    "amplitude ratio is degenerate (blocked or saturated link)"
                )
            }
            FeatureError::InsufficientPackets { kept, needed } => write!(
                f,
                "screening left only {kept} usable packets (need {needed})"
            ),
            FeatureError::AntennaFailed { antenna } => {
                write!(f, "antenna {antenna} is dead (all-zero CSI)")
            }
        }
    }
}

impl Error for FeatureError {}

/// The pipeline stage an issue was detected in — the paper's Fig. 5
/// workflow plus the capture screening that precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Capture screening: finite checks, dead-antenna and dropout triage.
    Screening,
    /// Cross-antenna phase calibration (phase differencing).
    PhaseCalibration,
    /// Good-subcarrier selection.
    SubcarrierSelection,
    /// Amplitude outlier rejection and wavelet denoising.
    AmplitudeDenoising,
    /// Phase-wrap (γ) resolution and Ω̄ consistency gating.
    GammaResolution,
    /// SVM classification.
    Classification,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Screening => "screening",
            Stage::PhaseCalibration => "phase calibration",
            Stage::SubcarrierSelection => "subcarrier selection",
            Stage::AmplitudeDenoising => "amplitude denoising",
            Stage::GammaResolution => "gamma resolution",
            Stage::Classification => "classification",
        };
        f.write_str(name)
    }
}

/// What went wrong (or was salvaged around) at one stage.
#[derive(Debug, Clone, PartialEq)]
pub enum IssueKind {
    /// Packets holding NaN/Inf CSI were discarded.
    NonFinitePackets {
        /// How many were dropped.
        dropped: usize,
    },
    /// An antenna was dead (all-zero rows) often enough to be dropped for
    /// the whole measurement.
    DeadAntenna {
        /// The antenna's index in the original capture.
        antenna: usize,
    },
    /// Packets with an all-zero row on a surviving antenna (partial
    /// dropout) were discarded.
    PartialDropout {
        /// How many were dropped.
        dropped: usize,
    },
    /// Screening left fewer packets than the extractor wants.
    ShortCapture {
        /// Packets surviving screening.
        kept: usize,
        /// Minimum the extractor needs.
        needed: usize,
    },
    /// Subcarriers whose amplitudes were unusable across the capture.
    RejectedSubcarriers {
        /// How many were rejected.
        count: usize,
    },
    /// Fewer antenna pairs resolved a wrap count than were attempted.
    PairsUnresolved {
        /// Pairs the extractor attempted.
        attempted: usize,
        /// Pairs that resolved.
        resolved: usize,
    },
    /// The stage failed outright with a feature error.
    Extraction(FeatureError),
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueKind::NonFinitePackets { dropped } => {
                write!(f, "dropped {dropped} non-finite packets")
            }
            IssueKind::DeadAntenna { antenna } => write!(f, "dropped dead antenna {antenna}"),
            IssueKind::PartialDropout { dropped } => {
                write!(f, "dropped {dropped} packets with dead-antenna rows")
            }
            IssueKind::ShortCapture { kept, needed } => {
                write!(f, "only {kept} packets survived screening (want {needed})")
            }
            IssueKind::RejectedSubcarriers { count } => {
                write!(f, "rejected {count} unusable subcarriers")
            }
            IssueKind::PairsUnresolved {
                attempted,
                resolved,
            } => write!(f, "only {resolved}/{attempted} antenna pairs resolved"),
            IssueKind::Extraction(e) => write!(f, "{e}"),
        }
    }
}

/// One issue encountered during a measurement, tagged with the stage that
/// detected it. A measurement can succeed with a non-empty issue list —
/// that is what graceful degradation means.
#[derive(Debug, Clone, PartialEq)]
pub struct StageIssue {
    /// The stage that detected the issue.
    pub stage: Stage,
    /// What happened.
    pub kind: IssueKind,
}

impl StageIssue {
    /// Convenience constructor.
    pub fn new(stage: Stage, kind: IssueKind) -> Self {
        StageIssue { stage, kind }
    }
}

impl fmt::Display for StageIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.stage, self.kind)
    }
}

/// Errors from identification.
#[derive(Debug, Clone, PartialEq)]
pub enum IdentifyError {
    /// Feature extraction failed.
    Feature(FeatureError),
    /// The classifier has not been trained.
    NotTrained,
}

impl fmt::Display for IdentifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentifyError::Feature(e) => write!(f, "feature extraction failed: {e}"),
            IdentifyError::NotTrained => write!(f, "identifier has not been trained"),
        }
    }
}

impl Error for IdentifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IdentifyError::Feature(e) => Some(e),
            IdentifyError::NotTrained => None,
        }
    }
}

impl From<FeatureError> for IdentifyError {
    fn from(e: FeatureError) -> Self {
        IdentifyError::Feature(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(FeatureError::EmptyCapture
            .to_string()
            .contains("no packets"));
        assert!(FeatureError::NoConsistentFeature {
            best_dispersion: 1.5
        }
        .to_string()
        .contains("1.5"));
        let err: IdentifyError = FeatureError::NeedTwoAntennas.into();
        assert!(err.to_string().contains("two receive antennas"));
        assert!(IdentifyError::NotTrained.to_string().contains("trained"));
    }

    #[test]
    fn identify_error_sources() {
        let err: IdentifyError = FeatureError::EmptyCapture.into();
        assert!(err.source().is_some());
        assert!(IdentifyError::NotTrained.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureError>();
        assert_send_sync::<IdentifyError>();
    }
}
