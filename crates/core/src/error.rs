//! Error types for the WiMi pipeline.

use std::error::Error;
use std::fmt;

/// Errors from feature extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// A capture held no packets or too few to process.
    EmptyCapture,
    /// Captures disagree in antenna/subcarrier dimensions.
    DimensionMismatch,
    /// Fewer than two antennas: the cross-antenna feature needs a pair.
    NeedTwoAntennas,
    /// No phase-wrap count γ produced a physically consistent material
    /// feature — typically the LoS does not penetrate the target (metal
    /// or foil container) or the liquid is in motion.
    NoConsistentFeature {
        /// Best relative dispersion achieved over the γ candidates.
        best_dispersion: f64,
    },
    /// The amplitude ratio collapsed to zero/∞ (blocked or saturated link).
    DegenerateAmplitude,
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::EmptyCapture => write!(f, "capture holds no packets"),
            FeatureError::DimensionMismatch => {
                write!(f, "baseline and target captures have mismatched dimensions")
            }
            FeatureError::NeedTwoAntennas => {
                write!(f, "material feature requires at least two receive antennas")
            }
            FeatureError::NoConsistentFeature { best_dispersion } => write!(
                f,
                "no phase-wrap count gives a consistent material feature \
                 (best dispersion {best_dispersion:.3}); the signal may not \
                 penetrate the target"
            ),
            FeatureError::DegenerateAmplitude => {
                write!(
                    f,
                    "amplitude ratio is degenerate (blocked or saturated link)"
                )
            }
        }
    }
}

impl Error for FeatureError {}

/// Errors from identification.
#[derive(Debug, Clone, PartialEq)]
pub enum IdentifyError {
    /// Feature extraction failed.
    Feature(FeatureError),
    /// The classifier has not been trained.
    NotTrained,
}

impl fmt::Display for IdentifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentifyError::Feature(e) => write!(f, "feature extraction failed: {e}"),
            IdentifyError::NotTrained => write!(f, "identifier has not been trained"),
        }
    }
}

impl Error for IdentifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IdentifyError::Feature(e) => Some(e),
            IdentifyError::NotTrained => None,
        }
    }
}

impl From<FeatureError> for IdentifyError {
    fn from(e: FeatureError) -> Self {
        IdentifyError::Feature(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(FeatureError::EmptyCapture
            .to_string()
            .contains("no packets"));
        assert!(FeatureError::NoConsistentFeature {
            best_dispersion: 1.5
        }
        .to_string()
        .contains("1.5"));
        let err: IdentifyError = FeatureError::NeedTwoAntennas.into();
        assert!(err.to_string().contains("two receive antennas"));
        assert!(IdentifyError::NotTrained.to_string().contains("trained"));
    }

    #[test]
    fn identify_error_sources() {
        let err: IdentifyError = FeatureError::EmptyCapture.into();
        assert!(err.source().is_some());
        assert!(IdentifyError::NotTrained.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureError>();
        assert_send_sync::<IdentifyError>();
    }
}
