//! Antenna-pair enumeration and selection (paper §III-F, Fig. 10/21).
//!
//! With `p` receive antennas there are `p(p−1)/2` usable pairs, and their
//! phase-difference / amplitude-ratio stability differs (each pair sees
//! different multipath). WiMi scores each pair on the baseline capture
//! and uses the most stable one.

use crate::amplitude::{AmplitudeConfig, AmplitudeRatioProfile};
use crate::phase::PhaseDifferenceProfile;
use wimi_phy::csi::CsiCapture;

/// How the pipeline chooses which antenna pair(s) to use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PairSelection {
    /// Score all pairs on the baseline capture and use the most stable
    /// (the paper's method).
    #[default]
    Best,
    /// Use one explicit pair.
    Fixed(usize, usize),
    /// Use every pair and concatenate their features (ablation).
    All,
}

/// Stability score of one antenna pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScore {
    /// The antenna pair (a, b), `a < b`.
    pub pair: (usize, usize),
    /// Mean phase-difference variance over subcarriers.
    pub phase_variance: f64,
    /// Mean amplitude-ratio variance over subcarriers.
    pub amplitude_variance: f64,
}

impl PairScore {
    /// Combined score (lower is better): phase variance plus amplitude
    /// variance, both already on comparable scales (rad², ratio²).
    pub fn combined(&self) -> f64 {
        self.phase_variance + self.amplitude_variance
    }
}

/// Enumerates all antenna pairs `(a, b)` with `a < b` of a capture.
pub fn enumerate_pairs(n_antennas: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n_antennas * n_antennas.saturating_sub(1) / 2);
    for a in 0..n_antennas {
        for b in (a + 1)..n_antennas {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Scores every pair on a capture (paper Fig. 10).
///
/// # Panics
///
/// Panics if the capture is empty or has fewer than two antennas.
pub fn score_pairs(capture: &CsiCapture, amp_config: &AmplitudeConfig) -> Vec<PairScore> {
    assert!(!capture.is_empty(), "capture holds no packets");
    assert!(
        capture.n_antennas() >= 2,
        "pair scoring needs at least two antennas"
    );
    enumerate_pairs(capture.n_antennas())
        .into_iter()
        .map(|(a, b)| {
            let phase = PhaseDifferenceProfile::compute(capture, a, b);
            let amp = AmplitudeRatioProfile::compute(capture, a, b, amp_config);
            PairScore {
                pair: (a, b),
                phase_variance: phase.mean_variance(),
                amplitude_variance: amp.mean_variance(),
            }
        })
        .collect()
}

impl PairSelection {
    /// Resolves the strategy to the concrete list of pairs to use.
    ///
    /// # Panics
    ///
    /// Panics if a fixed pair is invalid (equal or out of range) or the
    /// capture has fewer than two antennas.
    pub fn resolve(
        &self,
        capture: &CsiCapture,
        amp_config: &AmplitudeConfig,
    ) -> Vec<(usize, usize)> {
        let n = capture.n_antennas();
        assert!(n >= 2, "pair selection needs at least two antennas");
        match self {
            PairSelection::Best => {
                let mut scores = score_pairs(capture, amp_config);
                scores.sort_by(|x, y| x.combined().total_cmp(&y.combined()));
                vec![scores[0].pair]
            }
            PairSelection::Fixed(a, b) => {
                assert!(a != b, "fixed pair must use distinct antennas");
                assert!(*a < n && *b < n, "fixed pair out of range");
                vec![(*a.min(b), *a.max(b))]
            }
            PairSelection::All => enumerate_pairs(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_phy::csi::CsiSource;
    use wimi_phy::scenario::{Scenario, Simulator};

    fn capture() -> CsiCapture {
        let mut sim = Simulator::new(Scenario::builder().build(), 5);
        sim.capture(80)
    }

    #[test]
    fn enumerate_three_antennas() {
        assert_eq!(enumerate_pairs(3), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(enumerate_pairs(1), vec![]);
        assert_eq!(enumerate_pairs(4).len(), 6);
    }

    #[test]
    fn scores_cover_all_pairs() {
        let cap = capture();
        let scores = score_pairs(&cap, &AmplitudeConfig::default());
        assert_eq!(scores.len(), 3);
        for s in &scores {
            assert!(s.phase_variance.is_finite() && s.phase_variance >= 0.0);
            assert!(s.amplitude_variance.is_finite() && s.amplitude_variance >= 0.0);
            assert!(s.combined() >= s.phase_variance);
        }
    }

    #[test]
    fn best_picks_lowest_combined() {
        let cap = capture();
        let cfg = AmplitudeConfig::default();
        let best = PairSelection::Best.resolve(&cap, &cfg);
        assert_eq!(best.len(), 1);
        let scores = score_pairs(&cap, &cfg);
        let min = scores
            .iter()
            .map(PairScore::combined)
            .fold(f64::INFINITY, f64::min);
        let best_score = scores.iter().find(|s| s.pair == best[0]).unwrap();
        assert!((best_score.combined() - min).abs() < 1e-15);
    }

    #[test]
    fn fixed_normalises_order() {
        let cap = capture();
        let cfg = AmplitudeConfig::default();
        assert_eq!(PairSelection::Fixed(2, 0).resolve(&cap, &cfg), vec![(0, 2)]);
    }

    #[test]
    fn all_returns_every_pair() {
        let cap = capture();
        let cfg = AmplitudeConfig::default();
        assert_eq!(PairSelection::All.resolve(&cap, &cfg).len(), 3);
    }

    #[test]
    #[should_panic(expected = "distinct antennas")]
    fn fixed_rejects_equal() {
        let cap = capture();
        let _ = PairSelection::Fixed(1, 1).resolve(&cap, &AmplitudeConfig::default());
    }

    #[test]
    fn default_is_best() {
        assert_eq!(PairSelection::default(), PairSelection::Best);
    }
}
