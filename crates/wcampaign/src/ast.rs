//! The campaign abstract syntax tree and its canonical renderer.
//!
//! A [`Campaign`] is a fully resolved description of an evaluation run:
//! scalar directives (name, seeds, trial counts), a scenario grid
//! ([`Axes`]) and an ordered list of scheduled condition changes
//! ([`ScheduleEntry`]). Parsing fills every omitted directive with its
//! default, so the AST has no "absent" notion — which is what makes
//! [`render`](Campaign::render) a canonical form: `parse(render(c)) == c`
//! for every valid campaign (pinned by the round-trip property tests).

use std::fmt::Write as _;

use wimi_phy::channel::Environment;
use wimi_phy::material::{ContainerMaterial, Liquid, SaltwaterConcentration, LIQUIDS};
use wimi_phy::scenario::LiquidSpec;

/// Default root seed (matches the harness default `RunOptions::seed`).
pub const DEFAULT_SEED: u64 = 0xACC0;
/// Default fault-plan seed (matches the degradation experiment's).
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17;
/// Default training trials per material per cell.
pub const DEFAULT_TRAIN: usize = 4;
/// Default test trials per material per cell.
pub const DEFAULT_TEST: usize = 4;

/// One material under test: a catalog liquid or a saltwater grade.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterialRef {
    /// One of the paper's ten catalog liquids.
    Catalog(Liquid),
    /// Saltwater at a concentration in grams of NaCl per 100 ml.
    Saltwater(f64),
}

impl MaterialRef {
    /// The canonical campaign-file token (`Vinegar`, `salt1.5`, ...).
    pub fn token(&self) -> String {
        match self {
            MaterialRef::Catalog(liquid) => format!("{liquid:?}"),
            MaterialRef::Saltwater(pct) => format!("salt{pct}"),
        }
    }

    /// Human-readable class label for reports and confusion matrices.
    pub fn label(&self) -> String {
        match self {
            MaterialRef::Catalog(liquid) => liquid.name().to_owned(),
            MaterialRef::Saltwater(pct) => format!("Salt {pct}%"),
        }
    }

    /// The dielectric specification driving the simulator.
    pub fn spec(&self) -> LiquidSpec {
        match self {
            MaterialRef::Catalog(liquid) => (*liquid).into(),
            MaterialRef::Saltwater(pct) => LiquidSpec::saltwater(SaltwaterConcentration::new(*pct)),
        }
    }
}

/// One value of the `materials` axis: the set of classes a cell
/// discriminates between.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterialSet {
    /// Shorthand for the paper's full ten-liquid catalog.
    Paper10,
    /// An explicit `+`-joined list of materials.
    List(Vec<MaterialRef>),
}

impl MaterialSet {
    /// The concrete materials in grid order.
    pub fn resolve(&self) -> Vec<MaterialRef> {
        match self {
            MaterialSet::Paper10 => LIQUIDS.iter().copied().map(MaterialRef::Catalog).collect(),
            MaterialSet::List(refs) => refs.clone(),
        }
    }

    /// Number of classes in the set.
    pub fn len(&self) -> usize {
        match self {
            MaterialSet::Paper10 => LIQUIDS.len(),
            MaterialSet::List(refs) => refs.len(),
        }
    }

    /// `true` when the set has no classes (only constructible in an
    /// invalid campaign; the validator rejects it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical campaign-file token (`paper10`, `Vinegar+Milk`, ...).
    pub fn token(&self) -> String {
        match self {
            MaterialSet::Paper10 => "paper10".to_owned(),
            MaterialSet::List(refs) => {
                let toks: Vec<String> = refs.iter().map(MaterialRef::token).collect();
                toks.join("+")
            }
        }
    }
}

/// What sits between the antennas during a test measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMode {
    /// The labelled material is in place (normal operation).
    Present,
    /// The *next* catalog entry was swapped in while the label claims the
    /// original — a mislabelling / tampering drill.
    Swapped,
    /// The beaker was removed entirely; the target capture sees only the
    /// empty scenario.
    Removed,
}

impl TargetMode {
    /// The canonical campaign-file keyword.
    pub fn token(self) -> &'static str {
        match self {
            TargetMode::Present => "present",
            TargetMode::Swapped => "swapped",
            TargetMode::Removed => "removed",
        }
    }
}

/// One scheduled condition change.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleChange {
    /// Override the fault intensity (multiplier on the hostile plan).
    Fault(f64),
    /// Swap the deployment environment.
    Environment(Environment),
    /// Change what sits between the antennas.
    Target(TargetMode),
    /// Open an antenna-dropout window with the given per-antenna
    /// probability (stacked on top of the scaled hostile plan).
    Dropout(f64),
}

impl ScheduleChange {
    /// A stable ordering rank used to detect duplicate same-trial changes.
    pub fn kind_rank(&self) -> u8 {
        match self {
            ScheduleChange::Fault(_) => 0,
            ScheduleChange::Environment(_) => 1,
            ScheduleChange::Target(_) => 2,
            ScheduleChange::Dropout(_) => 3,
        }
    }

    /// The schedule directive keyword (`fault`, `environment`, ...).
    pub fn keyword(&self) -> &'static str {
        match self {
            ScheduleChange::Fault(_) => "fault",
            ScheduleChange::Environment(_) => "environment",
            ScheduleChange::Target(_) => "target",
            ScheduleChange::Dropout(_) => "dropout",
        }
    }
}

/// One `at <trial> <change>` line: the change applies from test trial
/// `at` (0-based measurement boundary) until the next change of the same
/// kind.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEntry {
    /// First test trial the change applies to.
    pub at: usize,
    /// The condition change.
    pub change: ScheduleChange,
}

/// The scenario grid: every cartesian combination of the axis values
/// below becomes one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Axes {
    /// Material catalogs to discriminate between.
    pub materials: Vec<MaterialSet>,
    /// Deployment environments.
    pub environments: Vec<Environment>,
    /// Tx–Rx link distances in centimetres.
    pub distances_cm: Vec<f64>,
    /// Beaker wall materials.
    pub containers: Vec<ContainerMaterial>,
    /// Beaker diameters in centimetres.
    pub diameters_cm: Vec<f64>,
    /// Packets per capture.
    pub packets: Vec<usize>,
    /// Baseline fault intensities (multiplier on the hostile plan).
    pub intensities: Vec<f64>,
    /// Replica indices: a free axis that changes only the derived cell
    /// seed, for repeating a configuration under fresh randomness.
    pub replicas: Vec<u64>,
}

impl Default for Axes {
    fn default() -> Self {
        Axes {
            materials: vec![MaterialSet::Paper10],
            environments: vec![Environment::Lab],
            distances_cm: vec![200.0],
            containers: vec![ContainerMaterial::Plastic],
            diameters_cm: vec![14.3],
            packets: vec![20],
            intensities: vec![0.0],
            replicas: vec![0],
        }
    }
}

/// A parsed, validated campaign: scalar directives, the scenario grid and
/// the schedule. See the module docs for the canonical-form contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (stamped into artifact headers and file names).
    pub name: String,
    /// Root seed: every cell's seed is derived from it and the cell index.
    pub seed: u64,
    /// Seed of the hostile fault plan (measurements reseed it per capture).
    pub fault_seed: u64,
    /// Training trials per material per cell.
    pub train: usize,
    /// Test trials per material per cell.
    pub test: usize,
    /// The scenario grid.
    pub axes: Axes,
    /// Scheduled condition changes, ordered by trial.
    pub schedule: Vec<ScheduleEntry>,
}

impl Campaign {
    /// A campaign with every directive at its default, named `name`.
    pub fn with_defaults(name: &str) -> Self {
        Campaign {
            name: name.to_owned(),
            seed: DEFAULT_SEED,
            fault_seed: DEFAULT_FAULT_SEED,
            train: DEFAULT_TRAIN,
            test: DEFAULT_TEST,
            axes: Axes::default(),
            schedule: Vec::new(),
        }
    }

    /// Renders the canonical campaign-file form: every directive and axis
    /// explicit (defaults included), fixed order, no comments. Parsing the
    /// result reproduces `self` exactly.
    // wlint: artifact
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "campaign {}", self.name);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "fault_seed {}", self.fault_seed);
        let _ = writeln!(out, "train {}", self.train);
        let _ = writeln!(out, "test {}", self.test);
        let sets: Vec<String> = self.axes.materials.iter().map(MaterialSet::token).collect();
        let _ = writeln!(out, "axis materials = {}", sets.join(", "));
        let envs: Vec<&str> = self
            .axes
            .environments
            .iter()
            .map(|e| environment_token(*e))
            .collect();
        let _ = writeln!(out, "axis environment = {}", envs.join(", "));
        let _ = writeln!(
            out,
            "axis distance_cm = {}",
            join_f64(&self.axes.distances_cm)
        );
        let conts: Vec<&str> = self
            .axes
            .containers
            .iter()
            .map(|c| container_token(*c))
            .collect();
        let _ = writeln!(out, "axis container = {}", conts.join(", "));
        let _ = writeln!(
            out,
            "axis diameter_cm = {}",
            join_f64(&self.axes.diameters_cm)
        );
        let packets: Vec<String> = self.axes.packets.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "axis packets = {}", packets.join(", "));
        let _ = writeln!(out, "axis intensity = {}", join_f64(&self.axes.intensities));
        let replicas: Vec<String> = self.axes.replicas.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(out, "axis replica = {}", replicas.join(", "));
        for entry in &self.schedule {
            let _ = write!(out, "at {} ", entry.at);
            match &entry.change {
                ScheduleChange::Fault(intensity) => {
                    let _ = writeln!(out, "fault {intensity}");
                }
                ScheduleChange::Environment(env) => {
                    let _ = writeln!(out, "environment {}", environment_token(*env));
                }
                ScheduleChange::Target(mode) => {
                    let _ = writeln!(out, "target {}", mode.token());
                }
                ScheduleChange::Dropout(p) => {
                    let _ = writeln!(out, "dropout {p}");
                }
            }
        }
        out
    }
}

fn join_f64(values: &[f64]) -> String {
    let toks: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    toks.join(", ")
}

/// The canonical campaign-file token of an environment.
pub fn environment_token(env: Environment) -> &'static str {
    match env {
        Environment::EmptyHall => "hall",
        Environment::Lab => "lab",
        Environment::Library => "library",
    }
}

/// The canonical campaign-file token of a container material.
pub fn container_token(c: ContainerMaterial) -> &'static str {
    match c {
        ContainerMaterial::Glass => "glass",
        ContainerMaterial::Plastic => "plastic",
        ContainerMaterial::Metal => "metal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper10_resolves_to_ten_catalog_liquids() {
        let set = MaterialSet::Paper10;
        assert_eq!(set.len(), 10);
        assert!(!set.is_empty());
        let refs = set.resolve();
        assert_eq!(refs.len(), 10);
        assert_eq!(refs[0], MaterialRef::Catalog(Liquid::Vinegar));
        assert_eq!(set.token(), "paper10");
    }

    #[test]
    fn material_tokens_are_variant_identifiers() {
        assert_eq!(MaterialRef::Catalog(Liquid::PureWater).token(), "PureWater");
        assert_eq!(MaterialRef::Saltwater(1.5).token(), "salt1.5");
        let set = MaterialSet::List(vec![
            MaterialRef::Catalog(Liquid::Milk),
            MaterialRef::Saltwater(3.0),
        ]);
        assert_eq!(set.token(), "Milk+salt3");
    }

    #[test]
    fn render_lists_every_directive_in_fixed_order() {
        let c = Campaign::with_defaults("demo");
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "campaign demo");
        assert_eq!(lines[1], format!("seed {DEFAULT_SEED}"));
        assert_eq!(lines[2], format!("fault_seed {DEFAULT_FAULT_SEED}"));
        assert_eq!(lines[3], "train 4");
        assert_eq!(lines[4], "test 4");
        assert!(lines[5].starts_with("axis materials = paper10"));
        assert!(text.contains("axis replica = 0\n"));
    }
}
