//! Schedule lowering: the ordered `at <trial> ...` entries of a campaign
//! become a list of piecewise-constant [`StepState`] segments over the
//! cell's test trials, and each segment lowers onto the existing
//! [`FaultPlan`] seam (scaled hostile plan + optional dropout override).
//!
//! Training is always performed under the cell's *base* conditions — the
//! schedule perturbs test-time measurements only, which is what makes a
//! fault ramp reproduce the PR2 degradation curve segment by segment.

use wimi_phy::channel::Environment;
use wimi_phy::fault::{FaultPlan, FaultSchedule};

use crate::ast::{Campaign, ScheduleChange, TargetMode};
use crate::grid::CellPlan;

/// The full measurement condition holding from one test-trial boundary to
/// the next.
#[derive(Debug, Clone, PartialEq)]
pub struct StepState {
    /// First test trial this segment applies to (0-based).
    pub from: usize,
    /// Fault intensity (multiplier on the hostile plan; 0 = clean).
    pub intensity: f64,
    /// Deployment environment.
    pub environment: Environment,
    /// What sits between the antennas.
    pub target: TargetMode,
    /// Per-antenna dropout probability override, when a dropout window is
    /// open (`None` leaves the scaled plan's own dropout untouched).
    pub dropout: Option<f64>,
}

/// Lowers a campaign's schedule onto one cell: the base segment (trial 0)
/// carries the cell's axis values, and every group of same-trial entries
/// produces one cumulative segment. The result is non-empty and strictly
/// increasing in `from`.
pub fn lower(c: &Campaign, cell: &CellPlan) -> Vec<StepState> {
    let mut steps = vec![StepState {
        from: 0,
        intensity: cell.intensity,
        environment: cell.environment,
        target: TargetMode::Present,
        dropout: None,
    }];
    for entry in &c.schedule {
        // The parser guarantees non-decreasing trials, so the entry either
        // extends the last segment (same trial) or opens a new one that
        // inherits the accumulated state.
        let matches_last = steps.last().is_some_and(|s| s.from == entry.at);
        if !matches_last && entry.at > 0 {
            let mut next = match steps.last() {
                Some(last) => last.clone(),
                None => continue,
            };
            next.from = entry.at;
            steps.push(next);
        }
        let Some(current) = steps.last_mut() else {
            continue;
        };
        match &entry.change {
            ScheduleChange::Fault(intensity) => current.intensity = *intensity,
            ScheduleChange::Environment(env) => current.environment = *env,
            ScheduleChange::Target(mode) => current.target = *mode,
            ScheduleChange::Dropout(p) => current.dropout = Some(*p),
        }
    }
    steps
}

/// The segment in effect at test trial `trial` (the last segment whose
/// `from` is ≤ `trial`; segment 0 always starts at trial 0).
pub fn state_at(steps: &[StepState], trial: usize) -> &StepState {
    let mut current = &steps[0];
    for step in steps {
        if step.from <= trial {
            current = step;
        }
    }
    current
}

/// Lowers one segment onto a [`FaultPlan`]: `None` when the channel is
/// clean (zero intensity, no dropout window), otherwise the hostile plan
/// scaled by the segment intensity with the dropout window stacked on top.
pub fn fault_plan(state: &StepState, fault_seed: u64) -> Option<FaultPlan> {
    let mut plan = FaultPlan::hostile(fault_seed).scaled(state.intensity);
    if let Some(p) = state.dropout {
        plan = plan.with_antenna_dropout(p);
    }
    if plan.is_identity() {
        None
    } else {
        Some(plan)
    }
}

/// Lowers a whole segment list onto a [`FaultSchedule`] keyed by test
/// trial, for callers that want the wiphy-level view of the ramp.
pub fn fault_schedule(steps: &[StepState], fault_seed: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    for step in steps {
        schedule.push(step.from as u64, fault_plan(step, fault_seed));
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ScheduleEntry;
    use crate::grid::expand;

    fn ramp_campaign() -> Campaign {
        let mut c = Campaign::with_defaults("ramp");
        c.test = 8;
        c.schedule = vec![
            ScheduleEntry {
                at: 2,
                change: ScheduleChange::Fault(0.2),
            },
            ScheduleEntry {
                at: 4,
                change: ScheduleChange::Environment(Environment::Library),
            },
            ScheduleEntry {
                at: 4,
                change: ScheduleChange::Dropout(0.5),
            },
            ScheduleEntry {
                at: 6,
                change: ScheduleChange::Target(TargetMode::Removed),
            },
        ];
        c
    }

    #[test]
    fn lowering_accumulates_state_across_segments() {
        let c = ramp_campaign();
        let cells = expand(&c);
        let steps = lower(&c, &cells[0]);
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].from, 0);
        assert_eq!(steps[0].intensity, cells[0].intensity);
        assert_eq!(steps[1].from, 2);
        assert_eq!(steps[1].intensity, 0.2);
        // Trial-4 segment inherits the fault level and adds env + dropout.
        assert_eq!(steps[2].from, 4);
        assert_eq!(steps[2].intensity, 0.2);
        assert_eq!(steps[2].environment, Environment::Library);
        assert_eq!(steps[2].dropout, Some(0.5));
        // Trial-6 segment keeps everything and removes the target.
        assert_eq!(steps[3].target, TargetMode::Removed);
        assert_eq!(steps[3].dropout, Some(0.5));
    }

    #[test]
    fn state_at_picks_the_governing_segment() {
        let c = ramp_campaign();
        let cells = expand(&c);
        let steps = lower(&c, &cells[0]);
        assert_eq!(state_at(&steps, 0).from, 0);
        assert_eq!(state_at(&steps, 1).from, 0);
        assert_eq!(state_at(&steps, 2).from, 2);
        assert_eq!(state_at(&steps, 5).from, 4);
        assert_eq!(state_at(&steps, 7).from, 6);
    }

    #[test]
    fn clean_segments_lower_to_no_plan() {
        let state = StepState {
            from: 0,
            intensity: 0.0,
            environment: Environment::Lab,
            target: TargetMode::Present,
            dropout: None,
        };
        assert!(fault_plan(&state, 0xFA17).is_none());
        let hot = StepState {
            intensity: 0.4,
            ..state.clone()
        };
        let plan = fault_plan(&hot, 0xFA17).expect("scaled plan");
        assert!(!plan.is_identity());
        let windowed = StepState {
            dropout: Some(0.9),
            ..state
        };
        assert!(fault_plan(&windowed, 0xFA17).is_some());
    }

    #[test]
    fn fault_schedule_mirrors_segments() {
        let c = ramp_campaign();
        let cells = expand(&c);
        let steps = lower(&c, &cells[0]);
        let schedule = fault_schedule(&steps, c.fault_seed);
        assert_eq!(schedule.len(), steps.len());
        assert!(schedule.plan_at(0).is_none());
        assert!(schedule.plan_at(3).is_some());
        assert!(schedule.plan_at(7).is_some());
    }
}
