//! Deterministic grid expansion: a validated [`Campaign`] becomes an
//! ordered list of [`CellPlan`]s, one per cartesian combination of axis
//! values, each with a seed derived from the campaign root seed and the
//! cell index — never from ambient state — so any cell can be re-run in
//! isolation and reproduce its artifact byte for byte.

use wimi_phy::channel::Environment;
use wimi_phy::material::ContainerMaterial;

use crate::ast::{Campaign, MaterialSet};

/// One fully resolved evaluation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPlan {
    /// Position in campaign expansion order (0-based).
    pub index: u64,
    /// The cell's derived root seed ([`derive_cell_seed`]).
    pub seed: u64,
    /// Materials the cell discriminates between.
    pub materials: MaterialSet,
    /// Deployment environment.
    pub environment: Environment,
    /// Tx–Rx link distance in centimetres.
    pub distance_cm: f64,
    /// Beaker wall material.
    pub container: ContainerMaterial,
    /// Beaker diameter in centimetres.
    pub diameter_cm: f64,
    /// Packets per capture.
    pub packets: usize,
    /// Baseline fault intensity (0 = clean channel).
    pub intensity: f64,
    /// Replica index (seed-only axis).
    pub replica: u64,
}

/// The number of cells the campaign expands to: the product of all axis
/// lengths, saturating at `usize::MAX` (the validator rejects anything
/// above [`crate::parse::MAX_CELLS`] long before saturation matters).
pub fn cell_count(c: &Campaign) -> usize {
    [
        c.axes.materials.len(),
        c.axes.environments.len(),
        c.axes.distances_cm.len(),
        c.axes.containers.len(),
        c.axes.diameters_cm.len(),
        c.axes.packets.len(),
        c.axes.intensities.len(),
        c.axes.replicas.len(),
    ]
    .iter()
    .fold(1usize, |acc, &n| acc.saturating_mul(n))
}

/// Derives the root seed of cell `cell` from the campaign seed.
///
/// The high 36 bits come from a SplitMix64 finalizer over
/// `root ^ (cell + 1) · φ64`; the low 17 bits are the cell index itself,
/// which makes the map injective by construction for every campaign the
/// validator admits ([`crate::parse::MAX_CELLS`] < 2¹⁷) — per-cell seeds
/// are collision-free, pinned by the property tests. The result stays
/// below 2⁵³, so seeds recorded in artifact headers and summary JSON
/// survive a round-trip through f64-backed JSON parsers exactly.
pub fn derive_cell_seed(root: u64, cell: u64) -> u64 {
    let mut z = root ^ cell.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z & 0xF_FFFF_FFFF) << 17) | (cell & 0x1_FFFF)
}

/// Expands the campaign grid into cells, in canonical order: materials
/// outermost, then environments, distances, containers, diameters,
/// packets, intensities, and replicas innermost.
pub fn expand(c: &Campaign) -> Vec<CellPlan> {
    let mut cells = Vec::with_capacity(cell_count(c));
    let mut index = 0u64;
    for materials in &c.axes.materials {
        for &environment in &c.axes.environments {
            for &distance_cm in &c.axes.distances_cm {
                for &container in &c.axes.containers {
                    for &diameter_cm in &c.axes.diameters_cm {
                        for &packets in &c.axes.packets {
                            for &intensity in &c.axes.intensities {
                                for &replica in &c.axes.replicas {
                                    cells.push(CellPlan {
                                        index,
                                        seed: derive_cell_seed(c.seed, index),
                                        materials: materials.clone(),
                                        environment,
                                        distance_cm,
                                        container,
                                        diameter_cm,
                                        packets,
                                        intensity,
                                        replica,
                                    });
                                    index += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{MaterialRef, MaterialSet};
    use wimi_phy::material::Liquid;

    fn two_by_three() -> Campaign {
        let mut c = Campaign::with_defaults("grid");
        c.axes.materials = vec![
            MaterialSet::Paper10,
            MaterialSet::List(vec![
                MaterialRef::Catalog(Liquid::Milk),
                MaterialRef::Catalog(Liquid::Oil),
            ]),
        ];
        c.axes.intensities = vec![0.0, 0.2, 0.4];
        c
    }

    #[test]
    fn cell_count_is_product_of_axis_lengths() {
        let c = two_by_three();
        assert_eq!(cell_count(&c), 6);
        assert_eq!(expand(&c).len(), 6);
    }

    #[test]
    fn expansion_order_is_replica_innermost() {
        let mut c = two_by_three();
        c.axes.replicas = vec![0, 1];
        let cells = expand(&c);
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].replica, 0);
        assert_eq!(cells[1].replica, 1);
        assert_eq!(cells[0].intensity, cells[1].intensity);
        // Intensity advances once the replica axis wraps.
        assert_eq!(cells[2].intensity, 0.2);
        // Materials are outermost: the second set starts at the halfway point.
        assert_eq!(cells[6].materials.len(), 2);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert_eq!(cell.seed, derive_cell_seed(c.seed, i as u64));
        }
    }

    #[test]
    fn derived_seeds_differ_across_cells_and_roots() {
        let a: Vec<u64> = (0..1000).map(|i| derive_cell_seed(0xACC0, i)).collect();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "collision within a campaign");
        assert_ne!(derive_cell_seed(1, 0), derive_cell_seed(2, 0));
    }

    #[test]
    fn derived_seeds_fit_exactly_in_f64_json_numbers() {
        for cell in [0u64, 1, 17, 99_999] {
            let seed = derive_cell_seed(0xACC0, cell);
            assert!(seed < (1 << 53), "seed {seed} would lose precision in JSON");
            assert_eq!(seed & 0x1_FFFF, cell, "low bits must encode the cell");
        }
    }
}
