//! Declarative scenario campaigns for the WiMi reproduction.
//!
//! A `.campaign` file describes a scenario *grid* — cartesian sweeps over
//! materials, containers, distances, environments, packet counts and
//! fault intensities — plus per-cell *schedules*: ordered condition
//! changes at test-trial boundaries (fault ramps, environment swaps,
//! target swap/removal, antenna-dropout windows). This crate owns the
//! format: the hand-rolled lexer/parser/validator ([`parse`]), the
//! canonical renderer ([`Campaign::render`]), deterministic grid
//! expansion ([`expand`]) with derived per-cell seeds
//! ([`derive_cell_seed`]), and schedule lowering onto the wiphy
//! [`FaultPlan`](wimi_phy::fault::FaultPlan) seam ([`schedule`]).
//!
//! The campaign *runner* lives in `wimi-experiments` (it needs the
//! measurement harness); this crate stays std-only with `wimi-phy` as its
//! single dependency, so the format can be parsed and validated anywhere.
//!
//! # Determinism contract
//!
//! Everything downstream of a campaign file is a pure function of its
//! text: cells expand in a fixed order, per-cell seeds derive from the
//! root seed and cell index (never ambient state), and schedule lowering
//! is data-to-data. Re-running any single cell from its recorded seed
//! reproduces the campaign's artifact for that cell byte for byte, at any
//! `WIMI_THREADS` setting.

#![warn(missing_docs)]

pub mod ast;
pub mod grid;
pub mod parse;
pub mod schedule;

pub use ast::{
    Axes, Campaign, MaterialRef, MaterialSet, ScheduleChange, ScheduleEntry, TargetMode,
};
pub use grid::{cell_count, derive_cell_seed, expand, CellPlan};
pub use parse::{parse, CampaignError, DiagKind, MAX_CELLS};
pub use schedule::{fault_plan, fault_schedule, lower, state_at, StepState};
