//! Hand-rolled lexer, parser and validator for `.campaign` files.
//!
//! The format is line-oriented. `#` starts a comment, blank lines are
//! ignored, and every other line is one directive:
//!
//! ```text
//! campaign <name>                  # must come first
//! seed <u64>                       # decimal or 0x-hex
//! fault_seed <u64>
//! train <n>
//! test <n>
//! axis <name> = <v1>, <v2>, ...    # materials | environment | distance_cm
//!                                  # | container | diameter_cm | packets
//!                                  # | intensity | replica
//! at <trial> fault <intensity>     # scheduled condition changes,
//! at <trial> environment <env>     # applied from test trial <trial> on
//! at <trial> target present|swapped|removed
//! at <trial> dropout <p>
//! ```
//!
//! Every error carries a 1-based line and column plus a [`DiagKind`] so
//! the fixture suite can pin exact diagnostics; the rendered message is
//! always a single line (no `\n`), mirroring the `obs-validate` and
//! `wimi-trace` validator conventions.

use std::fmt;

use wimi_phy::channel::Environment;
use wimi_phy::material::{ContainerMaterial, Liquid};

use crate::ast::{Campaign, MaterialRef, MaterialSet, ScheduleChange, ScheduleEntry, TargetMode};

/// Hard cap on the number of cells a campaign may expand to, so a typo in
/// an axis list cannot turn `campaign-run` into a runaway job.
pub const MAX_CELLS: usize = 100_000;

/// Every class of diagnostic the parser/validator can emit. The fixture
/// suite iterates [`DiagKind::ALL`] and proves each one is reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// Malformed line structure (missing `=`, trailing tokens, ...).
    Syntax,
    /// A token that should be a number but does not parse as one.
    Number,
    /// An unknown top-level directive keyword.
    UnknownDirective,
    /// A scalar directive (`seed`, `train`, ...) given more than once.
    DuplicateDirective,
    /// The file does not start with a valid `campaign <name>` line.
    MissingName,
    /// `axis <name>` with a name that is not a grid axis.
    UnknownAxis,
    /// The same axis declared twice.
    DuplicateAxis,
    /// An axis declared with no values.
    EmptyAxis,
    /// A material token that is neither a catalog liquid, `paper10`, nor
    /// a `salt<pct>` grade.
    UnknownMaterial,
    /// The same material listed twice in one set.
    DuplicateMaterial,
    /// A material set with fewer than two classes.
    MaterialSetTooSmall,
    /// An environment token that is not `hall`/`lab`/`library`.
    UnknownEnvironment,
    /// A container token that is not `glass`/`plastic`/`metal`.
    UnknownContainer,
    /// A numeric value outside its documented range.
    OutOfRange,
    /// Schedule entries out of trial order, or the same change kind
    /// scheduled twice at one trial.
    ScheduleOrder,
    /// A schedule trial at or beyond the campaign's test-trial count.
    ScheduleRange,
    /// An unknown schedule directive or target mode.
    UnknownSchedule,
}

impl DiagKind {
    /// All diagnostic kinds (fixture-coverage contract).
    pub const ALL: [DiagKind; 17] = [
        DiagKind::Syntax,
        DiagKind::Number,
        DiagKind::UnknownDirective,
        DiagKind::DuplicateDirective,
        DiagKind::MissingName,
        DiagKind::UnknownAxis,
        DiagKind::DuplicateAxis,
        DiagKind::EmptyAxis,
        DiagKind::UnknownMaterial,
        DiagKind::DuplicateMaterial,
        DiagKind::MaterialSetTooSmall,
        DiagKind::UnknownEnvironment,
        DiagKind::UnknownContainer,
        DiagKind::OutOfRange,
        DiagKind::ScheduleOrder,
        DiagKind::ScheduleRange,
        DiagKind::UnknownSchedule,
    ];

    /// Stable kebab-case name, used in fixture expectations.
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::Syntax => "syntax",
            DiagKind::Number => "number",
            DiagKind::UnknownDirective => "unknown-directive",
            DiagKind::DuplicateDirective => "duplicate-directive",
            DiagKind::MissingName => "missing-name",
            DiagKind::UnknownAxis => "unknown-axis",
            DiagKind::DuplicateAxis => "duplicate-axis",
            DiagKind::EmptyAxis => "empty-axis",
            DiagKind::UnknownMaterial => "unknown-material",
            DiagKind::DuplicateMaterial => "duplicate-material",
            DiagKind::MaterialSetTooSmall => "material-set-too-small",
            DiagKind::UnknownEnvironment => "unknown-environment",
            DiagKind::UnknownContainer => "unknown-container",
            DiagKind::OutOfRange => "out-of-range",
            DiagKind::ScheduleOrder => "schedule-order",
            DiagKind::ScheduleRange => "schedule-range",
            DiagKind::UnknownSchedule => "unknown-schedule",
        }
    }
}

/// A parse/validation failure at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// The diagnostic class.
    pub kind: DiagKind,
    /// Single-line human-readable detail.
    pub msg: String,
}

impl fmt::Display for CampaignError {
    /// `line <l>, col <c>: <msg>` — always a single line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for CampaignError {}

fn err(line: usize, col: usize, kind: DiagKind, msg: String) -> CampaignError {
    CampaignError {
        line,
        col,
        kind,
        msg,
    }
}

/// One lexed token: a word or a punctuation mark, with its position.
#[derive(Debug, Clone, PartialEq)]
struct Token {
    line: usize,
    col: usize,
    text: String,
    punct: bool,
}

/// Splits one line into word and punctuation (`=`, `,`, `+`) tokens.
/// `#` cuts the rest of the line. Words are maximal runs of any other
/// non-whitespace characters; bad content inside a word is diagnosed at
/// value-parse time, never here, so lexing cannot fail.
fn lex_line(line_no: usize, line: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let mut word_col = 0usize;
    let flush = |word: &mut String, word_col: usize, tokens: &mut Vec<Token>| {
        if !word.is_empty() {
            tokens.push(Token {
                line: line_no,
                col: word_col,
                text: std::mem::take(word),
                punct: false,
            });
        }
    };
    for (i, c) in line.chars().enumerate() {
        let col = i + 1;
        match c {
            '#' => break,
            c if c.is_whitespace() => flush(&mut word, word_col, &mut tokens),
            '=' | ',' | '+' => {
                flush(&mut word, word_col, &mut tokens);
                tokens.push(Token {
                    line: line_no,
                    col,
                    text: c.to_string(),
                    punct: true,
                });
            }
            c => {
                if word.is_empty() {
                    word_col = col;
                }
                word.push(c);
            }
        }
    }
    flush(&mut word, word_col, &mut tokens);
    tokens
}

fn parse_u64(tok: &Token) -> Result<u64, CampaignError> {
    let parsed = match tok.text.strip_prefix("0x").or(tok.text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => tok.text.parse::<u64>(),
    };
    parsed.map_err(|_| {
        err(
            tok.line,
            tok.col,
            DiagKind::Number,
            format!("`{}` is not a non-negative integer", tok.text),
        )
    })
}

fn parse_usize(tok: &Token) -> Result<usize, CampaignError> {
    let value = parse_u64(tok)?;
    usize::try_from(value).map_err(|_| {
        err(
            tok.line,
            tok.col,
            DiagKind::Number,
            format!("`{}` does not fit in usize", tok.text),
        )
    })
}

fn parse_f64(tok: &Token) -> Result<f64, CampaignError> {
    // `f64::from_str` accepts "inf"/"NaN"; reject non-finite here so no
    // downstream range check has to reason about them.
    match tok.text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(err(
            tok.line,
            tok.col,
            DiagKind::Number,
            format!("`{}` is not a finite number", tok.text),
        )),
    }
}

/// Checks `value` against an inclusive range, with an [`DiagKind::OutOfRange`]
/// diagnostic naming the quantity and its bounds.
fn check_range(tok: &Token, what: &str, value: f64, lo: f64, hi: f64) -> Result<(), CampaignError> {
    if (lo..=hi).contains(&value) {
        Ok(())
    } else {
        Err(err(
            tok.line,
            tok.col,
            DiagKind::OutOfRange,
            format!("{what} must be within [{lo}, {hi}], got {}", tok.text),
        ))
    }
}

fn material_ref(tok: &Token) -> Result<MaterialRef, CampaignError> {
    if let Some(pct_text) = tok.text.strip_prefix("salt") {
        let pct_tok = Token {
            line: tok.line,
            col: tok.col + 4,
            text: pct_text.to_owned(),
            punct: false,
        };
        let pct = parse_f64(&pct_tok).map_err(|e| {
            err(
                e.line,
                e.col,
                DiagKind::UnknownMaterial,
                format!(
                    "`{}` is not a saltwater grade (expected salt<pct>)",
                    tok.text
                ),
            )
        })?;
        check_range(tok, "saltwater concentration (g/100ml)", pct, 0.0, 30.0)?;
        return Ok(MaterialRef::Saltwater(pct));
    }
    let liquid = match tok.text.as_str() {
        "Vinegar" => Liquid::Vinegar,
        "Honey" => Liquid::Honey,
        "Soy" => Liquid::Soy,
        "Milk" => Liquid::Milk,
        "Pepsi" => Liquid::Pepsi,
        "Liquor" => Liquid::Liquor,
        "PureWater" => Liquid::PureWater,
        "Oil" => Liquid::Oil,
        "Coke" => Liquid::Coke,
        "SweetWater" => Liquid::SweetWater,
        other => {
            return Err(err(
                tok.line,
                tok.col,
                DiagKind::UnknownMaterial,
                format!("unknown material `{other}` (catalog liquids, salt<pct>, or paper10)"),
            ))
        }
    };
    Ok(MaterialRef::Catalog(liquid))
}

fn environment_value(tok: &Token) -> Result<Environment, CampaignError> {
    match tok.text.as_str() {
        "hall" => Ok(Environment::EmptyHall),
        "lab" => Ok(Environment::Lab),
        "library" => Ok(Environment::Library),
        other => Err(err(
            tok.line,
            tok.col,
            DiagKind::UnknownEnvironment,
            format!("unknown environment `{other}` (expected hall, lab or library)"),
        )),
    }
}

fn container_value(tok: &Token) -> Result<ContainerMaterial, CampaignError> {
    match tok.text.as_str() {
        "glass" => Ok(ContainerMaterial::Glass),
        "plastic" => Ok(ContainerMaterial::Plastic),
        "metal" => Ok(ContainerMaterial::Metal),
        other => Err(err(
            tok.line,
            tok.col,
            DiagKind::UnknownContainer,
            format!("unknown container `{other}` (expected glass, plastic or metal)"),
        )),
    }
}

/// Splits the value tokens of an axis line (everything after `=`) into
/// comma-separated groups, rejecting empty slots.
fn comma_groups(tokens: &[Token]) -> Result<Vec<Vec<&Token>>, CampaignError> {
    let mut groups: Vec<Vec<&Token>> = vec![Vec::new()];
    for tok in tokens {
        if tok.punct && tok.text == "," {
            match groups.last() {
                Some(last) if last.is_empty() => {
                    return Err(err(
                        tok.line,
                        tok.col,
                        DiagKind::Syntax,
                        "empty value before `,`".to_owned(),
                    ))
                }
                _ => groups.push(Vec::new()),
            }
        } else {
            if let Some(last) = groups.last_mut() {
                last.push(tok);
            }
        }
    }
    if let Some(last) = groups.last() {
        if last.is_empty() && groups.len() > 1 {
            // Trailing comma: report at the end of the line via the last
            // real token's position.
            if let Some(tok) = tokens.last() {
                return Err(err(
                    tok.line,
                    tok.col,
                    DiagKind::Syntax,
                    "trailing `,` with no value after it".to_owned(),
                ));
            }
        }
    }
    if groups.len() == 1 && groups.first().is_none_or(|g| g.is_empty()) {
        groups.clear();
    }
    Ok(groups)
}

/// Parses one group as a single word token (no stray `+`/`=`).
fn single_word<'a>(
    group: &[&'a Token],
    line: usize,
    what: &str,
) -> Result<&'a Token, CampaignError> {
    match group {
        [tok] if !tok.punct => Ok(tok),
        [tok, ..] => Err(err(
            tok.line,
            tok.col,
            DiagKind::Syntax,
            format!("expected a single {what} value"),
        )),
        [] => Err(err(
            line,
            1,
            DiagKind::Syntax,
            format!("expected a {what} value"),
        )),
    }
}

fn material_set(group: &[&Token], line: usize) -> Result<MaterialSet, CampaignError> {
    if let [tok] = group {
        if !tok.punct && tok.text == "paper10" {
            return Ok(MaterialSet::Paper10);
        }
    }
    // Alternating word / `+` sequence.
    let mut refs: Vec<MaterialRef> = Vec::new();
    let mut expect_word = true;
    for tok in group {
        if expect_word {
            if tok.punct {
                return Err(err(
                    tok.line,
                    tok.col,
                    DiagKind::Syntax,
                    format!("expected a material name, got `{}`", tok.text),
                ));
            }
            let mref = material_ref(tok)?;
            if refs.contains(&mref) {
                return Err(err(
                    tok.line,
                    tok.col,
                    DiagKind::DuplicateMaterial,
                    format!("material `{}` listed twice in one set", tok.text),
                ));
            }
            refs.push(mref);
        } else if !(tok.punct && tok.text == "+") {
            return Err(err(
                tok.line,
                tok.col,
                DiagKind::Syntax,
                format!("expected `+` between materials, got `{}`", tok.text),
            ));
        }
        expect_word = !expect_word;
    }
    if expect_word {
        // Ended on a `+`.
        let col = group.last().map_or(1, |t| t.col);
        return Err(err(
            line,
            col,
            DiagKind::Syntax,
            "material set ends with `+`".to_owned(),
        ));
    }
    if refs.len() < 2 {
        let col = group.first().map_or(1, |t| t.col);
        return Err(err(
            line,
            col,
            DiagKind::MaterialSetTooSmall,
            format!(
                "a material set needs at least two classes to discriminate, got {}",
                refs.len()
            ),
        ));
    }
    Ok(MaterialSet::List(refs))
}

/// Internal parse state: which directives/axes have been seen, for
/// duplicate detection.
#[derive(Default)]
struct Seen {
    seed: bool,
    fault_seed: bool,
    train: bool,
    test: bool,
    materials: bool,
    environment: bool,
    distance: bool,
    container: bool,
    diameter: bool,
    packets: bool,
    intensity: bool,
    replica: bool,
}

/// Parses and validates campaign text into a [`Campaign`].
///
/// Omitted directives take their documented defaults; the returned AST is
/// always fully concrete. The first error encountered (scanning top to
/// bottom, left to right) is returned.
///
/// # Errors
///
/// A [`CampaignError`] with the 1-based line/column of the offending
/// token, a [`DiagKind`], and a single-line message.
pub fn parse(text: &str) -> Result<Campaign, CampaignError> {
    let mut campaign: Option<Campaign> = None;
    let mut seen = Seen::default();
    let mut last_schedule: Option<(usize, u8)> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let tokens = lex_line(line_no, raw_line);
        let Some(head) = tokens.first() else {
            continue; // blank or comment-only line
        };
        if head.punct {
            return Err(err(
                head.line,
                head.col,
                DiagKind::Syntax,
                format!("a directive cannot start with `{}`", head.text),
            ));
        }
        // The first directive must name the campaign.
        let Some(c) = campaign.as_mut() else {
            if head.text != "campaign" {
                return Err(err(
                    head.line,
                    head.col,
                    DiagKind::MissingName,
                    "the first directive must be `campaign <name>`".to_owned(),
                ));
            }
            let name_tok = match &tokens[1..] {
                [tok] if !tok.punct => tok,
                [tok, ..] => {
                    return Err(err(
                        tok.line,
                        tok.col,
                        DiagKind::MissingName,
                        "`campaign` takes exactly one name".to_owned(),
                    ))
                }
                [] => {
                    return Err(err(
                        head.line,
                        head.col + head.text.chars().count(),
                        DiagKind::MissingName,
                        "`campaign` needs a name".to_owned(),
                    ))
                }
            };
            let ok_name = !name_tok.text.is_empty()
                && name_tok
                    .text
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
            if !ok_name {
                return Err(err(
                    name_tok.line,
                    name_tok.col,
                    DiagKind::MissingName,
                    format!(
                        "campaign name `{}` may only contain [A-Za-z0-9_-]",
                        name_tok.text
                    ),
                ));
            }
            campaign = Some(Campaign::with_defaults(&name_tok.text));
            continue;
        };

        match head.text.as_str() {
            "campaign" => {
                return Err(err(
                    head.line,
                    head.col,
                    DiagKind::DuplicateDirective,
                    "`campaign` may only appear once, as the first directive".to_owned(),
                ))
            }
            "seed" | "fault_seed" | "train" | "test" => {
                let dup = match head.text.as_str() {
                    "seed" => std::mem::replace(&mut seen.seed, true),
                    "fault_seed" => std::mem::replace(&mut seen.fault_seed, true),
                    "train" => std::mem::replace(&mut seen.train, true),
                    _ => std::mem::replace(&mut seen.test, true),
                };
                if dup {
                    return Err(err(
                        head.line,
                        head.col,
                        DiagKind::DuplicateDirective,
                        format!("`{}` given more than once", head.text),
                    ));
                }
                let value_tok = match &tokens[1..] {
                    [tok] if !tok.punct => tok,
                    [tok, ..] => {
                        return Err(err(
                            tok.line,
                            tok.col,
                            DiagKind::Syntax,
                            format!("`{}` takes exactly one value", head.text),
                        ))
                    }
                    [] => {
                        return Err(err(
                            head.line,
                            head.col + head.text.chars().count(),
                            DiagKind::Syntax,
                            format!("`{}` needs a value", head.text),
                        ))
                    }
                };
                match head.text.as_str() {
                    "seed" => c.seed = parse_u64(value_tok)?,
                    "fault_seed" => c.fault_seed = parse_u64(value_tok)?,
                    "train" => {
                        let n = parse_usize(value_tok)?;
                        check_range(value_tok, "train trials", n as f64, 1.0, 1000.0)?;
                        c.train = n;
                    }
                    _ => {
                        let n = parse_usize(value_tok)?;
                        check_range(value_tok, "test trials", n as f64, 1.0, 1000.0)?;
                        c.test = n;
                    }
                }
            }
            "axis" => {
                let (name_tok, rest) = match &tokens[1..] {
                    [name, rest @ ..] if !name.punct => (name, rest),
                    _ => {
                        return Err(err(
                            head.line,
                            head.col + 4,
                            DiagKind::Syntax,
                            "`axis` needs a name, `=`, and values".to_owned(),
                        ))
                    }
                };
                let value_tokens = match rest {
                    [eq, values @ ..] if eq.punct && eq.text == "=" => values,
                    [tok, ..] => {
                        return Err(err(
                            tok.line,
                            tok.col,
                            DiagKind::Syntax,
                            format!("expected `=` after the axis name, got `{}`", tok.text),
                        ))
                    }
                    [] => {
                        return Err(err(
                            name_tok.line,
                            name_tok.col + name_tok.text.chars().count(),
                            DiagKind::Syntax,
                            "expected `=` after the axis name".to_owned(),
                        ))
                    }
                };
                let groups = comma_groups(value_tokens)?;
                if groups.is_empty() {
                    return Err(err(
                        name_tok.line,
                        name_tok.col,
                        DiagKind::EmptyAxis,
                        format!("axis `{}` has no values", name_tok.text),
                    ));
                }
                parse_axis(c, &mut seen, name_tok, &groups)?;
            }
            "at" => {
                let entry = parse_schedule_entry(head, &tokens[1..])?;
                let key = (entry.at, entry.change.kind_rank());
                if let Some((last_at, last_rank)) = last_schedule {
                    if entry.at < last_at {
                        return Err(err(
                            head.line,
                            head.col,
                            DiagKind::ScheduleOrder,
                            format!(
                                "schedule entries must be ordered by trial ({} after {last_at})",
                                entry.at
                            ),
                        ));
                    }
                    if (last_at, last_rank) == key
                        || c.schedule.iter().any(|e| {
                            e.at == entry.at && e.change.kind_rank() == entry.change.kind_rank()
                        })
                    {
                        return Err(err(
                            head.line,
                            head.col,
                            DiagKind::ScheduleOrder,
                            format!(
                                "`{}` scheduled twice at trial {}",
                                entry.change.keyword(),
                                entry.at
                            ),
                        ));
                    }
                }
                last_schedule = Some(key);
                c.schedule.push(entry);
            }
            other => {
                return Err(err(
                    head.line,
                    head.col,
                    DiagKind::UnknownDirective,
                    format!(
                        "unknown directive `{other}` (campaign, seed, fault_seed, train, test, axis, at)"
                    ),
                ))
            }
        }
    }

    let Some(campaign) = campaign else {
        return Err(err(
            1,
            1,
            DiagKind::MissingName,
            "empty campaign: the first directive must be `campaign <name>`".to_owned(),
        ));
    };
    finish_validate(&campaign, text)?;
    Ok(campaign)
}

/// Parses one `axis <name> = ...` directive into the grid.
fn parse_axis(
    c: &mut Campaign,
    seen: &mut Seen,
    name_tok: &Token,
    groups: &[Vec<&Token>],
) -> Result<(), CampaignError> {
    let dup = |seen: &mut bool| std::mem::replace(seen, true);
    let line = name_tok.line;
    let duplicated = match name_tok.text.as_str() {
        "materials" => dup(&mut seen.materials),
        "environment" => dup(&mut seen.environment),
        "distance_cm" => dup(&mut seen.distance),
        "container" => dup(&mut seen.container),
        "diameter_cm" => dup(&mut seen.diameter),
        "packets" => dup(&mut seen.packets),
        "intensity" => dup(&mut seen.intensity),
        "replica" => dup(&mut seen.replica),
        other => {
            return Err(err(
                name_tok.line,
                name_tok.col,
                DiagKind::UnknownAxis,
                format!(
                    "unknown axis `{other}` (materials, environment, distance_cm, container, \
                     diameter_cm, packets, intensity, replica)"
                ),
            ))
        }
    };
    if duplicated {
        return Err(err(
            name_tok.line,
            name_tok.col,
            DiagKind::DuplicateAxis,
            format!("axis `{}` declared twice", name_tok.text),
        ));
    }
    match name_tok.text.as_str() {
        "materials" => {
            let mut sets = Vec::new();
            for group in groups {
                sets.push(material_set(group, line)?);
            }
            c.axes.materials = sets;
        }
        "environment" => {
            let mut envs = Vec::new();
            for group in groups {
                envs.push(environment_value(single_word(group, line, "environment")?)?);
            }
            c.axes.environments = envs;
        }
        "distance_cm" => {
            let mut values = Vec::new();
            for group in groups {
                let tok = single_word(group, line, "distance")?;
                let v = parse_f64(tok)?;
                check_range(tok, "distance_cm", v, 10.0, 10_000.0)?;
                values.push(v);
            }
            c.axes.distances_cm = values;
        }
        "container" => {
            let mut values = Vec::new();
            for group in groups {
                values.push(container_value(single_word(group, line, "container")?)?);
            }
            c.axes.containers = values;
        }
        "diameter_cm" => {
            let mut values = Vec::new();
            for group in groups {
                let tok = single_word(group, line, "diameter")?;
                let v = parse_f64(tok)?;
                check_range(tok, "diameter_cm", v, 1.0, 100.0)?;
                values.push(v);
            }
            c.axes.diameters_cm = values;
        }
        "packets" => {
            let mut values = Vec::new();
            for group in groups {
                let tok = single_word(group, line, "packets")?;
                let n = parse_usize(tok)?;
                check_range(tok, "packets", n as f64, 1.0, 1000.0)?;
                values.push(n);
            }
            c.axes.packets = values;
        }
        "intensity" => {
            let mut values = Vec::new();
            for group in groups {
                let tok = single_word(group, line, "intensity")?;
                let v = parse_f64(tok)?;
                check_range(tok, "intensity", v, 0.0, 10.0)?;
                values.push(v);
            }
            c.axes.intensities = values;
        }
        "replica" => {
            let mut values = Vec::new();
            for group in groups {
                values.push(parse_u64(single_word(group, line, "replica")?)?);
            }
            c.axes.replicas = values;
        }
        _ => {}
    }
    Ok(())
}

/// Parses the tail of an `at <trial> <directive> <arg>` line.
fn parse_schedule_entry(head: &Token, rest: &[Token]) -> Result<ScheduleEntry, CampaignError> {
    let (trial_tok, dir_tok, args) = match rest {
        [trial, dir, args @ ..] if !trial.punct && !dir.punct => (trial, dir, args),
        [tok, ..] => {
            return Err(err(
                tok.line,
                tok.col,
                DiagKind::Syntax,
                "`at` takes a trial number and a directive".to_owned(),
            ))
        }
        [] => {
            return Err(err(
                head.line,
                head.col + 2,
                DiagKind::Syntax,
                "`at` takes a trial number and a directive".to_owned(),
            ))
        }
    };
    let at = parse_usize(trial_tok)?;
    let arg = |what: &str| -> Result<&Token, CampaignError> {
        match args {
            [tok] if !tok.punct => Ok(tok),
            [tok, ..] => Err(err(
                tok.line,
                tok.col,
                DiagKind::Syntax,
                format!("`{}` takes exactly one {what}", dir_tok.text),
            )),
            [] => Err(err(
                dir_tok.line,
                dir_tok.col + dir_tok.text.chars().count(),
                DiagKind::Syntax,
                format!("`{}` needs a {what}", dir_tok.text),
            )),
        }
    };
    let change = match dir_tok.text.as_str() {
        "fault" => {
            let tok = arg("intensity")?;
            let v = parse_f64(tok)?;
            check_range(tok, "fault intensity", v, 0.0, 10.0)?;
            ScheduleChange::Fault(v)
        }
        "environment" => ScheduleChange::Environment(environment_value(arg("environment")?)?),
        "target" => {
            let tok = arg("mode")?;
            let mode = match tok.text.as_str() {
                "present" => TargetMode::Present,
                "swapped" => TargetMode::Swapped,
                "removed" => TargetMode::Removed,
                other => {
                    return Err(err(
                        tok.line,
                        tok.col,
                        DiagKind::UnknownSchedule,
                        format!(
                            "unknown target mode `{other}` (expected present, swapped or removed)"
                        ),
                    ))
                }
            };
            ScheduleChange::Target(mode)
        }
        "dropout" => {
            let tok = arg("probability")?;
            let v = parse_f64(tok)?;
            check_range(tok, "dropout probability", v, 0.0, 1.0)?;
            ScheduleChange::Dropout(v)
        }
        other => {
            return Err(err(
                dir_tok.line,
                dir_tok.col,
                DiagKind::UnknownSchedule,
                format!(
                    "unknown schedule directive `{other}` (fault, environment, target, dropout)"
                ),
            ))
        }
    };
    Ok(ScheduleEntry { at, change })
}

/// Cross-directive validation that needs the whole campaign: schedule
/// trials vs the test count, and the expansion-size cap.
fn finish_validate(c: &Campaign, text: &str) -> Result<(), CampaignError> {
    for entry in &c.schedule {
        if entry.at >= c.test {
            // Re-locate the entry's line for a precise diagnostic.
            let (line, col) = locate_schedule_line(text, entry.at, entry.change.keyword());
            return Err(err(
                line,
                col,
                DiagKind::ScheduleRange,
                format!(
                    "schedule trial {} is outside the campaign's {} test trials (0..{})",
                    entry.at, c.test, c.test
                ),
            ));
        }
    }
    let cells = crate::grid::cell_count(c);
    if cells > MAX_CELLS {
        return Err(err(
            1,
            1,
            DiagKind::OutOfRange,
            format!("campaign expands to {cells} cells, more than the {MAX_CELLS} cap"),
        ));
    }
    Ok(())
}

/// Finds the source position of the `at <trial> <keyword>` line for the
/// [`DiagKind::ScheduleRange`] diagnostic (best-effort: falls back to 1:1).
fn locate_schedule_line(text: &str, at: usize, keyword: &str) -> (usize, usize) {
    for (idx, raw_line) in text.lines().enumerate() {
        let tokens = lex_line(idx + 1, raw_line);
        if let [head, trial, dir, ..] = tokens.as_slice() {
            if head.text == "at" && trial.text == at.to_string() && dir.text == keyword {
                return (idx + 1, trial.col);
            }
        }
    }
    (1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axes, DEFAULT_FAULT_SEED, DEFAULT_SEED, DEFAULT_TEST, DEFAULT_TRAIN};

    #[test]
    fn minimal_campaign_parses_with_defaults() {
        let c = parse("campaign tiny\n").unwrap();
        assert_eq!(c.name, "tiny");
        assert_eq!(c.seed, DEFAULT_SEED);
        assert_eq!(c.fault_seed, DEFAULT_FAULT_SEED);
        assert_eq!(c.train, DEFAULT_TRAIN);
        assert_eq!(c.test, DEFAULT_TEST);
        assert_eq!(c.axes, Axes::default());
        assert!(c.schedule.is_empty());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header comment\n\ncampaign demo  # trailing comment\n\nseed 7\n";
        let c = parse(text).unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn hex_seeds_parse() {
        let c = parse("campaign h\nseed 0xACC0\nfault_seed 0xFA17\n").unwrap();
        assert_eq!(c.seed, 0xACC0);
        assert_eq!(c.fault_seed, 0xFA17);
    }

    #[test]
    fn full_grid_and_schedule_parse() {
        let text = "campaign full\nseed 1\ntrain 2\ntest 4\n\
                    axis materials = Vinegar+Milk, paper10, salt1.5+salt3\n\
                    axis environment = hall, lab\n\
                    axis distance_cm = 150, 200\n\
                    axis container = plastic, glass\n\
                    axis diameter_cm = 14.3\n\
                    axis packets = 12\n\
                    axis intensity = 0, 0.2\n\
                    axis replica = 0, 1\n\
                    at 0 fault 0.1\nat 2 environment library\nat 2 target removed\nat 3 dropout 0.5\n";
        let c = parse(text).unwrap();
        assert_eq!(c.axes.materials.len(), 3);
        assert_eq!(c.axes.materials[1], MaterialSet::Paper10);
        assert_eq!(
            c.axes.environments,
            vec![Environment::EmptyHall, Environment::Lab]
        );
        assert_eq!(c.axes.containers.len(), 2);
        assert_eq!(c.schedule.len(), 4);
        assert_eq!(c.schedule[0].at, 0);
        assert_eq!(c.schedule[3].change, ScheduleChange::Dropout(0.5));
    }

    #[test]
    fn first_error_wins_with_position() {
        let e = parse("campaign x\naxis distance_cm = 150, -4\n").unwrap_err();
        assert_eq!(e.kind, DiagKind::OutOfRange);
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 25);
        assert!(!e.to_string().contains('\n'));
    }

    #[test]
    fn schedule_must_stay_inside_test_trials() {
        let e = parse("campaign x\ntest 3\nat 3 fault 0.5\n").unwrap_err();
        assert_eq!(e.kind, DiagKind::ScheduleRange);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_display_is_single_line() {
        for text in [
            "",
            "seed 4\n",
            "campaign x\nseed beef\n",
            "campaign x\naxis moon = 1\n",
            "campaign x\naxis materials = Vinegar\n",
            "campaign x\nat 0 explode 1\n",
        ] {
            let e = parse(text).unwrap_err();
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "{msg}");
            assert!(msg.starts_with("line "), "{msg}");
        }
    }
}
