//! Property tests for the campaign format and grid laws:
//!
//! 1. render → parse is the identity on arbitrary *valid* campaign ASTs
//!    (the canonical-form contract from the `ast` module docs);
//! 2. the parser is total — arbitrary input text, including byte
//!    mutations of a valid rendering, never panics, only `Err`s;
//! 3. the grid expands to exactly the product of the axis lengths;
//! 4. per-cell derived seeds are collision-free and survive an f64
//!    round-trip exactly (the JSON-number precision contract).
//!
//! The vendored proptest shim only ships range and vec strategies, so the
//! campaign generator below implements [`Strategy`] by hand: it draws a
//! random valid AST directly from the test RNG.

use proptest::prelude::*;
use proptest::TestRng;

use wimi_campaign::{
    cell_count, derive_cell_seed, expand, parse, Campaign, MaterialRef, MaterialSet,
    ScheduleChange, ScheduleEntry, TargetMode,
};
use wimi_phy::channel::Environment;
use wimi_phy::material::{ContainerMaterial, Liquid};

const LIQUID_POOL: [Liquid; 10] = [
    Liquid::Vinegar,
    Liquid::Honey,
    Liquid::Soy,
    Liquid::Milk,
    Liquid::Pepsi,
    Liquid::Liquor,
    Liquid::PureWater,
    Liquid::Oil,
    Liquid::Coke,
    Liquid::SweetWater,
];

const ENVIRONMENTS: [Environment; 3] = [
    Environment::EmptyHall,
    Environment::Lab,
    Environment::Library,
];

const CONTAINERS: [ContainerMaterial; 3] = [
    ContainerMaterial::Glass,
    ContainerMaterial::Plastic,
    ContainerMaterial::Metal,
];

fn pick<T: Copy>(rng: &mut TestRng, pool: &[T]) -> T {
    pool[(rng.next_u64() as usize) % pool.len()]
}

/// A non-empty random subset of `pool`, in pool order (for axes whose
/// values must be distinct).
fn subset<T: Copy>(rng: &mut TestRng, pool: &[T]) -> Vec<T> {
    loop {
        let mask = rng.next_u64();
        let chosen: Vec<T> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        if !chosen.is_empty() {
            return chosen;
        }
    }
}

fn f64_in(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.unit_f64()
}

fn vec_of<T>(rng: &mut TestRng, max_len: usize, mut gen: impl FnMut(&mut TestRng) -> T) -> Vec<T> {
    let n = 1 + (rng.next_u64() as usize) % max_len;
    (0..n).map(|_| gen(rng)).collect()
}

fn material_set(rng: &mut TestRng) -> MaterialSet {
    if rng.next_u64().is_multiple_of(5) {
        return MaterialSet::Paper10;
    }
    // 2–4 distinct pool entries: catalog liquids plus two fixed saltwater
    // grades, so the salt path round-trips without float-dedup headaches.
    let pool: Vec<MaterialRef> = LIQUID_POOL
        .iter()
        .map(|&l| MaterialRef::Catalog(l))
        .chain([MaterialRef::Saltwater(1.5), MaterialRef::Saltwater(12.25)])
        .collect();
    let want = 2 + (rng.next_u64() as usize) % 3;
    let mut start = (rng.next_u64() as usize) % pool.len();
    let mut refs = Vec::with_capacity(want);
    for _ in 0..want {
        refs.push(pool[start].clone());
        start = (start + 1 + (rng.next_u64() as usize) % 3) % pool.len();
        while refs.contains(&pool[start]) {
            start = (start + 1) % pool.len();
        }
    }
    MaterialSet::List(refs)
}

fn schedule_change(rng: &mut TestRng, rank: u8) -> ScheduleChange {
    match rank {
        0 => ScheduleChange::Fault(f64_in(rng, 0.0, 10.0)),
        1 => ScheduleChange::Environment(pick(rng, &ENVIRONMENTS)),
        2 => ScheduleChange::Target(pick(
            rng,
            &[
                TargetMode::Present,
                TargetMode::Swapped,
                TargetMode::Removed,
            ],
        )),
        _ => ScheduleChange::Dropout(f64_in(rng, 0.0, 1.0)),
    }
}

/// A valid schedule for `test` trials: unique `(at, kind)` keys in
/// non-decreasing trial order, every `at < test`.
fn schedule(rng: &mut TestRng, test: usize) -> Vec<ScheduleEntry> {
    let n = (rng.next_u64() as usize) % 6;
    let mut keys: Vec<(usize, u8)> = (0..n)
        .map(|_| ((rng.next_u64() as usize) % test, (rng.next_u64() % 4) as u8))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|(at, rank)| ScheduleEntry {
            at,
            change: schedule_change(rng, rank),
        })
        .collect()
}

/// Generates arbitrary *valid* campaign ASTs (axes ≤ 3 values each keep
/// the cell count far below `MAX_CELLS`).
struct ValidCampaign;

impl Strategy for ValidCampaign {
    type Value = Campaign;

    fn sample(&self, rng: &mut TestRng) -> Campaign {
        let name_len = 1 + (rng.next_u64() as usize) % 12;
        let name: String = (0..name_len)
            .map(|i| {
                let alphabet = if i == 0 {
                    "abcdefghijklmnopqrstuvwxyz"
                } else {
                    "abcdefghijklmnopqrstuvwxyz0123456789_-"
                };
                pick(rng, alphabet.as_bytes()) as char
            })
            .collect();
        let mut c = Campaign::with_defaults(&name);
        c.seed = rng.next_u64();
        c.fault_seed = rng.next_u64();
        c.train = 1 + (rng.next_u64() as usize) % 50;
        c.test = 1 + (rng.next_u64() as usize) % 50;
        c.axes.materials = vec_of(rng, 3, material_set);
        c.axes.environments = subset(rng, &ENVIRONMENTS);
        c.axes.distances_cm = vec_of(rng, 3, |r| f64_in(r, 10.0, 10_000.0));
        c.axes.containers = subset(rng, &CONTAINERS);
        c.axes.diameters_cm = vec_of(rng, 3, |r| f64_in(r, 1.0, 100.0));
        c.axes.packets = vec_of(rng, 3, |r| 1 + (r.next_u64() as usize) % 1000);
        c.axes.intensities = vec_of(rng, 3, |r| f64_in(r, 0.0, 10.0));
        c.axes.replicas = vec_of(rng, 3, |r| r.next_u64());
        c.schedule = schedule(rng, c.test);
        c
    }
}

/// Generates arbitrary text over a parser-hostile alphabet: directive
/// words, punctuation, numbers, comments, newlines and stray unicode.
struct HostileText;

impl Strategy for HostileText {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        const PIECES: [&str; 24] = [
            "campaign",
            "seed",
            "axis",
            "at",
            "=",
            ",",
            "+",
            "#",
            "\n",
            " ",
            "0x",
            "99",
            "materials",
            "paper10",
            "salt",
            "fault",
            "-",
            "1e308",
            "inf",
            "NaN",
            "é",
            "…",
            "\t",
            "x",
        ];
        let n = (rng.next_u64() as usize) % 60;
        (0..n).map(|_| pick(rng, &PIECES)).collect()
    }
}

proptest! {
    // Canonical-form contract: `parse(render(c)) == c`.
    #[test]
    fn render_parse_round_trip_is_identity(c in ValidCampaign) {
        let text = c.render();
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("rendered campaign failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, c);
    }

    // The parser is total over arbitrary input: no panic, ever.
    #[test]
    fn arbitrary_input_never_panics(text in HostileText) {
        let _ = parse(&text);
    }

    // Byte-level mutations of a valid rendering never panic either — at
    // worst they shift which `Err` comes back.
    #[test]
    fn mutated_valid_campaign_never_panics(
        c in ValidCampaign,
        pos in 0usize..1 << 20,
        byte in 0u32..256,
    ) {
        let mut bytes = c.render().into_bytes();
        if !bytes.is_empty() {
            let i = pos % bytes.len();
            bytes[i] = byte as u8;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse(&text);
        }
    }

    // Grid law: the expansion has exactly `∏ axis lengths` cells, indexed
    // densely in order.
    #[test]
    fn cell_count_is_product_of_axis_lengths(c in ValidCampaign) {
        let expected: usize = [
            c.axes.materials.len(),
            c.axes.environments.len(),
            c.axes.distances_cm.len(),
            c.axes.containers.len(),
            c.axes.diameters_cm.len(),
            c.axes.packets.len(),
            c.axes.intensities.len(),
            c.axes.replicas.len(),
        ]
        .iter()
        .product();
        prop_assert_eq!(cell_count(&c), expected);
        let cells = expand(&c);
        prop_assert_eq!(cells.len(), expected);
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.index, i as u64);
        }
    }

    // Seed law: derived per-cell seeds are collision-free under any root
    // and fit exactly into an f64-backed JSON number.
    #[test]
    fn derived_seeds_are_unique_and_f64_exact(root in 0u64..u64::MAX, n in 1u64..2048) {
        let mut seeds: Vec<u64> = (0..n).map(|i| derive_cell_seed(root, i)).collect();
        for (i, &s) in seeds.iter().enumerate() {
            prop_assert!(s < (1 << 53), "seed {s} exceeds 2^53");
            prop_assert_eq!(s as f64 as u64, s, "seed {} not f64-exact", s);
            prop_assert_eq!(s & 0x1_FFFF, i as u64);
        }
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), n as usize, "seed collision under root {}", root);
    }
}
