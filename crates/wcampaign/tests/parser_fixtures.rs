//! Fixture suite for the campaign parser: every diagnostic the
//! parser/validator can emit is pinned to an on-disk `.campaign` file
//! with its exact 1-based line and column, and a coverage assertion
//! proves the table exercises [`DiagKind::ALL`] exhaustively — adding a
//! diagnostic kind without a fixture fails the build.

use std::fs;
use std::path::PathBuf;

use wimi_campaign::{parse, DiagKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// `(file, kind, line, col, message fragment)` — one row per diagnostic.
const BAD: &[(&str, DiagKind, usize, usize, &str)] = &[
    (
        "syntax.campaign",
        DiagKind::Syntax,
        2,
        24,
        "empty value before `,`",
    ),
    (
        "number.campaign",
        DiagKind::Number,
        2,
        6,
        "`beef` is not a non-negative integer",
    ),
    (
        "unknown-directive.campaign",
        DiagKind::UnknownDirective,
        2,
        1,
        "unknown directive `sede`",
    ),
    (
        "duplicate-directive.campaign",
        DiagKind::DuplicateDirective,
        3,
        1,
        "`train` given more than once",
    ),
    (
        "missing-name.campaign",
        DiagKind::MissingName,
        1,
        1,
        "first directive must be `campaign <name>`",
    ),
    (
        "unknown-axis.campaign",
        DiagKind::UnknownAxis,
        2,
        6,
        "unknown axis `moon`",
    ),
    (
        "duplicate-axis.campaign",
        DiagKind::DuplicateAxis,
        3,
        6,
        "axis `packets` declared twice",
    ),
    (
        "empty-axis.campaign",
        DiagKind::EmptyAxis,
        2,
        6,
        "axis `intensity` has no values",
    ),
    (
        "unknown-material.campaign",
        DiagKind::UnknownMaterial,
        2,
        18,
        "unknown material `Water`",
    ),
    (
        "duplicate-material.campaign",
        DiagKind::DuplicateMaterial,
        2,
        27,
        "material `Milk` listed twice",
    ),
    (
        "material-set-too-small.campaign",
        DiagKind::MaterialSetTooSmall,
        2,
        18,
        "at least two classes",
    ),
    (
        "unknown-environment.campaign",
        DiagKind::UnknownEnvironment,
        2,
        20,
        "unknown environment `attic`",
    ),
    (
        "unknown-container.campaign",
        DiagKind::UnknownContainer,
        2,
        18,
        "unknown container `wood`",
    ),
    (
        "out-of-range.campaign",
        DiagKind::OutOfRange,
        2,
        18,
        "intensity must be within [0, 10]",
    ),
    (
        "schedule-order.campaign",
        DiagKind::ScheduleOrder,
        4,
        1,
        "ordered by trial",
    ),
    (
        "schedule-range.campaign",
        DiagKind::ScheduleRange,
        3,
        4,
        "outside the campaign's 3 test trials",
    ),
    (
        "unknown-schedule.campaign",
        DiagKind::UnknownSchedule,
        2,
        6,
        "unknown schedule directive `explode`",
    ),
];

#[test]
fn every_bad_fixture_hits_its_exact_diagnostic() {
    for &(file, kind, line, col, fragment) in BAD {
        let err = parse(&fixture(file)).expect_err(file);
        assert_eq!(err.kind, kind, "{file}: kind (got: {err})");
        assert_eq!(err.line, line, "{file}: line (got: {err})");
        assert_eq!(err.col, col, "{file}: col (got: {err})");
        assert!(
            err.msg.contains(fragment),
            "{file}: message `{}` missing `{fragment}`",
            err.msg
        );
        let rendered = err.to_string();
        assert!(!rendered.contains('\n'), "{file}: multi-line error");
        assert_eq!(rendered, format!("line {line}, col {col}: {}", err.msg));
    }
}

#[test]
fn fixtures_cover_every_diagnostic_kind() {
    for kind in DiagKind::ALL {
        let count = BAD.iter().filter(|row| row.1 == kind).count();
        assert!(
            count >= 1,
            "no fixture exercises DiagKind::{kind:?} ({})",
            kind.name()
        );
    }
    assert_eq!(BAD.len(), DiagKind::ALL.len(), "one fixture per kind");
}

#[test]
fn good_fixtures_parse() {
    let minimal = parse(&fixture("good-minimal.campaign")).expect("good-minimal");
    assert_eq!(minimal.name, "minimal");

    let full = parse(&fixture("good-full.campaign")).expect("good-full");
    assert_eq!(full.name, "full");
    assert_eq!(full.seed, 0x1CE);
    assert_eq!(full.axes.materials.len(), 3);
    assert_eq!(full.axes.environments.len(), 3);
    assert_eq!(full.schedule.len(), 4);
}

#[test]
fn shipped_campaign_files_parse_and_stay_canonical_under_reparse() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../campaigns");
    let mut seen = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("campaigns directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "campaign"))
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("read shipped campaign");
        let c = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Canonical-form closure: render → parse is the identity.
        let again = parse(&c.render()).expect("rendered form parses");
        assert_eq!(again, c, "{}", path.display());
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected the three shipped campaigns, found {seen}"
    );
}
