//! The [`Recorder`] sink: stage spans, counters, issue tallies and
//! fixed-bucket histograms, all lock-free atomics.
//!
//! Everything recorded is an order-independent aggregate (commutative
//! `fetch_add`s), so a snapshot taken after the parallel fan-out joins is
//! bitwise identical for any `WIMI_THREADS` setting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::{Clock, NullClock};
use crate::snapshot::{Hist, Snapshot, StageStat};

/// The pipeline stages a span can cover, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// CSI acquisition (simulator or driver).
    Capture,
    /// Packet/antenna screening and salvage.
    Screening,
    /// Cross-antenna phase differencing.
    PhaseCalibration,
    /// Good-subcarrier selection (paper §III-B).
    SubcarrierSelection,
    /// Amplitude outlier rejection, denoising, ratio.
    AmplitudeDenoising,
    /// Joint Ω̄ extraction / γ ambiguity resolution.
    GammaResolution,
    /// SVM training and prediction.
    Classification,
}

impl StageId {
    /// All stages in canonical (pipeline) order.
    pub const ALL: [StageId; 7] = [
        StageId::Capture,
        StageId::Screening,
        StageId::PhaseCalibration,
        StageId::SubcarrierSelection,
        StageId::AmplitudeDenoising,
        StageId::GammaResolution,
        StageId::Classification,
    ];

    /// Stable snake_case name used in snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            StageId::Capture => "capture",
            StageId::Screening => "screening",
            StageId::PhaseCalibration => "phase_calibration",
            StageId::SubcarrierSelection => "subcarrier_selection",
            StageId::AmplitudeDenoising => "amplitude_denoising",
            StageId::GammaResolution => "gamma_resolution",
            StageId::Classification => "classification",
        }
    }
}

/// Monotone event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Calls to `CsiSource::capture`.
    CapturesTaken,
    /// Packets synthesised by the simulator.
    PacketsSimulated,
    /// Packets surviving screening (baseline + target).
    PacketsKept,
    /// Packets removed by screening (baseline + target).
    PacketsDropped,
    /// Antennas removed by screening.
    AntennasDropped,
    /// Subcarriers rejected by post-salvage triage.
    SubcarriersRejected,
    /// `WiMi::measure` invocations.
    MeasurementsAttempted,
    /// Measurements yielding a feature.
    MeasurementsOk,
    /// Measurements refused with a taxonomy error.
    MeasurementsFailed,
    /// Measurements that needed the salvage path.
    MeasurementsSalvaged,
    /// Antenna pairs fed into joint extraction.
    PairsAttempted,
    /// Pairs surviving per-pair extraction.
    PairsUsable,
    /// Pairs consistent under the winning γ assignment.
    PairsResolved,
    /// Pairs skipped: selected subcarrier amplitude degenerate.
    PairsSkippedDegenerate,
    /// Pairs skipped: whole-band amplitude unusable.
    PairsSkippedBandUnusable,
    /// Retried measurements (failed attempts that were re-taken).
    Retries,
    /// Harness trials abandoned after the retry budget.
    TrialsDropped,
    /// Binary SVM machines trained (one-vs-one pairs).
    SvmMachinesTrained,
    /// Measurement requests submitted to the serve engine.
    ServeRequests,
    /// Requests shed at a full bounded queue (load shedding).
    ServeShed,
    /// Classification batch calls issued by the serve engine.
    ServeBatches,
    /// Requests classified through a batch call.
    ServeBatched,
    /// Serve model-cache lookups that found a trained model.
    ModelCacheHits,
    /// Serve model-cache lookups that had to train (single-flight).
    ModelCacheMisses,
    /// Peak bounded-queue depth observed across the run.
    ServeQueuePeak,
}

impl CounterId {
    /// All counters in canonical (snapshot) order.
    pub const ALL: [CounterId; 25] = [
        CounterId::CapturesTaken,
        CounterId::PacketsSimulated,
        CounterId::PacketsKept,
        CounterId::PacketsDropped,
        CounterId::AntennasDropped,
        CounterId::SubcarriersRejected,
        CounterId::MeasurementsAttempted,
        CounterId::MeasurementsOk,
        CounterId::MeasurementsFailed,
        CounterId::MeasurementsSalvaged,
        CounterId::PairsAttempted,
        CounterId::PairsUsable,
        CounterId::PairsResolved,
        CounterId::PairsSkippedDegenerate,
        CounterId::PairsSkippedBandUnusable,
        CounterId::Retries,
        CounterId::TrialsDropped,
        CounterId::SvmMachinesTrained,
        CounterId::ServeRequests,
        CounterId::ServeShed,
        CounterId::ServeBatches,
        CounterId::ServeBatched,
        CounterId::ModelCacheHits,
        CounterId::ModelCacheMisses,
        CounterId::ServeQueuePeak,
    ];

    /// Stable snake_case name used in snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::CapturesTaken => "captures_taken",
            CounterId::PacketsSimulated => "packets_simulated",
            CounterId::PacketsKept => "packets_kept",
            CounterId::PacketsDropped => "packets_dropped",
            CounterId::AntennasDropped => "antennas_dropped",
            CounterId::SubcarriersRejected => "subcarriers_rejected",
            CounterId::MeasurementsAttempted => "measurements_attempted",
            CounterId::MeasurementsOk => "measurements_ok",
            CounterId::MeasurementsFailed => "measurements_failed",
            CounterId::MeasurementsSalvaged => "measurements_salvaged",
            CounterId::PairsAttempted => "pairs_attempted",
            CounterId::PairsUsable => "pairs_usable",
            CounterId::PairsResolved => "pairs_resolved",
            CounterId::PairsSkippedDegenerate => "pairs_skipped_degenerate",
            CounterId::PairsSkippedBandUnusable => "pairs_skipped_band_unusable",
            CounterId::Retries => "retries",
            CounterId::TrialsDropped => "trials_dropped",
            CounterId::SvmMachinesTrained => "svm_machines_trained",
            CounterId::ServeRequests => "serve_requests",
            CounterId::ServeShed => "serve_shed",
            CounterId::ServeBatches => "serve_batches",
            CounterId::ServeBatched => "serve_batched",
            CounterId::ModelCacheHits => "model_cache_hits",
            CounterId::ModelCacheMisses => "model_cache_misses",
            CounterId::ServeQueuePeak => "serve_queue_peak",
        }
    }
}

/// Last-value gauges: instantaneous levels, as opposed to the monotone
/// [`CounterId`] counters above.
///
/// A gauge store is last-write-wins, which is only deterministic when
/// every store happens at a deterministic point in the program — so
/// gauges must be set from serial driver code (the serve tick loop),
/// never from inside the parallel fan-out where store order would depend
/// on worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Requests queued across all serve shards when the last drain began.
    ServeQueueDepth,
    /// Sessions the serve engine is currently driving.
    ServeSessions,
}

impl GaugeId {
    /// All gauges in canonical (snapshot) order.
    pub const ALL: [GaugeId; 2] = [GaugeId::ServeQueueDepth, GaugeId::ServeSessions];

    /// Stable snake_case name used in snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            GaugeId::ServeQueueDepth => "serve_queue_depth",
            GaugeId::ServeSessions => "serve_sessions",
        }
    }
}

/// Quality-report issue kinds, mirroring `wimi_core::error::IssueKind`
/// (named here rather than imported: `wimi-obs` sits below `wimi-core` in
/// the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueId {
    /// Packets dropped for non-finite CSI entries.
    NonFinitePackets,
    /// An antenna was dead across the capture.
    DeadAntenna,
    /// An antenna was dropped for partial dropout.
    PartialDropout,
    /// Too few packets survived screening.
    ShortCapture,
    /// Subcarriers rejected by triage.
    RejectedSubcarriers,
    /// Antenna pairs left unresolved by γ search.
    PairsUnresolved,
    /// Extraction refused with a taxonomy error.
    Extraction,
}

impl IssueId {
    /// All issue kinds in canonical (snapshot) order.
    pub const ALL: [IssueId; 7] = [
        IssueId::NonFinitePackets,
        IssueId::DeadAntenna,
        IssueId::PartialDropout,
        IssueId::ShortCapture,
        IssueId::RejectedSubcarriers,
        IssueId::PairsUnresolved,
        IssueId::Extraction,
    ];

    /// Stable snake_case name used in snapshots.
    pub const fn name(self) -> &'static str {
        match self {
            IssueId::NonFinitePackets => "non_finite_packets",
            IssueId::DeadAntenna => "dead_antenna",
            IssueId::PartialDropout => "partial_dropout",
            IssueId::ShortCapture => "short_capture",
            IssueId::RejectedSubcarriers => "rejected_subcarriers",
            IssueId::PairsUnresolved => "pairs_unresolved",
            IssueId::Extraction => "extraction",
        }
    }
}

/// γ histogram bucket labels: the winning phase wrap count, clamped into
/// the end buckets.
pub const GAMMA_LABELS: [&str; 9] = ["<=-4", "-3", "-2", "-1", "0", "1", "2", "3", ">=4"];

/// Ω̄ dispersion histogram upper bucket edges (last bucket is open).
pub const DISPERSION_EDGES: [f64; 5] = [0.02, 0.05, 0.1, 0.2, 0.5];

/// Ω̄ dispersion histogram bucket labels.
pub const DISPERSION_LABELS: [&str; 6] = ["<=0.02", "<=0.05", "<=0.1", "<=0.2", "<=0.5", ">0.5"];

/// Retry-attempt histogram bucket labels (attempts used per successful
/// or abandoned measurement).
pub const ATTEMPT_LABELS: [&str; 6] = ["1", "2", "3", "4", "5", ">=6"];

/// The observability sink. Cheap to share (`Arc`), thread-safe, and
/// near-free when disabled: every recording method is one branch before
/// any atomic traffic.
pub struct Recorder {
    enabled: bool,
    clock: Arc<dyn Clock>,
    stage_calls: [AtomicU64; 7],
    stage_ns: [AtomicU64; 7],
    counters: [AtomicU64; 25],
    gauges: [AtomicU64; 2],
    issues: [AtomicU64; 7],
    gamma: [AtomicU64; 9],
    dispersion: [AtomicU64; 6],
    attempts: [AtomicU64; 6],
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

fn zeroes<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

impl Recorder {
    fn with(enabled: bool, clock: Arc<dyn Clock>) -> Self {
        Recorder {
            enabled,
            clock,
            stage_calls: zeroes(),
            stage_ns: zeroes(),
            counters: zeroes(),
            gauges: zeroes(),
            issues: zeroes(),
            gamma: zeroes(),
            dispersion: zeroes(),
            attempts: zeroes(),
        }
    }

    /// A recorder that records nothing (the default). All methods reduce
    /// to a single branch.
    pub fn disabled() -> Self {
        Recorder::with(false, Arc::new(NullClock))
    }

    /// The deterministic enabled mode: counters, issues and histograms
    /// accumulate; span durations stay 0 because the [`NullClock`] reads
    /// nothing. Snapshots from this mode are bitwise reproducible under
    /// any `WIMI_THREADS`.
    pub fn enabled() -> Self {
        Recorder::with(true, Arc::new(NullClock))
    }

    /// Enabled with an injected clock so span durations are real. Only
    /// binary crates should inject a wall clock; doing so trades away
    /// snapshot determinism (durations only — counts stay exact).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Recorder::with(true, clock)
    }

    /// Whether this recorder is accumulating.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span over `stage`; closing (dropping) it adds one call and
    /// the elapsed clock delta to the stage's totals.
    #[inline]
    pub fn span(&self, stage: StageId) -> Span<'_> {
        let start_ns = if self.enabled { self.clock.now_ns() } else { 0 };
        Span {
            rec: self,
            stage,
            start_ns,
        }
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: CounterId, n: u64) {
        if self.enabled {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, counter: CounterId) {
        self.add(counter, 1);
    }

    /// Sets a gauge to its current level (last-write-wins). Only call
    /// from deterministic serial code — see [`GaugeId`].
    #[inline]
    pub fn set_gauge(&self, gauge: GaugeId, value: u64) {
        if self.enabled {
            self.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Tallies `n` occurrences of a quality-report issue kind.
    #[inline]
    pub fn issue(&self, issue: IssueId, n: u64) {
        if self.enabled {
            self.issues[issue as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records a resolved γ (phase wrap count) into the γ histogram.
    /// Any `i32` is safe: values beyond the bucket range clamp into the
    /// end buckets (widened to i64 first, so `i32::MAX` cannot overflow
    /// the `+ 4` shift).
    #[inline]
    pub fn record_gamma(&self, gamma: i32) {
        if self.enabled {
            let idx = (i64::from(gamma) + 4).clamp(0, 8) as usize;
            self.gamma[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an Ω̄ cross-pair dispersion into its histogram.
    /// Dispersion is a spread statistic, so any non-finite *or negative*
    /// input is out of range and lands in the open top bucket rather than
    /// silently misbinning as "tiny".
    #[inline]
    pub fn record_dispersion(&self, dispersion: f64) {
        if self.enabled {
            let idx = if !dispersion.is_finite() || dispersion < 0.0 {
                DISPERSION_EDGES.len()
            } else {
                DISPERSION_EDGES
                    .iter()
                    .position(|&edge| dispersion <= edge)
                    .unwrap_or(DISPERSION_EDGES.len())
            };
            self.dispersion[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records how many attempts one logical measurement consumed
    /// (1 = first try succeeded).
    #[inline]
    pub fn record_attempts(&self, attempts: u64) {
        if self.enabled {
            let idx = attempts.saturating_sub(1).min(5) as usize;
            self.attempts[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads every aggregate into a plain-data [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let read = |a: &AtomicU64| a.load(Ordering::Relaxed);
        Snapshot {
            stages: StageId::ALL
                .iter()
                .map(|&s| StageStat {
                    stage: s.name(),
                    calls: read(&self.stage_calls[s as usize]),
                    total_ns: read(&self.stage_ns[s as usize]),
                })
                .collect(),
            counters: CounterId::ALL
                .iter()
                .map(|&c| (c.name(), read(&self.counters[c as usize])))
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|&g| (g.name(), read(&self.gauges[g as usize])))
                .collect(),
            issues: IssueId::ALL
                .iter()
                .map(|&i| (i.name(), read(&self.issues[i as usize])))
                .collect(),
            gamma: Hist {
                labels: &GAMMA_LABELS,
                counts: self.gamma.iter().map(read).collect(),
            },
            dispersion: Hist {
                labels: &DISPERSION_LABELS,
                counts: self.dispersion.iter().map(read).collect(),
            },
            attempts: Hist {
                labels: &ATTEMPT_LABELS,
                counts: self.attempts.iter().map(read).collect(),
            },
        }
    }
}

/// An open stage span; dropping it books one call plus the elapsed clock
/// delta against the stage.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span<'a> {
    rec: &'a Recorder,
    stage: StageId,
    start_ns: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.rec.enabled {
            let elapsed = self.rec.clock.now_ns().saturating_sub(self.start_ns);
            let idx = self.stage as usize;
            self.rec.stage_calls[idx].fetch_add(1, Ordering::Relaxed);
            self.rec.stage_ns[idx].fetch_add(elapsed, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;

    #[test]
    fn disabled_recorder_stays_zero() {
        let rec = Recorder::disabled();
        rec.incr(CounterId::PacketsKept);
        rec.record_gamma(1);
        rec.record_dispersion(0.3);
        rec.record_attempts(2);
        rec.issue(IssueId::DeadAntenna, 3);
        drop(rec.span(StageId::Capture));
        let snap = rec.snapshot();
        assert!(snap.counters.iter().all(|&(_, v)| v == 0));
        assert!(snap.issues.iter().all(|&(_, v)| v == 0));
        assert!(snap.stages.iter().all(|s| s.calls == 0 && s.total_ns == 0));
    }

    #[test]
    fn counters_and_issues_accumulate() {
        let rec = Recorder::enabled();
        rec.add(CounterId::PacketsKept, 5);
        rec.incr(CounterId::PacketsKept);
        rec.issue(IssueId::ShortCapture, 2);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("packets_kept"), Some(6));
        assert_eq!(
            snap.issues.iter().find(|&&(n, _)| n == "short_capture"),
            Some(&("short_capture", 2))
        );
    }

    #[test]
    fn span_books_calls_and_tick_durations() {
        let rec = Recorder::with_clock(std::sync::Arc::new(TickClock::new(7)));
        drop(rec.span(StageId::GammaResolution));
        drop(rec.span(StageId::GammaResolution));
        let snap = rec.snapshot();
        let stage = snap
            .stages
            .iter()
            .find(|s| s.stage == "gamma_resolution")
            .unwrap();
        assert_eq!(stage.calls, 2);
        // Each span reads the tick clock twice → 7 ns per span.
        assert_eq!(stage.total_ns, 14);
    }

    #[test]
    fn null_clock_spans_cost_zero_ns() {
        let rec = Recorder::enabled();
        drop(rec.span(StageId::Capture));
        let snap = rec.snapshot();
        assert_eq!(snap.stages[0].calls, 1);
        assert_eq!(snap.stages[0].total_ns, 0);
    }

    #[test]
    fn gamma_buckets_clamp_at_edges() {
        let rec = Recorder::enabled();
        for g in [-9, -4, 0, 3, 4, 11] {
            rec.record_gamma(g);
        }
        let counts = rec.snapshot().gamma.counts;
        assert_eq!(counts[0], 2); // -9 and -4
        assert_eq!(counts[4], 1); // 0
        assert_eq!(counts[7], 1); // 3
        assert_eq!(counts[8], 2); // 4 and 11
    }

    #[test]
    fn dispersion_buckets_cover_nan_and_overflow() {
        let rec = Recorder::enabled();
        rec.record_dispersion(0.01);
        rec.record_dispersion(0.3);
        rec.record_dispersion(9.0);
        rec.record_dispersion(f64::NAN);
        let counts = rec.snapshot().dispersion.counts;
        assert_eq!(counts[0], 1);
        assert_eq!(counts[4], 1);
        assert_eq!(counts[5], 2); // overflow + NaN both land in the open bucket
    }

    #[test]
    fn gamma_extremes_do_not_overflow() {
        let rec = Recorder::enabled();
        rec.record_gamma(i32::MIN);
        rec.record_gamma(i32::MAX);
        let counts = rec.snapshot().gamma.counts;
        assert_eq!(counts[0], 1);
        assert_eq!(counts[8], 1);
    }

    #[test]
    fn out_of_range_dispersion_lands_in_open_bucket() {
        let rec = Recorder::enabled();
        for x in [f64::INFINITY, f64::NEG_INFINITY, -0.01, -1e300] {
            rec.record_dispersion(x);
        }
        let counts = rec.snapshot().dispersion.counts;
        assert!(counts[..5].iter().all(|&c| c == 0), "{counts:?}");
        assert_eq!(counts[5], 4);
        // -0.0 is numerically zero, so it bins normally.
        rec.record_dispersion(-0.0);
        assert_eq!(rec.snapshot().dispersion.counts[0], 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_gamma_lands_in_exactly_one_bucket(g in i32::MIN..i32::MAX) {
                let rec = Recorder::enabled();
                rec.record_gamma(g);
                let counts = rec.snapshot().gamma.counts;
                prop_assert_eq!(counts.iter().sum::<u64>(), 1);
            }

            #[test]
            fn any_f64_bit_pattern_lands_in_exactly_one_dispersion_bucket(
                bits in 0u64..u64::MAX,
                case in 0usize..4,
            ) {
                // Random bit patterns reach subnormals and negative
                // values; the `case` override guarantees each run also
                // exercises NaN and both infinities.
                let x = match case {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    _ => f64::from_bits(bits),
                };
                let rec = Recorder::enabled();
                rec.record_dispersion(x);
                let counts = rec.snapshot().dispersion.counts;
                prop_assert_eq!(counts.iter().sum::<u64>(), 1);
                if !x.is_finite() || x < 0.0 {
                    prop_assert_eq!(counts[DISPERSION_EDGES.len()], 1);
                }
            }
        }
    }

    #[test]
    fn attempts_bucket_saturates() {
        let rec = Recorder::enabled();
        rec.record_attempts(1);
        rec.record_attempts(6);
        rec.record_attempts(60);
        let counts = rec.snapshot().attempts.counts;
        assert_eq!(counts[0], 1);
        assert_eq!(counts[5], 2);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let rec = Recorder::enabled();
        rec.set_gauge(GaugeId::ServeQueueDepth, 7);
        rec.set_gauge(GaugeId::ServeQueueDepth, 3);
        rec.set_gauge(GaugeId::ServeSessions, 12);
        let snap = rec.snapshot();
        assert_eq!(snap.gauge("serve_queue_depth"), Some(3));
        assert_eq!(snap.gauge("serve_sessions"), Some(12));
        // Disabled recorders ignore stores entirely.
        let off = Recorder::disabled();
        off.set_gauge(GaugeId::ServeSessions, 9);
        assert_eq!(off.snapshot().gauge("serve_sessions"), Some(0));
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let rec = std::sync::Arc::new(Recorder::enabled());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.incr(CounterId::PairsAttempted);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("pairs_attempted"), Some(4000));
    }
}
