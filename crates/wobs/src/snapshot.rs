//! Plain-data snapshots, stable-order JSON export, and a std-only JSON
//! validator for CI.
//!
//! The export format is versioned (`"schema": "wimi-obs/1"`) and every
//! field is emitted in a fixed canonical order with integer values only,
//! so two snapshots of the same run are byte-identical — the determinism
//! CI job diffs them across `WIMI_THREADS` settings.

use std::fmt::Write as _;

use crate::json::{field, parse, Json};
use crate::recorder::{
    CounterId, GaugeId, IssueId, StageId, ATTEMPT_LABELS, DISPERSION_LABELS, GAMMA_LABELS,
};

/// Schema identifier stamped into every export.
pub const SCHEMA: &str = "wimi-obs/1";

/// Per-stage span totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stable stage name (see [`StageId::name`]).
    pub stage: &'static str,
    /// Spans closed over this stage.
    pub calls: u64,
    /// Total nanoseconds booked (0 under the `NullClock`).
    pub total_ns: u64,
}

/// A fixed-bucket histogram: parallel label/count slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Bucket labels, canonical order.
    pub labels: &'static [&'static str],
    /// Bucket counts, same order as `labels`.
    pub counts: Vec<u64>,
}

/// A point-in-time read of a `Recorder`: plain integers, no atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Span totals for all seven stages, pipeline order.
    pub stages: Vec<StageStat>,
    /// All counters, canonical order.
    pub counters: Vec<(&'static str, u64)>,
    /// All last-value gauges, canonical order.
    pub gauges: Vec<(&'static str, u64)>,
    /// All issue tallies, canonical order.
    pub issues: Vec<(&'static str, u64)>,
    /// Resolved-γ distribution.
    pub gamma: Hist,
    /// Ω̄ cross-pair dispersion distribution.
    pub dispersion: Hist,
    /// Attempts consumed per logical measurement.
    pub attempts: Hist,
}

impl Snapshot {
    /// Looks up a counter by its snapshot name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by its snapshot name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serialises to the versioned JSON export. Field order, whitespace
    /// and integer formatting are all fixed, so equal snapshots produce
    /// byte-identical text.
    // wlint: artifact
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"stage\": \"{}\", \"calls\": {}, \"total_ns\": {}}}{comma}",
                s.stage, s.calls, s.total_ns
            );
        }
        out.push_str("  ],\n");
        write_int_object(&mut out, "counters", &self.counters, "  ");
        out.push_str(",\n");
        write_int_object(&mut out, "gauges", &self.gauges, "  ");
        out.push_str(",\n");
        write_int_object(&mut out, "issues", &self.issues, "  ");
        out.push_str(",\n  \"histograms\": {\n");
        let hists = [
            ("gamma", &self.gamma),
            ("dispersion", &self.dispersion),
            ("attempts", &self.attempts),
        ];
        for (i, (name, hist)) in hists.iter().enumerate() {
            let comma = if i + 1 < hists.len() { "," } else { "" };
            let labels: Vec<String> = hist.labels.iter().map(|l| format!("\"{l}\"")).collect();
            let counts: Vec<String> = hist.counts.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"labels\": [{}], \"counts\": [{}]}}{comma}",
                labels.join(", "),
                counts.join(", ")
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Renders a human-readable run summary (the `wimi-report` style used
    /// by the experiments binary). Deterministic for a given snapshot.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("stage                   calls     total_ns\n");
        for s in &self.stages {
            let _ = writeln!(out, "{:<22} {:>7} {:>12}", s.stage, s.calls, s.total_ns);
        }
        out.push_str("counters:\n");
        for &(name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {v:>9}");
        }
        out.push_str("gauges:\n");
        for &(name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<28} {v:>9}");
        }
        out.push_str("issues:\n");
        for &(name, v) in &self.issues {
            let _ = writeln!(out, "  {name:<28} {v:>9}");
        }
        for (name, hist) in [
            ("gamma", &self.gamma),
            ("dispersion", &self.dispersion),
            ("attempts", &self.attempts),
        ] {
            let _ = write!(out, "{name}:");
            for (label, count) in hist.labels.iter().zip(&hist.counts) {
                let _ = write!(out, " {label}:{count}");
            }
            out.push('\n');
        }
        out
    }
}

fn write_int_object(out: &mut String, name: &str, entries: &[(&str, u64)], indent: &str) {
    let _ = writeln!(out, "{indent}\"{name}\": {{");
    for (i, &(key, v)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "{indent}  \"{key}\": {v}{comma}");
    }
    let _ = write!(out, "{indent}}}");
}

// ---------------------------------------------------------------------------
// Validation: schema checks against the canonical name lists, on top of
// the shared `crate::json` parser.
// ---------------------------------------------------------------------------

/// Validates an exported snapshot: well-formed JSON, the `wimi-obs/1`
/// schema with every key present in canonical order, and all values
/// finite non-negative integers (NaN/Infinity are impossible by
/// construction and rejected by the parser).
///
/// Truncated input and a mismatched schema version each produce a
/// distinct one-line message so `obs-validate` failures are actionable.
pub fn validate_json(text: &str) -> Result<(), String> {
    let value = parse(text)?;
    validate_value(&value)
}

/// Validates an already-parsed snapshot value against the `wimi-obs/1`
/// schema. Used by [`validate_json`] and by `wimi-trace` to check the
/// snapshot embedded in a trace artifact without re-serialising it.
pub fn validate_value(value: &Json) -> Result<(), String> {
    let root = as_obj(value, "root")?;
    // Check the version stamp before anything else: a snapshot from a
    // newer writer should say "version mismatch", not complain about
    // whatever key happens to differ first.
    match field(root, "schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(Json::Str(s)) => {
            return Err(format!(
                "schema version mismatch: snapshot declares \"{s}\" but this validator understands \"{SCHEMA}\""
            ))
        }
        _ => return Err(format!("\"schema\" must be the string \"{SCHEMA}\"")),
    }
    expect_keys(
        root,
        &[
            "schema",
            "stages",
            "counters",
            "gauges",
            "issues",
            "histograms",
        ],
        "root",
    )?;

    let Some(Json::Arr(stages)) = field(root, "stages") else {
        return Err("\"stages\" must be an array".into());
    };
    if stages.len() != StageId::ALL.len() {
        return Err(format!(
            "\"stages\" must have {} entries, found {}",
            StageId::ALL.len(),
            stages.len()
        ));
    }
    for (stage_id, entry) in StageId::ALL.iter().zip(stages) {
        let obj = as_obj(entry, "stage entry")?;
        expect_keys(obj, &["stage", "calls", "total_ns"], "stage entry")?;
        match field(obj, "stage") {
            Some(Json::Str(s)) if s == stage_id.name() => {}
            _ => {
                return Err(format!(
                    "stage entries must appear in pipeline order; expected \"{}\"",
                    stage_id.name()
                ))
            }
        }
        expect_u64(field(obj, "calls"), "stage calls")?;
        expect_u64(field(obj, "total_ns"), "stage total_ns")?;
    }

    let counter_names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
    expect_int_object(root, "counters", &counter_names)?;
    let gauge_names: Vec<&str> = GaugeId::ALL.iter().map(|g| g.name()).collect();
    expect_int_object(root, "gauges", &gauge_names)?;
    let issue_names: Vec<&str> = IssueId::ALL.iter().map(|i| i.name()).collect();
    expect_int_object(root, "issues", &issue_names)?;

    let Some(Json::Obj(_)) = field(root, "histograms") else {
        return Err("\"histograms\" must be an object".into());
    };
    let Some(hists) = field(root, "histograms").and_then(|v| match v {
        Json::Obj(o) => Some(o),
        _ => None,
    }) else {
        return Err("\"histograms\" must be an object".into());
    };
    expect_keys(hists, &["gamma", "dispersion", "attempts"], "histograms")?;
    for (name, labels) in [
        ("gamma", &GAMMA_LABELS[..]),
        ("dispersion", &DISPERSION_LABELS[..]),
        ("attempts", &ATTEMPT_LABELS[..]),
    ] {
        let obj = as_obj(
            field(hists, name).unwrap_or(&Json::Null),
            &format!("histogram \"{name}\""),
        )?;
        expect_keys(obj, &["labels", "counts"], &format!("histogram \"{name}\""))?;
        let Some(Json::Arr(found_labels)) = field(obj, "labels") else {
            return Err(format!("histogram \"{name}\" labels must be an array"));
        };
        if found_labels.len() != labels.len()
            || found_labels
                .iter()
                .zip(labels)
                .any(|(v, want)| !matches!(v, Json::Str(s) if s == want))
        {
            return Err(format!(
                "histogram \"{name}\" labels differ from the canonical bucket set"
            ));
        }
        let Some(Json::Arr(counts)) = field(obj, "counts") else {
            return Err(format!("histogram \"{name}\" counts must be an array"));
        };
        if counts.len() != labels.len() {
            return Err(format!(
                "histogram \"{name}\" counts length {} != {} buckets",
                counts.len(),
                labels.len()
            ));
        }
        for c in counts {
            expect_u64(Some(c), &format!("histogram \"{name}\" count"))?;
        }
    }
    Ok(())
}

fn as_obj<'a>(v: &'a Json, what: &str) -> Result<&'a Vec<(String, Json)>, String> {
    match v {
        Json::Obj(o) => Ok(o),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn expect_keys(obj: &[(String, Json)], want: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    if found != want {
        return Err(format!(
            "{what} keys must be exactly {want:?} in order, found {found:?}"
        ));
    }
    Ok(())
}

fn expect_u64(v: Option<&Json>, what: &str) -> Result<u64, String> {
    match v {
        Some(&Json::Num { value, integral }) if integral && value >= 0.0 => {
            if value > u64::MAX as f64 {
                return Err(format!("{what} exceeds u64 range"));
            }
            Ok(value as u64)
        }
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

fn expect_int_object(
    root: &[(String, Json)],
    name: &str,
    want_keys: &[&str],
) -> Result<(), String> {
    let obj = as_obj(
        field(root, name).unwrap_or(&Json::Null),
        &format!("\"{name}\""),
    )?;
    expect_keys(obj, want_keys, &format!("\"{name}\""))?;
    for (key, v) in obj {
        expect_u64(Some(v), &format!("\"{name}\".\"{key}\""))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn fresh_snapshot_roundtrips_through_validator() {
        let snap = Recorder::enabled().snapshot();
        let json = snap.to_json();
        validate_json(&json).unwrap();
    }

    #[test]
    fn populated_snapshot_validates() {
        let rec = Recorder::enabled();
        rec.add(crate::CounterId::PacketsKept, 40);
        rec.record_gamma(-1);
        rec.record_dispersion(0.07);
        rec.record_attempts(3);
        rec.issue(crate::IssueId::DeadAntenna, 1);
        drop(rec.span(crate::StageId::Screening));
        validate_json(&rec.snapshot().to_json()).unwrap();
    }

    #[test]
    fn export_is_reproducible_for_equal_recorders() {
        let make = || {
            let rec = Recorder::enabled();
            rec.add(crate::CounterId::PairsResolved, 3);
            rec.record_gamma(2);
            rec.snapshot().to_json()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("{\"a\": NaN}").is_err());
        assert!(validate_json("{\"a\": Infinity}").is_err());
        assert!(validate_json("[1, 2,]").is_err());
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let good = Recorder::enabled().snapshot().to_json();
        let bad = good.replace("wimi-obs/1", "wimi-obs/0");
        assert!(validate_json(&bad).is_err());
    }

    #[test]
    fn validator_names_the_mismatched_schema_version() {
        let good = Recorder::enabled().snapshot().to_json();
        let bad = good.replace("wimi-obs/1", "wimi-obs/2");
        let err = validate_json(&bad).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
        assert!(err.contains("wimi-obs/2"), "{err}");
        assert!(err.contains("wimi-obs/1"), "{err}");
        assert!(!err.contains('\n'), "message must be one line: {err}");
    }

    #[test]
    fn validator_reports_truncated_json() {
        let good = Recorder::enabled().snapshot().to_json();
        // The export is ASCII, so any byte index is a char boundary.
        let half = &good[..good.len() / 2];
        let err = validate_json(half).unwrap_err();
        assert!(err.starts_with("truncated JSON"), "{err}");
        assert!(!err.contains('\n'), "message must be one line: {err}");
    }

    #[test]
    fn validator_rejects_missing_counter() {
        let good = Recorder::enabled().snapshot().to_json();
        let bad = good.replace("\"packets_kept\"", "\"packets_krept\"");
        assert!(validate_json(&bad).is_err());
    }

    #[test]
    fn gauges_round_trip_through_export_and_validator() {
        let rec = Recorder::enabled();
        rec.set_gauge(crate::GaugeId::ServeQueueDepth, 5);
        rec.set_gauge(crate::GaugeId::ServeSessions, 12);
        let json = rec.snapshot().to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"serve_queue_depth\": 5"));
        assert!(json.contains("\"serve_sessions\": 12"));
        // Dropping the gauges section must fail closed.
        let parsed = crate::json::parse(&json).unwrap();
        assert!(parsed.get("gauges").is_some());
        let bad = json.replace("\"serve_queue_depth\"", "\"serve_queue_dept\"");
        assert!(validate_json(&bad).is_err());
    }

    #[test]
    fn validator_rejects_non_integer_values() {
        let good = Recorder::enabled().snapshot().to_json();
        let bad = good.replacen("\"captures_taken\": 0", "\"captures_taken\": 0.5", 1);
        assert!(validate_json(&bad).is_err());
        let neg = good.replacen("\"captures_taken\": 0", "\"captures_taken\": -1", 1);
        assert!(validate_json(&neg).is_err());
    }

    #[test]
    fn validator_rejects_reordered_stages() {
        let good = Recorder::enabled().snapshot().to_json();
        let bad = good.replacen("\"stage\": \"capture\"", "\"stage\": \"screening\"", 1);
        assert!(validate_json(&bad).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        assert!(validate_json("{\"schema\": \"x\"}").is_err()); // wrong keys, but parses
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate_json(&deep).is_err()); // depth-limited
    }

    #[test]
    fn summary_lists_every_stage_and_counter() {
        let text = Recorder::enabled().snapshot().summary();
        for stage in StageId::ALL {
            assert!(text.contains(stage.name()), "{}", stage.name());
        }
        for counter in CounterId::ALL {
            assert!(text.contains(counter.name()), "{}", counter.name());
        }
    }
}
