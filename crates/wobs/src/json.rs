//! A minimal, std-only, panic-free JSON parser shared by the snapshot
//! validator (this crate) and the trace-artifact tooling (`wimi-trace`).
//!
//! The parser keeps insertion order for object keys (schema checks care
//! about canonical field order) and remembers whether each number's source
//! text was integral, so integer schema checks need no float comparisons.

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; `integral` is true when the source had no `.`/exponent
    /// and no minus sign.
    Num {
        /// Parsed value.
        value: f64,
        /// Whether the source text was a non-negative integer literal.
        integral: bool,
    },
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of `key` when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => field(entries, key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it parsed as one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num { value, integral }
                if integral && value >= 0.0 && value <= u64::MAX as f64 =>
            {
                Some(value as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's entry list.
pub fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (the whole input must be consumed).
///
/// # Errors
///
/// Returns a one-line message locating the problem. Input that ends in
/// the middle of a value is reported as *truncated* — distinct from
/// malformed syntax — so callers surface "half a file" (a crashed or
/// interrupted writer) clearly.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after the top-level value"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> String {
        if self.pos >= self.bytes.len() {
            format!(
                "truncated JSON: input ends unexpectedly at byte {} ({msg})",
                self.pos
            )
        } else {
            format!("invalid JSON at byte {}: {msg}", self.pos)
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected an object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.fail("expected ':' after object key"));
            }
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(entries));
            }
            return Err(self.fail("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return Err(self.fail("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Lenient on surrogates: the schema's strings
                            // are ASCII names, so anything exotic maps to
                            // the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.fail("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.fail("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    if let Some(chunk) = self.bytes.get(start..self.pos) {
                        s.push_str(std::str::from_utf8(chunk).unwrap_or("\u{FFFD}"));
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.fail("bad \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut integral = !negative;
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.fail("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            integral = false;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            let _ = self.eat(b'+') || self.eat(b'-');
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.fail("bad number slice"))?;
        let value: f64 = text.parse().map_err(|_| self.fail("unparseable number"))?;
        if !value.is_finite() {
            return Err(self.fail("number overflows f64 (NaN/Infinity are not valid JSON)"));
        }
        Ok(Json::Num { value, integral })
    }
}

/// Re-serialises a JSON document onto a single line with no interstitial
/// whitespace (string contents untouched). Used to embed the multi-line
/// `wimi-obs/1` snapshot as one JSONL record in trace artifacts.
pub fn compact(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                ' ' | '\t' | '\n' | '\r' => {}
                '"' => {
                    in_string = true;
                    out.push(c);
                }
                _ => out.push(c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse("true"), Ok(Json::Bool(true)));
        assert_eq!(
            parse("[1, \"a\"]"),
            Ok(Json::Arr(vec![
                Json::Num {
                    value: 1.0,
                    integral: true
                },
                Json::Str("a".into())
            ]))
        );
        let obj = parse("{\"k\": 2}").unwrap();
        assert_eq!(obj.get("k").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn truncated_input_is_reported_as_truncated() {
        for text in ["{", "{\"a\": ", "[1, 2", "\"unterminated", "{\"a\": 1"] {
            let err = parse(text).unwrap_err();
            assert!(
                err.starts_with("truncated JSON"),
                "{text:?} should report truncation, got: {err}"
            );
        }
    }

    #[test]
    fn malformed_but_complete_input_is_not_truncated() {
        for text in ["{} trailing", "[1,]2", "{\"a\" 1}"] {
            let err = parse(text).unwrap_err();
            assert!(
                !err.starts_with("truncated JSON"),
                "{text:?} is malformed, not truncated, got: {err}"
            );
        }
    }

    #[test]
    fn compact_strips_whitespace_outside_strings() {
        let text = "{\n  \"a b\": [1, 2],\n  \"s\": \"x \\\" y\"\n}\n";
        let c = compact(text);
        assert_eq!(c, "{\"a b\":[1,2],\"s\":\"x \\\" y\"}");
        // Compacted text still parses to the same value.
        assert_eq!(parse(text), Ok(parse(&c).unwrap()));
    }

    #[test]
    fn negative_and_float_numbers_are_not_integral() {
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
    }
}
