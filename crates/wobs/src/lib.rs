//! # wimi-obs
//!
//! Structured observability for the WiMi pipeline: stage spans, counters,
//! fixed-bucket histograms and a JSON snapshot export, all std-only and
//! deterministic.
//!
//! The WiMi paper's evaluation (three rooms, ten liquids) works because
//! degraded measurements are *detected* — bad subcarriers rejected, bad
//! antenna pairs excluded, ambiguous γ resolutions refused. This crate is
//! the measurement surface for that machinery: a [`Recorder`] sink is
//! threaded through capture, screening, extraction, γ resolution, retry
//! and training, and a [`Snapshot`] of it tells the whole story of a run.
//!
//! ## Design constraints
//!
//! * **Deterministic.** WiMi results must be bitwise identical under any
//!   `WIMI_THREADS` setting. The recorder therefore keeps only
//!   order-independent aggregates — monotone counters and fixed-bucket
//!   histograms updated with commutative atomic adds — never ordered event
//!   logs. A snapshot taken after the parallel fan-out joins is identical
//!   for any worker count.
//! * **No ambient wall clock.** The project's `wall-clock` lint bans
//!   `Instant::now`/`SystemTime` in library crates (this one included).
//!   Span timing goes through an *injected* [`Clock`] trait; the default
//!   [`NullClock`] reads nothing, so library code never touches the wall
//!   clock. A real clock implementation lives in the (non-library)
//!   experiments binary and is opt-in.
//! * **~Zero cost when disabled.** Every recording method is a single
//!   branch on [`Recorder::is_enabled`] before any atomic traffic; the
//!   pipeline carries an `Option<Arc<Recorder>>` so the common path is a
//!   `None` check.
//! * **Panic-free.** As a library crate under `wimi-lint`, nothing here
//!   unwraps or panics in non-test code; the JSON validator returns
//!   `Result` all the way down.
//!
//! ## Example
//!
//! ```
//! use wimi_obs::{CounterId, Recorder, StageId};
//!
//! let rec = Recorder::enabled();
//! {
//!     let _span = rec.span(StageId::Screening);
//!     rec.add(CounterId::PacketsKept, 38);
//!     rec.incr(CounterId::AntennasDropped);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("packets_kept"), Some(38));
//! wimi_obs::validate_json(&snap.to_json()).unwrap();
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod recorder;
pub mod snapshot;

pub use clock::{Clock, NullClock, TickClock};
pub use recorder::{CounterId, GaugeId, IssueId, Recorder, Span, StageId};
pub use snapshot::{validate_json, validate_value, Hist, Snapshot, StageStat, SCHEMA};
