//! Injected monotonic clocks.
//!
//! Library crates must not read the wall clock (the `wall-clock` lint):
//! a wall-clock read is ambient, nondeterministic input, and WiMi results
//! must be bitwise reproducible under any thread count. Span timing is
//! therefore parameterised over a [`Clock`] trait. The default
//! [`NullClock`] reads nothing (every span lasts 0 ns); tests use the
//! deterministic [`TickClock`]; a real wall clock can be injected by
//! *binary* crates (the experiments runner ships one) where determinism
//! is explicitly waived.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond source for span timing.
///
/// Implementations must be cheap and thread-safe: spans may open and close
/// concurrently inside the `WIMI_THREADS` fan-out.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current reading in nanoseconds. Only differences are meaningful;
    /// the epoch is implementation-defined.
    fn now_ns(&self) -> u64;
}

/// The no-op default: always reads 0, so spans cost two branches and no
/// time syscalls. Counters and histograms still accumulate normally.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }
}

/// A deterministic fake clock that advances by a fixed step on every
/// read. Useful for testing span accounting without wall time.
#[derive(Debug, Default)]
pub struct TickClock {
    step_ns: u64,
    reads: AtomicU64,
}

impl TickClock {
    /// A clock that advances `step_ns` nanoseconds per read.
    pub fn new(step_ns: u64) -> Self {
        TickClock {
            step_ns,
            reads: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_ns(&self) -> u64 {
        let reads = self.reads.fetch_add(1, Ordering::Relaxed);
        reads.saturating_mul(self.step_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_reads_zero() {
        assert_eq!(NullClock.now_ns(), 0);
        assert_eq!(NullClock.now_ns(), 0);
    }

    #[test]
    fn tick_clock_advances_per_read() {
        let c = TickClock::new(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
    }
}
