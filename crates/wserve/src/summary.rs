//! The byte-stable `wimi-serve/1` fleet summary.
//!
//! Rendering is hand-rolled with fixed field order, fixed whitespace and
//! fixed number formatting, so two equal [`FleetReport`]s produce
//! byte-identical text — the artifact CI diffs between `WIMI_THREADS`
//! shapes. [`validate_summary`] is the fail-closed reader side: it parses
//! the text back and checks the schema tag plus the accounting
//! invariants (`responses = ok + failed`, `requests = responses + shed`).

use wimi_obs::json::{self, Json};

use crate::fleet::FleetReport;

/// Schema tag stamped into every fleet summary.
pub const SUMMARY_SCHEMA: &str = "wimi-serve/1";

fn json_f64(x: f64) -> String {
    // Accuracy is a ratio of small integers; six decimals are exact
    // enough to be stable and deterministic across platforms.
    format!("{x:.6}")
}

/// Renders the fleet summary JSON (`wimi-serve/1`): fleet identity,
/// service totals, fleet-wide counters, and one record per session.
// wlint: artifact
pub fn summary_json(report: &FleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SUMMARY_SCHEMA}\",");
    out.push_str("  \"fleet\": {\n");
    let _ = writeln!(out, "    \"sessions\": {},", report.sessions);
    let _ = writeln!(out, "    \"measurements\": {},", report.measurements);
    let _ = writeln!(out, "    \"seed\": {}", report.seed);
    out.push_str("  },\n");
    out.push_str("  \"totals\": {\n");
    let _ = writeln!(out, "    \"requests\": {},", report.requests);
    let _ = writeln!(out, "    \"responses\": {},", report.responses);
    let _ = writeln!(out, "    \"ok\": {},", report.ok);
    let _ = writeln!(out, "    \"failed\": {},", report.failed);
    let _ = writeln!(out, "    \"shed\": {},", report.shed);
    let _ = writeln!(out, "    \"correct\": {},", report.correct);
    let accuracy = if report.ok > 0 {
        report.correct as f64 / report.ok as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "    \"accuracy\": {},", json_f64(accuracy));
    let _ = writeln!(out, "    \"model_keys\": {},", report.model_keys);
    let _ = writeln!(out, "    \"queue_peak\": {}", report.queue_peak);
    out.push_str("  },\n");
    out.push_str("  \"counters\": {\n");
    for (i, (name, value)) in report.counters.iter().enumerate() {
        let comma = if i + 1 < report.counters.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    \"{name}\": {value}{comma}");
    }
    out.push_str("  },\n");
    out.push_str("  \"sessions\": [\n");
    for (i, s) in report.per_session.iter().enumerate() {
        let comma = if i + 1 < report.per_session.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"id\": {}, \"truth\": {}, \"environment\": \"{}\", \"material\": \"{}\", \
             \"ok\": {}, \"failed\": {}, \"shed\": {}, \
             \"correct\": {}, \"rejected\": {}, \"salvaged\": {}, \"packets_spent\": {}}}{comma}",
            s.id,
            s.truth,
            s.environment,
            s.material,
            s.ok,
            s.failed,
            s.shed,
            s.correct,
            s.rejected,
            s.salvaged,
            s.packets_spent
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn int_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integral field \"{key}\""))
}

/// Validates a `wimi-serve/1` summary: well-formed JSON, the right
/// schema tag, a session record per reported session, and conserved
/// accounting — fleet-wide (`responses = ok + failed`,
/// `requests = responses + shed`) and per session (every session's
/// `ok + failed + shed` must equal the fleet's `measurements`: every
/// request a session was owed is accounted for as served or shed, so a
/// fold that misattributes responses cannot pass). Fail-closed:
/// anything unexpected is an error, not a skip.
pub fn validate_summary(text: &str) -> Result<(), String> {
    let root = json::parse(text)?;
    match root.get("schema").and_then(Json::as_str) {
        Some(SUMMARY_SCHEMA) => {}
        Some(other) => return Err(format!("schema is \"{other}\", want \"{SUMMARY_SCHEMA}\"")),
        None => return Err("missing schema field".to_owned()),
    }
    let fleet = root
        .get("fleet")
        .ok_or_else(|| "missing fleet object".to_owned())?;
    let sessions = int_field(fleet, "sessions")?;
    let measurements = int_field(fleet, "measurements")?;
    let totals = root
        .get("totals")
        .ok_or_else(|| "missing totals object".to_owned())?;
    let requests = int_field(totals, "requests")?;
    let responses = int_field(totals, "responses")?;
    let ok = int_field(totals, "ok")?;
    let failed = int_field(totals, "failed")?;
    let shed = int_field(totals, "shed")?;
    let correct = int_field(totals, "correct")?;
    if responses != ok + failed {
        return Err(format!(
            "responses {responses} != ok {ok} + failed {failed}"
        ));
    }
    if requests != responses + shed {
        return Err(format!(
            "requests {requests} != responses {responses} + shed {shed}"
        ));
    }
    if correct > ok {
        return Err(format!("correct {correct} > ok {ok}"));
    }
    match root.get("sessions") {
        Some(Json::Arr(rows)) => {
            if rows.len() as u64 != sessions {
                return Err(format!(
                    "{} session records for {} sessions",
                    rows.len(),
                    sessions
                ));
            }
            for row in rows {
                let id = int_field(row, "id")?;
                let row_ok = int_field(row, "ok")?;
                let row_failed = int_field(row, "failed")?;
                let row_shed = int_field(row, "shed")?;
                let row_correct = int_field(row, "correct")?;
                if row_correct > row_ok {
                    return Err(format!("session correct {row_correct} > ok {row_ok}"));
                }
                if row_ok + row_failed + row_shed != measurements {
                    return Err(format!(
                        "session {id}: ok {row_ok} + failed {row_failed} + shed {row_shed} \
                         != measurements {measurements}"
                    ));
                }
                for key in ["environment", "material"] {
                    if row.get(key).and_then(Json::as_str).is_none() {
                        return Err(format!("session {id}: missing or non-string \"{key}\""));
                    }
                }
            }
        }
        _ => return Err("missing sessions array".to_owned()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{run_fleet, FleetConfig};

    fn tiny_report() -> FleetReport {
        run_fleet(&FleetConfig {
            sessions: 4,
            measurements: 2,
            packets: 8,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn summary_round_trips_through_the_validator() {
        let summary = summary_json(&tiny_report());
        validate_summary(&summary).unwrap_or_else(|e| panic!("summary must validate: {e}"));
    }

    #[test]
    fn equal_reports_render_byte_identically() {
        let a = summary_json(&tiny_report());
        let b = summary_json(&tiny_report());
        assert_eq!(a, b);
    }

    #[test]
    fn validator_fails_closed() {
        let report = tiny_report();
        let summary = summary_json(&report);
        let wrong_schema = summary.replace("wimi-serve/1", "wimi-serve/0");
        assert!(validate_summary(&wrong_schema).is_err());
        let truncated = &summary[..summary.len() / 2];
        assert!(validate_summary(truncated).is_err());
        // Break conservation: responses ≠ ok + failed.
        let broken = summary.replace(
            &format!("\"responses\": {}", report.responses),
            &format!("\"responses\": {}", report.responses + 1),
        );
        assert!(validate_summary(&broken).is_err());
    }
}
