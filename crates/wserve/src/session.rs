//! The [`Session`] abstraction: one long-lived measurement link.
//!
//! A session owns everything one deployed WiMi link needs: its scenario
//! (environment, capture length, optional fault plan), its ground-truth
//! material, a [`RetryPolicy`], and its *own* observability sinks — a
//! per-session [`Recorder`] and optional [`TraceSink`]. Per-session sinks
//! are what keep the fleet deterministic: a session's events never
//! interleave with another session's regardless of which worker thread
//! ran it.

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use wimi_campaign::derive_cell_seed;
use wimi_core::{MaterialFeature, WiMi, WiMiConfig};
use wimi_obs::{CounterId, Recorder};
use wimi_phy::channel::Environment;
use wimi_phy::csi::{CsiCapture, CsiSource};
use wimi_phy::fault::FaultPlan;
use wimi_phy::scenario::{LiquidSpec, Scenario, Simulator};
use wimi_phy::units::Meters;
use wimi_trace::{task_scope, TaskKey, TraceEvent, TraceSink};

use crate::retry::{attempt_capture_seed, RetryPolicy};

/// One measurement request: the `seq`-th measurement on a session. The
/// pair `(session, seq)` fully determines the measurement — its seed is a
/// pure function of the session's seed and `seq` — so a request can be
/// replayed, re-ordered, or shed without touching any other request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MeasureRequest {
    /// Index of the session in the engine's session table.
    pub session: usize,
    /// Measurement sequence number within the session.
    pub seq: u64,
}

/// What one measurement produced, before classification.
#[derive(Debug, Clone)]
pub struct MeasureOutcome {
    /// The extracted feature, or `None` after retry exhaustion.
    pub feature: Option<MaterialFeature>,
    /// Attempts the pipeline rejected before success (or giving up).
    pub rejected: usize,
    /// Whether the successful measurement needed salvage.
    pub salvaged: bool,
    /// Packets actually spent across all attempts (baseline + target,
    /// post-screening — the air time the retry budget charges).
    pub packets_spent: usize,
    /// Attempts taken (1 = first try succeeded).
    pub attempts: usize,
}

/// One long-lived measurement link.
pub struct Session {
    /// Stable session id (also the trace task id, group `sess:`).
    pub id: u64,
    /// The session's root seed; measurement `seq` derives its seed as
    /// `derive_cell_seed(seed, seq)`.
    pub seed: u64,
    /// Ground-truth label: index into `catalog`.
    pub truth: usize,
    /// Names of the material catalog this session discriminates between
    /// (the model-cache key's catalog component).
    pub catalog: Vec<String>,
    /// Dielectric spec of the ground-truth material.
    pub spec: LiquidSpec,
    /// Deployment environment (the model-cache key's scenario class).
    pub environment: Environment,
    /// Packets per capture.
    pub packets: usize,
    /// Retry policy for this link.
    pub retry: RetryPolicy,
    /// Optional fault plan injected into every capture.
    pub fault: Option<FaultPlan>,
    /// Per-session observability recorder.
    pub recorder: Arc<Recorder>,
    /// Optional per-session trace sink.
    pub trace: Option<Arc<TraceSink>>,
    /// The session's feature extractor (recorder/trace already attached).
    extractor: WiMi,
}

/// Everything needed to construct a [`Session`]; the extractor is built
/// from it so the sinks attach exactly once.
pub struct SessionSpec {
    /// Stable session id.
    pub id: u64,
    /// Root seed.
    pub seed: u64,
    /// Ground-truth label index into `catalog`.
    pub truth: usize,
    /// Material catalog names.
    pub catalog: Vec<String>,
    /// Ground-truth dielectric spec.
    pub spec: LiquidSpec,
    /// Deployment environment.
    pub environment: Environment,
    /// Packets per capture.
    pub packets: usize,
    /// Retry policy.
    pub retry: RetryPolicy,
    /// Optional fault plan.
    pub fault: Option<FaultPlan>,
    /// Pipeline configuration for the session's extractor.
    pub config: WiMiConfig,
    /// Whether to attach a per-session trace sink.
    pub trace: bool,
}

impl Session {
    /// Builds a session with its own enabled recorder (deterministic
    /// null-clock mode) and, when `spec.trace` is set, its own bounded
    /// trace sink.
    pub fn new(spec: SessionSpec) -> Session {
        let recorder = Arc::new(Recorder::enabled());
        let trace = spec.trace.then(TraceSink::enabled);
        let mut extractor = WiMi::new(spec.config);
        extractor.set_recorder(Some(Arc::clone(&recorder)));
        extractor.set_trace(trace.clone());
        Session {
            id: spec.id,
            seed: spec.seed,
            truth: spec.truth,
            catalog: spec.catalog,
            spec: spec.spec,
            environment: spec.environment,
            packets: spec.packets,
            retry: spec.retry,
            fault: spec.fault,
            recorder,
            trace,
            extractor,
        }
    }

    /// The seed of measurement `seq` on this session.
    pub fn measurement_seed(&self, seq: u64) -> u64 {
        derive_cell_seed(self.seed, seq)
    }

    /// One baseline/target capture pair for retry `attempt` of the
    /// measurement seeded `seed`, at the given placement offset.
    fn capture_pair(&self, seed: u64, attempt: usize, offset_cm: f64) -> (CsiCapture, CsiCapture) {
        let mut builder = Scenario::builder();
        builder.environment(self.environment);
        builder.target_offset(Meters::from_cm(offset_cm));
        let capture_seed = attempt_capture_seed(seed, attempt);
        let mut sim = Simulator::new(builder.build(), capture_seed);
        if let Some(plan) = &self.fault {
            sim.set_fault_plan(Some(plan.clone().with_seed(plan.seed() ^ capture_seed)));
        }
        sim.set_recorder(Some(Arc::clone(&self.recorder)));
        sim.set_trace(self.trace.clone());
        let baseline = sim.capture(self.packets);
        sim.set_liquid(Some(self.spec.clone()));
        let target = sim.capture(self.packets);
        (baseline, target)
    }

    /// Runs measurement `seq` with the re-seat-and-retry protocol.
    ///
    /// The retry budget is charged per *actual* packets each attempt
    /// spent (post-screening, from the quality report), so salvage
    /// savings stay available for further attempts; the hard attempt cap
    /// still bounds the loop. Everything — placement offsets, capture
    /// seeds, fault streams — derives from the measurement seed, so the
    /// outcome is a pure function of `(session, seq)` and is identical on
    /// any worker thread.
    pub fn measure(&self, seq: u64) -> MeasureOutcome {
        let seed = self.measurement_seed(seq);
        let mut placement = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let trace = self.trace.as_ref();
        // All of this session's events land in one `sess:{id}` task, so
        // rendered traces group by link, not by worker thread.
        let _task = trace.map(|_| task_scope(TaskKey::session(self.id)));
        let planned = self.retry.allowed_attempts(self.packets);
        let mut out = MeasureOutcome {
            feature: None,
            rejected: 0,
            salvaged: false,
            packets_spent: 0,
            attempts: 0,
        };
        while self
            .retry
            .allows_another(out.attempts, out.packets_spent, self.packets)
        {
            if let Some(t) = trace {
                t.emit(TraceEvent::Attempt {
                    attempt: out.attempts as u32 + 1,
                    max: planned as u32,
                });
            }
            let offset_cm = 1.0 + placement.gen_range(-0.5..0.5);
            let (base, tar) = self.capture_pair(seed, out.attempts, offset_cm);
            let m = self.extractor.measure(&base, &tar);
            out.packets_spent += m.quality.baseline_packets_kept + m.quality.target_packets_kept;
            out.attempts += 1;
            match m.feature {
                Ok(f) => {
                    out.salvaged = m.quality.salvaged();
                    out.feature = Some(f);
                    self.recorder.add(CounterId::Retries, out.rejected as u64);
                    self.recorder.record_attempts(out.attempts as u64);
                    return out;
                }
                Err(_) => out.rejected += 1,
            }
        }
        self.recorder
            .add(CounterId::Retries, out.rejected.saturating_sub(1) as u64);
        self.recorder.record_attempts(out.rejected as u64);
        self.recorder.incr(CounterId::TrialsDropped);
        if let Some(t) = trace {
            t.emit(TraceEvent::RetriesExhausted {
                attempts: out.attempts as u32,
            });
            t.mark_failure();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_phy::material::Liquid;

    fn test_session(id: u64, trace: bool) -> Session {
        Session::new(SessionSpec {
            id,
            seed: derive_cell_seed(0xF1EE7, id),
            truth: 0,
            catalog: vec!["Milk".into(), "PureWater".into()],
            spec: Liquid::Milk.into(),
            environment: Environment::Lab,
            packets: 8,
            retry: RetryPolicy::default(),
            fault: None,
            config: WiMiConfig::default(),
            trace,
        })
    }

    #[test]
    fn measurements_are_pure_functions_of_session_and_seq() {
        let a = test_session(3, false);
        let b = test_session(3, false);
        let ma = a.measure(7);
        let mb = b.measure(7);
        assert_eq!(ma.feature.is_some(), mb.feature.is_some());
        assert_eq!(
            ma.feature.map(|f| f.as_vector()),
            mb.feature.map(|f| f.as_vector())
        );
        assert_eq!(ma.packets_spent, mb.packets_spent);
    }

    #[test]
    fn distinct_seqs_draw_distinct_measurements() {
        let s = test_session(1, false);
        assert_ne!(s.measurement_seed(0), s.measurement_seed(1));
        let m0 = s.measure(0);
        let m1 = s.measure(1);
        let (Some(f0), Some(f1)) = (m0.feature, m1.feature) else {
            // Clean-channel measurements at 8 packets always extract.
            unreachable!("clean measurements must extract");
        };
        assert_ne!(f0.as_vector(), f1.as_vector());
    }

    #[test]
    fn session_trace_events_group_under_session_task() {
        let s = test_session(5, true);
        let _ = s.measure(0);
        let Some(sink) = &s.trace else {
            unreachable!("trace was requested");
        };
        let log = sink.flush();
        assert!(log.events_emitted > 0);
        assert!(log.tasks.iter().any(|t| t.key == TaskKey::session(5)));
    }
}
