//! Bounded per-shard request queues with explicit load shedding.
//!
//! Backpressure semantics: a submit that would push a shard past its
//! bound is *shed* — counted and dropped, never blocked on. Shedding is
//! deterministic because submission order is deterministic (the fleet
//! driver submits in session order) and shard assignment is a pure
//! function of the session id, so which requests shed depends only on the
//! request stream, never on worker timing.

use std::collections::VecDeque;

use crate::session::MeasureRequest;

/// One shard's queue activity since the last [`BoundedQueues::take_tick`]:
/// the per-tick deltas the telemetry timeline samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTick {
    /// Requests accepted onto this shard this tick.
    pub submitted: u64,
    /// Requests shed at this shard's bound this tick.
    pub shed: u64,
    /// Highest depth this shard reached this tick.
    pub peak: u64,
    /// Depth when the last drain began (gauge).
    pub depth: u64,
}

/// Fixed set of bounded FIFO queues, one per shard.
#[derive(Debug)]
pub struct BoundedQueues {
    bound: usize,
    shards: Vec<VecDeque<MeasureRequest>>,
    peak: usize,
    shard_peaks: Vec<usize>,
    tick: Vec<ShardTick>,
    shed: u64,
}

impl BoundedQueues {
    /// `shards` queues (at least one), each bounded to `bound` entries
    /// (at least one — a zero bound would shed everything and make the
    /// service vacuous).
    pub fn new(shards: usize, bound: usize) -> BoundedQueues {
        let shards = shards.max(1);
        BoundedQueues {
            bound: bound.max(1),
            shards: (0..shards).map(|_| VecDeque::new()).collect(),
            peak: 0,
            shard_peaks: vec![0; shards],
            tick: vec![ShardTick::default(); shards],
            shed: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session's requests route to.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (session_id % self.shards.len() as u64) as usize
    }

    /// Enqueues onto `shard`; returns `false` (shed) at the bound.
    pub fn push(&mut self, shard: usize, req: MeasureRequest) -> bool {
        let shard = shard % self.shards.len();
        if self.shards[shard].len() >= self.bound {
            self.shed += 1;
            self.tick[shard].shed += 1;
            return false;
        }
        self.shards[shard].push_back(req);
        let depth = self.shards[shard].len();
        self.peak = self.peak.max(depth);
        self.shard_peaks[shard] = self.shard_peaks[shard].max(depth);
        self.tick[shard].submitted += 1;
        self.tick[shard].peak = self.tick[shard].peak.max(depth as u64);
        true
    }

    /// Takes every queued request, emptying the queues: one FIFO `Vec`
    /// per shard, shard order. Each shard's pre-drain depth is sampled
    /// into its current [`ShardTick`].
    pub fn take(&mut self) -> Vec<Vec<MeasureRequest>> {
        self.shards
            .iter_mut()
            .zip(self.tick.iter_mut())
            .map(|(q, tick)| {
                tick.depth = q.len() as u64;
                q.drain(..).collect()
            })
            .collect()
    }

    /// Hands over (and resets) the per-shard deltas accumulated since
    /// the previous call, shard order.
    pub fn take_tick(&mut self) -> Vec<ShardTick> {
        std::mem::replace(
            &mut self.tick,
            vec![ShardTick::default(); self.shards.len()],
        )
    }

    /// Highest depth each shard ever reached, shard order — the
    /// per-shard refinement of [`BoundedQueues::peak`] that lets shed
    /// attribution name the hot shard.
    pub fn shard_peaks(&self) -> &[usize] {
        &self.shard_peaks
    }

    /// Requests currently queued across all shards.
    pub fn depth(&self) -> usize {
        self.shards.iter().map(VecDeque::len).sum()
    }

    /// Highest single-shard depth ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Requests shed at the bound since construction.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(session: usize, seq: u64) -> MeasureRequest {
        MeasureRequest { session, seq }
    }

    #[test]
    fn sheds_at_the_bound_and_keeps_counting() {
        let mut q = BoundedQueues::new(1, 2);
        assert!(q.push(0, req(0, 0)));
        assert!(q.push(0, req(1, 0)));
        assert!(!q.push(0, req(2, 0)), "third push must shed");
        assert!(!q.push(0, req(3, 0)));
        assert_eq!(q.shed(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak(), 2);
        // Draining frees capacity; the shed count is cumulative.
        let drained = q.take();
        assert_eq!(drained[0].len(), 2);
        assert_eq!(q.depth(), 0);
        assert!(q.push(0, req(4, 0)));
        assert_eq!(q.shed(), 2);
    }

    #[test]
    fn take_preserves_fifo_order_per_shard() {
        let mut q = BoundedQueues::new(2, 8);
        for seq in 0..3 {
            q.push(0, req(0, seq));
            q.push(1, req(1, seq));
        }
        let drained = q.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(
            drained[0],
            vec![req(0, 0), req(0, 1), req(0, 2)],
            "FIFO within shard"
        );
        assert_eq!(drained[1], vec![req(1, 0), req(1, 1), req(1, 2)]);
    }

    #[test]
    fn degenerate_bounds_clamp_to_one() {
        let mut q = BoundedQueues::new(0, 0);
        assert_eq!(q.shard_count(), 1);
        assert!(q.push(0, req(0, 0)));
        assert!(!q.push(0, req(1, 0)), "bound clamps to 1, second sheds");
    }

    #[test]
    fn per_shard_peaks_refine_the_global_peak() {
        let mut q = BoundedQueues::new(2, 4);
        // Shard 0 reaches depth 3, shard 1 only 1.
        for seq in 0..3 {
            q.push(0, req(0, seq));
        }
        q.push(1, req(1, 0));
        assert_eq!(q.shard_peaks(), &[3, 1]);
        assert_eq!(q.peak(), 3, "global peak is the hottest shard's");
        // Draining resets depth but never the cumulative peaks.
        let _ = q.take();
        q.push(1, req(1, 1));
        q.push(1, req(1, 2));
        assert_eq!(q.shard_peaks(), &[3, 2]);
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn tick_deltas_reset_on_take_tick() {
        let mut q = BoundedQueues::new(2, 2);
        for seq in 0..3 {
            q.push(0, req(0, seq)); // third one sheds
        }
        q.push(1, req(1, 0));
        let _ = q.take();
        let tick = q.take_tick();
        assert_eq!(tick[0].submitted, 2);
        assert_eq!(tick[0].shed, 1);
        assert_eq!(tick[0].peak, 2);
        assert_eq!(tick[0].depth, 2);
        assert_eq!(tick[1].submitted, 1);
        assert_eq!(tick[1].shed, 0);
        // The next tick starts from zero; cumulative counters persist.
        q.push(0, req(0, 3));
        let _ = q.take();
        let tick = q.take_tick();
        assert_eq!(tick[0].submitted, 1);
        assert_eq!(tick[0].shed, 0);
        assert_eq!(tick[0].peak, 1);
        assert_eq!(q.shed(), 1);
        assert_eq!(q.shard_peaks(), &[2, 1]);
    }

    #[test]
    fn shard_routing_is_modular() {
        let q = BoundedQueues::new(4, 1);
        assert_eq!(q.shard_of(0), 0);
        assert_eq!(q.shard_of(5), 1);
        assert_eq!(q.shard_of(11), 3);
    }
}
