//! Bounded per-shard request queues with explicit load shedding.
//!
//! Backpressure semantics: a submit that would push a shard past its
//! bound is *shed* — counted and dropped, never blocked on. Shedding is
//! deterministic because submission order is deterministic (the fleet
//! driver submits in session order) and shard assignment is a pure
//! function of the session id, so which requests shed depends only on the
//! request stream, never on worker timing.

use std::collections::VecDeque;

use crate::session::MeasureRequest;

/// Fixed set of bounded FIFO queues, one per shard.
#[derive(Debug)]
pub struct BoundedQueues {
    bound: usize,
    shards: Vec<VecDeque<MeasureRequest>>,
    peak: usize,
    shed: u64,
}

impl BoundedQueues {
    /// `shards` queues (at least one), each bounded to `bound` entries
    /// (at least one — a zero bound would shed everything and make the
    /// service vacuous).
    pub fn new(shards: usize, bound: usize) -> BoundedQueues {
        BoundedQueues {
            bound: bound.max(1),
            shards: (0..shards.max(1)).map(|_| VecDeque::new()).collect(),
            peak: 0,
            shed: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session's requests route to.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (session_id % self.shards.len() as u64) as usize
    }

    /// Enqueues onto `shard`; returns `false` (shed) at the bound.
    pub fn push(&mut self, shard: usize, req: MeasureRequest) -> bool {
        let shard = shard % self.shards.len();
        if self.shards[shard].len() >= self.bound {
            self.shed += 1;
            return false;
        }
        self.shards[shard].push_back(req);
        self.peak = self.peak.max(self.shards[shard].len());
        true
    }

    /// Takes every queued request, emptying the queues: one FIFO `Vec`
    /// per shard, shard order.
    pub fn take(&mut self) -> Vec<Vec<MeasureRequest>> {
        self.shards
            .iter_mut()
            .map(|q| q.drain(..).collect())
            .collect()
    }

    /// Requests currently queued across all shards.
    pub fn depth(&self) -> usize {
        self.shards.iter().map(VecDeque::len).sum()
    }

    /// Highest single-shard depth ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Requests shed at the bound since construction.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(session: usize, seq: u64) -> MeasureRequest {
        MeasureRequest { session, seq }
    }

    #[test]
    fn sheds_at_the_bound_and_keeps_counting() {
        let mut q = BoundedQueues::new(1, 2);
        assert!(q.push(0, req(0, 0)));
        assert!(q.push(0, req(1, 0)));
        assert!(!q.push(0, req(2, 0)), "third push must shed");
        assert!(!q.push(0, req(3, 0)));
        assert_eq!(q.shed(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak(), 2);
        // Draining frees capacity; the shed count is cumulative.
        let drained = q.take();
        assert_eq!(drained[0].len(), 2);
        assert_eq!(q.depth(), 0);
        assert!(q.push(0, req(4, 0)));
        assert_eq!(q.shed(), 2);
    }

    #[test]
    fn take_preserves_fifo_order_per_shard() {
        let mut q = BoundedQueues::new(2, 8);
        for seq in 0..3 {
            q.push(0, req(0, seq));
            q.push(1, req(1, seq));
        }
        let drained = q.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(
            drained[0],
            vec![req(0, 0), req(0, 1), req(0, 2)],
            "FIFO within shard"
        );
        assert_eq!(drained[1], vec![req(1, 0), req(1, 1), req(1, 2)]);
    }

    #[test]
    fn degenerate_bounds_clamp_to_one() {
        let mut q = BoundedQueues::new(0, 0);
        assert_eq!(q.shard_count(), 1);
        assert!(q.push(0, req(0, 0)));
        assert!(!q.push(0, req(1, 0)), "bound clamps to 1, second sheds");
    }

    #[test]
    fn shard_routing_is_modular() {
        let q = BoundedQueues::new(4, 1);
        assert_eq!(q.shard_of(0), 0);
        assert_eq!(q.shard_of(5), 1);
        assert_eq!(q.shard_of(11), 3);
    }
}
