//! The serve engine: sharded workers over bounded queues, batched
//! inference, and the shared model cache.
//!
//! # Determinism
//!
//! The engine is tick-structured: callers [`Engine::submit`] a batch of
//! requests (deterministic order), then [`Engine::drain`] processes
//! everything queued. Requests shard by **session id**, not by thread
//! count, and each shard is processed serially inside one
//! [`wimi_core::par`] worker — so which requests shed, which shard runs
//! which measurement, and every queue/batch/cache counter are pure
//! functions of the request stream. Worker threads only decide *when*
//! shards run, never *what* they compute, which is what makes the fleet
//! summary byte-identical under any `WIMI_THREADS`/`WIMI_CHUNK` shape.
//!
//! # Batching
//!
//! Measured features from all sessions funnel into one classification
//! phase per drain, grouped by [`ModelKey`] and chunked to `batch_max`,
//! so one `MulticlassSvm` dispatch amortises across sessions (the
//! `serve_batches`/`serve_batched` counters record the coalescing).

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use wimi_campaign::derive_cell_seed;
use wimi_core::{MaterialFeature, WiMi, WiMiConfig};
use wimi_ml::dataset::Dataset;
use wimi_obs::{CounterId, GaugeId, Recorder};
use wimi_phy::channel::Environment;
use wimi_phy::csi::CsiSource;
use wimi_phy::scenario::{LiquidSpec, Scenario, Simulator};
use wimi_phy::units::Meters;

use crate::cache::{ModelCache, ModelKey};
use crate::queue::{BoundedQueues, ShardTick};
use crate::session::{MeasureOutcome, MeasureRequest, Session};

/// Engine shape and training configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; sessions route by `id % shards`. Fixed by config —
    /// never derived from the thread count — so results are
    /// thread-invariant.
    pub shards: usize,
    /// Per-shard queue bound; submits past it are shed.
    pub queue_bound: usize,
    /// Maximum requests coalesced into one classification batch.
    pub batch_max: usize,
    /// Training measurements per material when a model key misses.
    pub train_per_class: usize,
    /// Root seed for model training (mixed with each key).
    pub train_root: u64,
    /// Base pipeline configuration for training extractors and models.
    pub config: WiMiConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_bound: 64,
            batch_max: 8,
            train_per_class: 3,
            train_root: 0x5EED_CA11,
            config: WiMiConfig::default(),
        }
    }
}

/// One classified (or failed) measurement, returned by [`Engine::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// Session id the response belongs to.
    pub session: u64,
    /// Measurement sequence number within the session.
    pub seq: u64,
    /// Ground-truth label of the session's material.
    pub truth: usize,
    /// Predicted label, or `None` when measurement retries were
    /// exhausted or the key's model was untrainable.
    pub label: Option<usize>,
    /// Whether a feature was extracted (measurement succeeded).
    pub measured: bool,
    /// Attempts rejected by the pipeline before success (or giving up).
    pub rejected: usize,
    /// Whether the successful measurement needed salvage.
    pub salvaged: bool,
    /// Packets actually spent across all attempts.
    pub packets_spent: usize,
    /// Attempts taken (1 = first try succeeded).
    pub attempts: usize,
}

/// One shard's activity over one submit/drain tick, handed to the
/// telemetry collector by [`Engine::take_tick_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTickStats {
    /// Requests accepted onto the shard this tick.
    pub submitted: u64,
    /// Requests shed at the shard's bound this tick.
    pub shed: u64,
    /// Highest depth the shard reached this tick.
    pub peak: u64,
    /// Depth when the drain began (gauge).
    pub depth: u64,
    /// Responses the shard produced this tick.
    pub completed: u64,
}

/// Test seam: invoked once per request inside the owning worker, with
/// the session id. Lets fault tests inject a panic into a worker and
/// assert it is forwarded, not swallowed.
type RequestProbe = Box<dyn Fn(u64) + Send + Sync>;

/// The fleet-scale measurement service.
pub struct Engine {
    cfg: ServeConfig,
    sessions: Vec<Session>,
    specs: BTreeMap<String, LiquidSpec>,
    cache: ModelCache,
    queues: BoundedQueues,
    tick_completed: Vec<u64>,
    recorder: Arc<Recorder>,
    probe: Option<RequestProbe>,
}

impl Engine {
    /// Builds an engine over `sessions`. `catalog` maps material names
    /// (as they appear in session catalogs) to dielectric specs for
    /// model training; `recorder` receives the engine-level counters
    /// (`serve_*`, `model_cache_*`) plus all training work.
    pub fn new(
        cfg: ServeConfig,
        sessions: Vec<Session>,
        catalog: Vec<(String, LiquidSpec)>,
        recorder: Arc<Recorder>,
    ) -> Engine {
        let queues = BoundedQueues::new(cfg.shards, cfg.queue_bound);
        let tick_completed = vec![0; queues.shard_count()];
        // Gauges are last-write-wins; setting them here and from serial
        // drain code (never inside the parallel fan-out) keeps snapshots
        // deterministic.
        recorder.set_gauge(GaugeId::ServeSessions, sessions.len() as u64);
        Engine {
            cfg,
            sessions,
            specs: catalog.into_iter().collect(),
            cache: ModelCache::new(),
            queues,
            tick_completed,
            recorder,
            probe: None,
        }
    }

    /// The engine's sessions, construction order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Engine-level recorder (serve counters, cache counters, training).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The shared model cache.
    pub fn cache(&self) -> &ModelCache {
        &self.cache
    }

    /// Highest single-shard queue depth observed.
    pub fn queue_peak(&self) -> usize {
        self.queues.peak()
    }

    /// Highest depth each shard ever reached, shard order — names the
    /// hot shard behind [`Engine::queue_peak`].
    pub fn shard_peaks(&self) -> &[usize] {
        self.queues.shard_peaks()
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.queues.shard_count()
    }

    /// Hands over (and resets) each shard's submit/drain deltas since
    /// the previous call — the telemetry timeline's per-shard samples.
    pub fn take_tick_stats(&mut self) -> Vec<ShardTickStats> {
        let completed =
            std::mem::replace(&mut self.tick_completed, vec![0; self.queues.shard_count()]);
        self.queues
            .take_tick()
            .into_iter()
            .zip(completed)
            .map(|(t, completed): (ShardTick, u64)| ShardTickStats {
                submitted: t.submitted,
                shed: t.shed,
                peak: t.peak,
                depth: t.depth,
                completed,
            })
            .collect()
    }

    /// Requests shed at the queue bound so far.
    pub fn shed(&self) -> u64 {
        self.queues.shed()
    }

    /// Installs the per-request probe (see [`RequestProbe`]).
    #[doc(hidden)]
    pub fn set_request_probe(&mut self, probe: RequestProbe) {
        self.probe = Some(probe);
    }

    /// Enqueues `requests` in order, shedding at full shard queues (and
    /// dropping requests naming an unknown session). Returns how many
    /// were accepted; the rest are counted under `serve_shed`.
    pub fn submit(&mut self, requests: &[MeasureRequest]) -> usize {
        let mut accepted = 0;
        for req in requests {
            self.recorder.incr(CounterId::ServeRequests);
            if req.session >= self.sessions.len() {
                self.recorder.incr(CounterId::ServeShed);
                continue;
            }
            let shard = self.queues.shard_of(self.sessions[req.session].id);
            if self.queues.push(shard, *req) {
                accepted += 1;
            } else {
                self.recorder.incr(CounterId::ServeShed);
            }
        }
        accepted
    }

    /// Processes everything queued: measurements fan out one shard per
    /// [`wimi_core::par`] worker (serial inside a shard), then measured
    /// features are classified in model-keyed batches. Responses come
    /// back sorted by `(session, seq)` regardless of thread count.
    ///
    /// # Panics
    ///
    /// A panic inside a worker (e.g. from an installed probe) is
    /// forwarded to the caller, mirroring the serial loop — never
    /// swallowed into a missing response.
    pub fn drain(&mut self) -> Vec<ServeResponse> {
        // Depth gauge: sampled here, in serial driver code, before the
        // drain empties the queues.
        self.recorder
            .set_gauge(GaugeId::ServeQueueDepth, self.queues.depth() as u64);
        let shard_batches = self.queues.take();
        let sessions = &self.sessions;
        let probe = self.probe.as_deref();
        let measured: Vec<Vec<(MeasureRequest, MeasureOutcome)>> =
            wimi_core::par::map(&shard_batches, |_, reqs| {
                reqs.iter()
                    .filter(|r| r.session < sessions.len())
                    .map(|r| {
                        if let Some(p) = probe {
                            p(sessions[r.session].id);
                        }
                        (*r, sessions[r.session].measure(r.seq))
                    })
                    .collect()
            });
        let flat: Vec<(MeasureRequest, MeasureOutcome)> = measured.into_iter().flatten().collect();

        // Group measured features by model key; BTreeMap iteration gives
        // a deterministic training/classification order.
        let mut groups: BTreeMap<ModelKey, Vec<usize>> = BTreeMap::new();
        for (i, (req, out)) in flat.iter().enumerate() {
            if out.feature.is_some() {
                groups
                    .entry(self.model_key(&self.sessions[req.session]))
                    .or_default()
                    .push(i);
            }
        }

        let mut labels: Vec<Option<usize>> = vec![None; flat.len()];
        for (key, idxs) in &groups {
            let model = self
                .cache
                .get_or_train(key, Some(&self.recorder), || self.train_model(key));
            for chunk in idxs.chunks(self.cfg.batch_max.max(1)) {
                let feats: Vec<MaterialFeature> = chunk
                    .iter()
                    .filter_map(|&i| flat[i].1.feature.clone())
                    .collect();
                self.recorder.incr(CounterId::ServeBatches);
                self.recorder
                    .add(CounterId::ServeBatched, feats.len() as u64);
                // An untrainable key (fewer than two populated classes
                // in its training set) classifies nothing; its requests
                // stay label-less rather than failing the drain.
                if let Ok(preds) = model.classify_features(&feats) {
                    for (&i, p) in chunk.iter().zip(preds) {
                        labels[i] = Some(p);
                    }
                }
            }
        }

        let mut responses: Vec<ServeResponse> = flat
            .iter()
            .enumerate()
            .map(|(i, (req, out))| {
                let s = &self.sessions[req.session];
                ServeResponse {
                    session: s.id,
                    seq: req.seq,
                    truth: s.truth,
                    label: labels[i],
                    measured: out.feature.is_some(),
                    rejected: out.rejected,
                    salvaged: out.salvaged,
                    packets_spent: out.packets_spent,
                    attempts: out.attempts,
                }
            })
            .collect();
        for r in &responses {
            self.tick_completed[self.queues.shard_of(r.session)] += 1;
        }
        responses.sort_by_key(|r| (r.session, r.seq));
        responses
    }

    /// The model-cache key a session's requests resolve to.
    pub fn model_key(&self, session: &Session) -> ModelKey {
        ModelKey {
            catalog: session.catalog.clone(),
            environment: session.environment.name().to_owned(),
            packets: session.packets,
        }
    }

    /// Trains the model for one key: a deterministic training set —
    /// `train_per_class` clean measurements per catalog material under
    /// the key's environment and capture length, seeded purely from the
    /// key — then an SVM fit. A key whose training set ends up with
    /// fewer than two populated classes yields an *untrained* model (its
    /// requests classify to `None`), keeping the service total.
    fn train_model(&self, key: &ModelKey) -> WiMi {
        let seed = key.train_seed(self.cfg.train_root);
        let environment = Environment::ALL
            .iter()
            .copied()
            .find(|e| e.name() == key.environment)
            .unwrap_or(Environment::Lab);
        let mut extractor = WiMi::new(self.cfg.config.clone());
        extractor.set_recorder(Some(Arc::clone(&self.recorder)));
        let mut ds = Dataset::new(key.catalog.clone());
        let retry = crate::retry::RetryPolicy::default();
        for trial in 0..self.cfg.train_per_class.max(1) {
            for (label, name) in key.catalog.iter().enumerate() {
                // Unknown names contribute no samples; if that leaves the
                // key untrainable the guard below keeps it total.
                let Some(spec) = self.specs.get(name) else {
                    continue;
                };
                let mseed = derive_cell_seed(seed, (trial * key.catalog.len() + label) as u64);
                let mut placement =
                    rand::rngs::StdRng::seed_from_u64(mseed ^ 0x9E37_79B9_7F4A_7C15);
                // Training measurements get the same re-seat-and-retry
                // protocol as serving: a single placement regularly lands
                // in a gamma-ambiguous spot and extraction refuses it.
                for attempt in 0..retry.allowed_attempts(key.packets) {
                    let offset_cm = 1.0 + placement.gen_range(-0.5..0.5);
                    let mut builder = Scenario::builder();
                    builder.environment(environment);
                    builder.target_offset(Meters::from_cm(offset_cm));
                    let mut sim = Simulator::new(
                        builder.build(),
                        crate::retry::attempt_capture_seed(mseed, attempt),
                    );
                    sim.set_recorder(Some(Arc::clone(&self.recorder)));
                    let base = sim.capture(key.packets);
                    sim.set_liquid(Some(spec.clone()));
                    let tar = sim.capture(key.packets);
                    if let Ok(f) = extractor.measure(&base, &tar).feature {
                        ds.push(f.as_vector(), label);
                        break;
                    }
                }
            }
        }
        let populated = ds.class_counts().iter().filter(|&&n| n > 0).count();
        let mut model = WiMi::new(WiMiConfig {
            train_seed: seed,
            ..self.cfg.config.clone()
        });
        model.set_recorder(Some(Arc::clone(&self.recorder)));
        if populated >= 2 {
            model.train_on_dataset(&ds);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use crate::session::SessionSpec;
    use wimi_phy::material::Liquid;

    fn sessions(n: usize) -> (Vec<Session>, Vec<(String, LiquidSpec)>) {
        let catalog: Vec<(String, LiquidSpec)> = [Liquid::Milk, Liquid::PureWater]
            .iter()
            .map(|&l| (l.name().to_owned(), l.into()))
            .collect();
        let names: Vec<String> = catalog.iter().map(|(n, _)| n.clone()).collect();
        let sessions = (0..n)
            .map(|i| {
                Session::new(SessionSpec {
                    id: i as u64,
                    seed: derive_cell_seed(0xF1EE7, i as u64),
                    truth: i % catalog.len(),
                    catalog: names.clone(),
                    spec: catalog[i % catalog.len()].1.clone(),
                    environment: if i % 2 == 0 {
                        Environment::Lab
                    } else {
                        Environment::EmptyHall
                    },
                    packets: 8,
                    retry: RetryPolicy::default(),
                    fault: None,
                    config: WiMiConfig::default(),
                    trace: false,
                })
            })
            .collect();
        (sessions, catalog)
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_bound: 16,
            batch_max: 3,
            train_per_class: 3,
            ..ServeConfig::default()
        }
    }

    fn requests(n: usize, seq: u64) -> Vec<MeasureRequest> {
        (0..n)
            .map(|session| MeasureRequest { session, seq })
            .collect()
    }

    #[test]
    fn drain_classifies_and_orders_responses() {
        let (s, catalog) = sessions(4);
        let mut engine = Engine::new(tiny_config(), s, catalog, Arc::new(Recorder::enabled()));
        assert_eq!(engine.submit(&requests(4, 0)), 4);
        let responses = engine.drain();
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.session, i as u64, "responses sorted by session");
            assert!(r.measured, "clean 8-packet measurements extract");
            assert!(r.label.is_some(), "trained keys classify");
        }
        // Two environments × one catalog → two model keys, each trained
        // exactly once.
        assert_eq!(engine.cache().len(), 2);
        let snap = engine.recorder().snapshot();
        assert_eq!(snap.counter("model_cache_misses"), Some(2));
        assert_eq!(snap.counter("serve_requests"), Some(4));
        assert_eq!(snap.counter("serve_shed"), Some(0));
    }

    #[test]
    fn second_drain_hits_the_cache() {
        let (s, catalog) = sessions(4);
        let mut engine = Engine::new(tiny_config(), s, catalog, Arc::new(Recorder::enabled()));
        engine.submit(&requests(4, 0));
        let _ = engine.drain();
        engine.submit(&requests(4, 1));
        let _ = engine.drain();
        let snap = engine.recorder().snapshot();
        assert_eq!(snap.counter("model_cache_misses"), Some(2));
        assert_eq!(snap.counter("model_cache_hits"), Some(2));
        assert_eq!(engine.cache().len(), 2);
    }

    #[test]
    fn batching_coalesces_up_to_batch_max() {
        let (s, catalog) = sessions(8);
        let mut engine = Engine::new(tiny_config(), s, catalog, Arc::new(Recorder::enabled()));
        engine.submit(&requests(8, 0));
        let responses = engine.drain();
        assert_eq!(responses.len(), 8);
        let snap = engine.recorder().snapshot();
        // 8 requests over 2 keys (4 each), batch_max 3 → 2 batches per
        // key: ceil(4 / 3) × 2.
        assert_eq!(snap.counter("serve_batches"), Some(4));
        assert_eq!(snap.counter("serve_batched"), Some(8));
    }

    #[test]
    fn unknown_sessions_are_shed_not_panicked() {
        let (s, catalog) = sessions(2);
        let mut engine = Engine::new(tiny_config(), s, catalog, Arc::new(Recorder::enabled()));
        let reqs = vec![
            MeasureRequest { session: 0, seq: 0 },
            MeasureRequest {
                session: 99,
                seq: 0,
            },
        ];
        assert_eq!(engine.submit(&reqs), 1);
        let snap = engine.recorder().snapshot();
        assert_eq!(snap.counter("serve_shed"), Some(1));
        assert_eq!(engine.drain().len(), 1);
    }
}
