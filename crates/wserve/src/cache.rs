//! Shared trained-model cache with single-flight training.
//!
//! Models are keyed by `(catalog, scenario class)`: the material names a
//! link discriminates between, its deployment environment, and its
//! capture length. Concurrent requests for the same key train **once** —
//! the first arrival initialises a per-key [`OnceLock`] while later
//! arrivals block on it — so the cache reports exactly one miss per key
//! ever, and hit/miss counts are a pure function of the request stream,
//! never of thread scheduling.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use wimi_campaign::derive_cell_seed;
use wimi_core::WiMi;
use wimi_obs::{CounterId, Recorder};

/// The identity of one trained model: which materials it separates and
/// under what scenario class it was (and must be) trained.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelKey {
    /// Material catalog names, in label order.
    pub catalog: Vec<String>,
    /// Environment name (`Environment::name()`), the scenario class.
    pub environment: String,
    /// Packets per capture the model was trained at.
    pub packets: usize,
}

impl ModelKey {
    /// The model's training seed: a pure function of the key and the
    /// fleet's training root, so whichever session triggers training, the
    /// resulting model is identical. Key text is folded through FNV-1a
    /// and mixed with the root through the same SplitMix64 finisher the
    /// campaign grid uses for cell seeds.
    pub fn train_seed(&self, root: u64) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for name in &self.catalog {
            eat(name.as_bytes());
            eat(b"+");
        }
        eat(self.environment.as_bytes());
        eat(&(self.packets as u64).to_le_bytes());
        derive_cell_seed(root, h)
    }
}

/// Single-flight trained-model cache.
pub struct ModelCache {
    cells: Mutex<BTreeMap<ModelKey, Arc<OnceLock<Arc<WiMi>>>>>,
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new()
    }
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> ModelCache {
        ModelCache {
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of keys with a (possibly in-flight) model.
    pub fn len(&self) -> usize {
        match self.cells.lock() {
            Ok(map) => map.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// `true` when no key has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the model for `key`, training it via `train` if this is
    /// the first request. Concurrent callers for the same key block until
    /// the single training finishes and then share the same `Arc`. The
    /// map lock is held only to find/insert the per-key cell, never
    /// across training, so training different keys proceeds in parallel.
    ///
    /// Records one `model_cache_misses` for the call that trained and one
    /// `model_cache_hits` for every other call.
    pub fn get_or_train<F>(&self, key: &ModelKey, rec: Option<&Recorder>, train: F) -> Arc<WiMi>
    where
        F: FnOnce() -> WiMi,
    {
        let cell = {
            let mut map = match self.cells.lock() {
                Ok(map) => map,
                // A poisoned map means a trainer panicked while *not*
                // holding this lock (it is never held across training);
                // the map itself is intact, so continue with it.
                Err(poisoned) => poisoned.into_inner(),
            };
            Arc::clone(map.entry(key.clone()).or_default())
        };
        let mut trained_here = false;
        let model = cell.get_or_init(|| {
            trained_here = true;
            Arc::new(train())
        });
        if let Some(rec) = rec {
            rec.incr(if trained_here {
                CounterId::ModelCacheMisses
            } else {
                CounterId::ModelCacheHits
            });
        }
        Arc::clone(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use wimi_core::WiMiConfig;

    fn key(env: &str) -> ModelKey {
        ModelKey {
            catalog: vec!["Milk".into(), "PureWater".into()],
            environment: env.into(),
            packets: 10,
        }
    }

    #[test]
    fn train_seed_is_stable_and_key_sensitive() {
        let root = 0xF1EE7;
        assert_eq!(key("Lab").train_seed(root), key("Lab").train_seed(root));
        assert_ne!(key("Lab").train_seed(root), key("Hall").train_seed(root));
        assert_ne!(key("Lab").train_seed(root), key("Lab").train_seed(root ^ 1));
        let mut longer = key("Lab");
        longer.packets = 20;
        assert_ne!(key("Lab").train_seed(root), longer.train_seed(root));
    }

    #[test]
    fn single_flight_trains_once_per_key() {
        let cache = ModelCache::new();
        let rec = Recorder::enabled();
        let trainings = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let model = cache.get_or_train(&key("Lab"), Some(&rec), || {
                        trainings.fetch_add(1, Ordering::Relaxed);
                        WiMi::new(WiMiConfig::default())
                    });
                    assert!(!model.is_trained()); // untrained stub model
                });
            }
        });
        assert_eq!(trainings.load(Ordering::Relaxed), 1, "single-flight");
        assert_eq!(cache.len(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("model_cache_misses"), Some(1));
        assert_eq!(snap.counter("model_cache_hits"), Some(7));
    }

    #[test]
    fn distinct_keys_train_independently() {
        let cache = ModelCache::new();
        let trainings = AtomicUsize::new(0);
        for env in ["Lab", "Hall", "Lab", "Library", "Hall"] {
            cache.get_or_train(&key(env), None, || {
                trainings.fetch_add(1, Ordering::Relaxed);
                WiMi::new(WiMiConfig::default())
            });
        }
        assert_eq!(trainings.load(Ordering::Relaxed), 3);
        assert_eq!(cache.len(), 3);
    }
}
