//! Deterministic synthetic-fleet driver: N sessions × M measurements
//! through one [`Engine`], either from a [`FleetConfig`] grid or from a
//! parsed `.campaign` file.
//!
//! This is the headline serve benchmark: the driver submits one request
//! per session per tick (session order) and drains between ticks, so the
//! whole run — which requests shed, which keys train, every counter —
//! is a pure function of the configuration. The resulting
//! [`FleetReport`] renders to the byte-stable `wimi-serve/1` summary and
//! must be identical under any `WIMI_THREADS`/`WIMI_CHUNK` shape.

use std::collections::BTreeMap;
use std::sync::Arc;

use wimi_campaign::{derive_cell_seed, expand, fault_plan, lower, state_at, Campaign};
use wimi_metrics::{SessionRow, ShardSample, TickCollector, TickSample, Timeline};
use wimi_obs::{CounterId, Recorder, Snapshot};
use wimi_phy::channel::Environment;
use wimi_phy::material::LIQUIDS;
use wimi_phy::scenario::LiquidSpec;

use crate::engine::{Engine, ServeConfig, ServeResponse};
use crate::retry::RetryPolicy;
use crate::session::{MeasureRequest, Session, SessionSpec};

/// Shape of a synthetic fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of sessions (links) in the fleet.
    pub sessions: usize,
    /// Measurements requested per session.
    pub measurements: u64,
    /// Fleet root seed; session `i` gets `derive_cell_seed(seed, i)`.
    pub seed: u64,
    /// Packets per capture on every session.
    pub packets: usize,
    /// Catalog size: the first `catalog_size` paper liquids.
    pub catalog_size: usize,
    /// Environments assigned round-robin across sessions (so a fleet
    /// with more than one exercises more than one model key).
    pub environments: Vec<Environment>,
    /// Retry policy shared by every session.
    pub retry: RetryPolicy,
    /// Whether sessions carry per-session trace sinks.
    pub trace: bool,
    /// Telemetry window: how many of the newest ticks the report's
    /// timeline retains (older ticks are evicted and counted).
    pub metrics_window: usize,
    /// Engine shape (shards, queue bound, batching, training).
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sessions: 12,
            measurements: 5,
            seed: 0xF1EE7,
            packets: 10,
            catalog_size: 3,
            environments: vec![Environment::Lab, Environment::EmptyHall],
            retry: RetryPolicy::default(),
            trace: false,
            metrics_window: 1024,
            serve: ServeConfig::default(),
        }
    }
}

/// Per-session tallies folded from the response stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStat {
    /// Session id.
    pub id: u64,
    /// Ground-truth label.
    pub truth: usize,
    /// Environment name the session ran in.
    pub environment: String,
    /// Ground-truth material name (`catalog[truth]`).
    pub material: String,
    /// Responses with a predicted label.
    pub ok: u64,
    /// Responses without one (retries exhausted or key untrainable).
    pub failed: u64,
    /// Requests shed before reaching this session's shard.
    pub shed: u64,
    /// Correct predictions among `ok`.
    pub correct: u64,
    /// Attempts rejected across all measurements.
    pub rejected: u64,
    /// Measurements that needed salvage.
    pub salvaged: u64,
    /// Packets actually spent across all measurements.
    pub packets_spent: u64,
}

impl SessionStat {
    /// This session as a `wimi-metrics` report row.
    pub fn metrics_row(&self) -> SessionRow {
        SessionRow {
            id: self.id,
            environment: self.environment.clone(),
            material: self.material.clone(),
            ok: self.ok,
            failed: self.failed,
            shed: self.shed,
            correct: self.correct,
            packets_spent: self.packets_spent,
        }
    }
}

/// Everything a fleet run produced, ready for summary rendering.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Number of sessions driven.
    pub sessions: usize,
    /// Measurements requested per session.
    pub measurements: u64,
    /// Fleet root seed.
    pub seed: u64,
    /// Requests submitted (sessions × measurements).
    pub requests: u64,
    /// Responses produced (requests − shed).
    pub responses: u64,
    /// Responses with a predicted label.
    pub ok: u64,
    /// Responses without one.
    pub failed: u64,
    /// Requests shed at the queue bound.
    pub shed: u64,
    /// Correct predictions among `ok`.
    pub correct: u64,
    /// Distinct model keys trained.
    pub model_keys: usize,
    /// Highest single-shard queue depth observed.
    pub queue_peak: usize,
    /// Per-session tallies, session order.
    pub per_session: Vec<SessionStat>,
    /// Fleet-wide counters (engine + every session, summed), canonical
    /// [`CounterId::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Tick-resolved telemetry over the run (bounded to the configured
    /// window).
    pub timeline: Timeline,
    /// The engine recorder's final snapshot — the one the telemetry
    /// artifact embeds and cross-checks against the tick sums.
    pub engine_snapshot: Snapshot,
}

/// Builds the synthetic fleet's sessions and its material catalog.
fn build_sessions(cfg: &FleetConfig) -> (Vec<Session>, Vec<(String, LiquidSpec)>) {
    let n = cfg.catalog_size.clamp(2, LIQUIDS.len());
    let catalog: Vec<(String, LiquidSpec)> = LIQUIDS[..n]
        .iter()
        .map(|&l| (l.name().to_owned(), l.into()))
        .collect();
    let names: Vec<String> = catalog.iter().map(|(name, _)| name.clone()).collect();
    let environments = if cfg.environments.is_empty() {
        vec![Environment::Lab]
    } else {
        cfg.environments.clone()
    };
    let sessions = (0..cfg.sessions)
        .map(|i| {
            let truth = i % names.len();
            Session::new(SessionSpec {
                id: i as u64,
                seed: derive_cell_seed(cfg.seed, i as u64),
                truth,
                catalog: names.clone(),
                spec: catalog[truth].1.clone(),
                environment: environments[i % environments.len()],
                packets: cfg.packets,
                retry: cfg.retry.clone(),
                fault: None,
                config: cfg.serve.config.clone(),
                trace: cfg.trace,
            })
        })
        .collect();
    (sessions, catalog)
}

/// Folds one drain's responses into the running stats. `pos_of` maps
/// session *ids* (what responses carry) to positions in `stats` — the
/// two differ whenever ids are sparse (campaign fleets with skipped
/// cells), and indexing by id silently misattributed tallies before the
/// summary grew its per-session conservation check.
fn fold(
    responses: &[ServeResponse],
    pos_of: &BTreeMap<u64, usize>,
    stats: &mut [SessionStat],
) -> (u64, u64, u64) {
    let (mut ok, mut failed, mut correct) = (0u64, 0u64, 0u64);
    for r in responses {
        let Some(stat) = pos_of.get(&r.session).and_then(|&p| stats.get_mut(p)) else {
            continue;
        };
        stat.rejected += r.rejected as u64;
        stat.packets_spent += r.packets_spent as u64;
        if r.salvaged {
            stat.salvaged += 1;
        }
        match r.label {
            Some(label) => {
                stat.ok += 1;
                ok += 1;
                if label == r.truth {
                    stat.correct += 1;
                    correct += 1;
                }
            }
            None => {
                stat.failed += 1;
                failed += 1;
            }
        }
    }
    (ok, failed, correct)
}

/// Reads one named counter out of a snapshot (0 when absent).
fn counter_of(snap: &Snapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

/// Runs a fleet over an already-built engine. `measurements` requests per
/// session are submitted one per tick in session order, draining between
/// ticks. Each tick's service, cache and retry deltas are sampled into
/// the report's timeline (bounded to `metrics_window` ticks).
fn drive(mut engine: Engine, measurements: u64, seed: u64, metrics_window: usize) -> FleetReport {
    let mut stats: Vec<SessionStat> = engine
        .sessions()
        .iter()
        .map(|s| SessionStat {
            id: s.id,
            truth: s.truth,
            environment: s.environment.name().to_owned(),
            material: s.catalog.get(s.truth).cloned().unwrap_or_default(),
            ..SessionStat::default()
        })
        .collect();
    let pos_of: BTreeMap<u64, usize> = stats.iter().enumerate().map(|(p, s)| (s.id, p)).collect();
    let session_count = stats.len();
    let mut collector = TickCollector::new(engine.shard_count(), metrics_window);
    let (mut requests, mut ok, mut failed, mut correct) = (0u64, 0u64, 0u64, 0u64);
    for seq in 0..measurements {
        let before = engine.recorder().snapshot();
        let mut tick_requests = 0u64;
        for (session, stat) in stats.iter_mut().enumerate() {
            requests += 1;
            tick_requests += 1;
            if engine.submit(&[MeasureRequest { session, seq }]) == 0 {
                stat.shed += 1;
            }
        }
        let responses = engine.drain();
        let after = engine.recorder().snapshot();
        let (o, f, c) = fold(&responses, &pos_of, &mut stats);
        ok += o;
        failed += f;
        correct += c;

        // One TickSample per tick: cache/batch deltas come from the
        // engine recorder (serial snapshot diff), retry and work-cost
        // deltas fold over this tick's responses, the shard breakdown
        // comes from the queues. All deterministic — no wall clock.
        let delta = |name: &str| counter_of(&after, name) - counter_of(&before, name);
        let shards: Vec<ShardSample> = engine
            .take_tick_stats()
            .into_iter()
            .map(|s| ShardSample {
                depth: s.depth,
                peak: s.peak,
                submitted: s.submitted,
                completed: s.completed,
                shed: s.shed,
            })
            .collect();
        collector.push(TickSample {
            tick: seq,
            requests: tick_requests,
            completed: responses.len() as u64,
            shed: tick_requests - responses.len() as u64,
            cache_hits: delta("model_cache_hits"),
            cache_misses: delta("model_cache_misses"),
            retry_attempts: responses.iter().map(|r| r.attempts as u64).sum(),
            retries_exhausted: responses.iter().filter(|r| !r.measured).count() as u64,
            svm_batches: delta("serve_batches"),
            packets_processed: responses.iter().map(|r| r.packets_spent as u64).sum(),
            // Responses are sorted by (session, seq) and each session
            // submits once per tick, so these ids are already ascending.
            exhausted: responses
                .iter()
                .filter(|r| !r.measured)
                .map(|r| r.session)
                .collect(),
            shards,
        });
    }
    // Queue peak is monotone across the run; record it once so the
    // snapshot carries it.
    engine
        .recorder()
        .add(CounterId::ServeQueuePeak, engine.queue_peak() as u64);
    let engine_snapshot = engine.recorder().snapshot();

    // Fleet-wide counters: the engine's (serve/cache/training) plus every
    // per-session recorder, summed in canonical order.
    let mut counters: Vec<(&'static str, u64)> = engine_snapshot.counters.clone();
    for session in engine.sessions() {
        let snap = session.recorder.snapshot();
        for (slot, &(_, v)) in counters.iter_mut().zip(snap.counters.iter()) {
            slot.1 += v;
        }
    }

    let shed: u64 = stats.iter().map(|s| s.shed).sum();
    FleetReport {
        sessions: session_count,
        measurements,
        seed,
        requests,
        responses: ok + failed,
        ok,
        failed,
        shed,
        correct,
        model_keys: engine.cache().len(),
        queue_peak: engine.queue_peak(),
        per_session: stats,
        counters,
        timeline: collector.finish(),
        engine_snapshot,
    }
}

/// Runs the synthetic fleet described by `cfg` and reports totals.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let (sessions, catalog) = build_sessions(cfg);
    let engine = Engine::new(
        cfg.serve.clone(),
        sessions,
        catalog,
        Arc::new(Recorder::enabled()),
    );
    drive(engine, cfg.measurements, cfg.seed, cfg.metrics_window)
}

/// Runs a fleet where each campaign grid cell becomes one session: the
/// cell's seed, materials, environment, packets and (initial-segment)
/// fault plan carry over, and the cell's ground truth cycles through its
/// material set by cell index. The engine's training catalog is the union
/// of all cells' materials. Scheduled condition *changes* are a per-trial
/// concept that doesn't map onto long-lived links, so only each cell's
/// first segment state is used.
pub fn run_campaign_fleet(campaign: &Campaign, cfg: &FleetConfig) -> FleetReport {
    let cells = expand(campaign);
    let mut union: BTreeMap<String, LiquidSpec> = BTreeMap::new();
    let mut sessions = Vec::with_capacity(cells.len());
    for cell in &cells {
        let refs = cell.materials.resolve();
        if refs.is_empty() {
            continue;
        }
        let names: Vec<String> = refs.iter().map(|r| r.label()).collect();
        for (name, r) in names.iter().zip(refs.iter()) {
            union.entry(name.clone()).or_insert_with(|| r.spec());
        }
        let truth = (cell.index as usize) % refs.len();
        let steps = lower(campaign, cell);
        let fault = fault_plan(state_at(&steps, 0), campaign.fault_seed);
        sessions.push(Session::new(SessionSpec {
            id: cell.index,
            seed: cell.seed,
            truth,
            catalog: names,
            spec: refs[truth].spec(),
            environment: cell.environment,
            packets: cell.packets,
            retry: cfg.retry.clone(),
            fault,
            config: cfg.serve.config.clone(),
            trace: cfg.trace,
        }));
    }
    let engine = Engine::new(
        cfg.serve.clone(),
        sessions,
        union.into_iter().collect(),
        Arc::new(Recorder::enabled()),
    );
    drive(engine, cfg.measurements, campaign.seed, cfg.metrics_window)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            sessions: 6,
            measurements: 2,
            packets: 8,
            serve: ServeConfig {
                shards: 3,
                train_per_class: 2,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_accounting_is_conserved() {
        let report = run_fleet(&tiny());
        assert_eq!(report.requests, 12);
        assert_eq!(report.responses + report.shed, report.requests);
        assert_eq!(report.ok + report.failed, report.responses);
        assert!(report.correct <= report.ok);
        assert_eq!(report.per_session.len(), 6);
        // Two environments round-robin over one catalog → two model keys.
        assert_eq!(report.model_keys, 2);
        let per: u64 = report.per_session.iter().map(|s| s.ok + s.failed).sum();
        assert_eq!(per, report.responses);
    }

    #[test]
    fn fleet_timeline_validates_as_a_metrics_artifact() {
        let report = run_fleet(&tiny());
        assert_eq!(report.timeline.ticks.len(), 2, "one sample per tick");
        assert_eq!(report.timeline.shards, 3);
        assert_eq!(report.timeline.evicted, 0);
        // Render with the embedded engine snapshot and run the full
        // fail-closed validation, including the counter cross-checks.
        let text = wimi_metrics::render(&report.timeline, Some(&report.engine_snapshot.to_json()));
        let parsed = wimi_metrics::parse_and_validate(&text)
            .unwrap_or_else(|e| panic!("fleet timeline must validate: {e}"));
        assert_eq!(parsed, report.timeline);
        // The timeline's queue peak is the report's (and the counter's).
        let peak = report
            .timeline
            .aggregate("queue_peak")
            .map(|s| s.max)
            .unwrap_or(0);
        assert_eq!(peak, report.queue_peak as u64);
    }

    #[test]
    fn session_stats_carry_environment_and_material() {
        let report = run_fleet(&tiny());
        for (i, stat) in report.per_session.iter().enumerate() {
            let want_env = if i % 2 == 0 { "Lab" } else { "Hall" };
            assert_eq!(stat.environment, want_env);
            assert!(!stat.material.is_empty());
            let row = stat.metrics_row();
            assert_eq!(row.environment, stat.environment);
            assert_eq!(row.material, stat.material);
        }
    }

    #[test]
    fn metrics_window_bounds_the_timeline() {
        let report = run_fleet(&FleetConfig {
            measurements: 5,
            metrics_window: 2,
            ..tiny()
        });
        assert_eq!(report.timeline.ticks.len(), 2);
        assert_eq!(report.timeline.evicted, 3);
        assert_eq!(report.timeline.first_tick(), Some(3));
        // Windowed timelines still validate (the counter cross-check
        // self-gates on eviction).
        let text = wimi_metrics::render(&report.timeline, Some(&report.engine_snapshot.to_json()));
        wimi_metrics::parse_and_validate(&text).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn fleet_runs_are_reproducible() {
        let a = run_fleet(&tiny());
        let b = run_fleet(&tiny());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.per_session, b.per_session);
        assert_eq!(a.correct, b.correct);
    }

    #[test]
    fn campaign_cells_become_sessions() {
        let campaign = wimi_campaign::parse(
            "campaign serve\nseed 7\naxis materials = Milk+PureWater\naxis environment = lab, hall\naxis packets = 8\n",
        )
        .unwrap_or_else(|e| panic!("campaign must parse: {e:?}"));
        let report = run_campaign_fleet(
            &campaign,
            &FleetConfig {
                measurements: 2,
                ..tiny()
            },
        );
        assert_eq!(report.sessions, wimi_campaign::cell_count(&campaign));
        assert_eq!(report.seed, 7);
        assert_eq!(report.requests, report.sessions as u64 * 2);
    }
}
