//! # wimi-serve
//!
//! Fleet-scale measurement service for the WiMi reproduction: many
//! long-lived measurement links ([`Session`]s) served by one engine with
//! sharded workers, bounded queues with load shedding, batched SVM
//! inference, and a shared single-flight trained-model cache.
//!
//! The paper evaluates one link at a time; a deployment has many —
//! different rooms, different catalogs, different capture lengths — and
//! most of the cost at that scale is *training* and *inference*, both of
//! which amortise across links. This crate provides the serving layer:
//!
//! * [`Session`] — one link: scenario, ground truth, [`RetryPolicy`],
//!   and its own per-session observability sinks.
//! * [`Engine`] — tick-structured service: [`Engine::submit`] requests
//!   into bounded per-shard queues (excess is shed, never blocked on),
//!   [`Engine::drain`] fans shards out over the `wimi_core::par` seam
//!   and classifies measured features in model-keyed batches.
//! * [`ModelCache`] — `(catalog, scenario class)`-keyed cache where
//!   concurrent first requests train exactly once (single flight).
//! * [`run_fleet`] / [`run_campaign_fleet`] — the deterministic
//!   synthetic-fleet driver behind the fleet benchmark, rendering the
//!   byte-stable `wimi-serve/1` summary ([`summary_json`]).
//!
//! # Determinism contract
//!
//! Everything observable — responses, summaries, all counters — is a
//! pure function of the request stream and configuration. Requests shard
//! by session id (never thread count), shards are processed serially
//! inside `par` workers, counters are commutative sums, and training
//! seeds derive from model keys. The fleet summary is byte-identical
//! under any `WIMI_THREADS`/`WIMI_CHUNK` setting, and CI diffs it.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fleet;
pub mod queue;
pub mod retry;
pub mod session;
pub mod summary;

pub use cache::{ModelCache, ModelKey};
pub use engine::{Engine, ServeConfig, ServeResponse, ShardTickStats};
pub use fleet::{run_campaign_fleet, run_fleet, FleetConfig, FleetReport, SessionStat};
pub use queue::{BoundedQueues, ShardTick};
pub use retry::{attempt_capture_seed, RetryPolicy};
pub use session::{MeasureOutcome, MeasureRequest, Session, SessionSpec};
pub use summary::{summary_json, validate_summary, SUMMARY_SCHEMA};
