//! Bounded retry policy for the re-seat-and-retry measurement protocol.
//!
//! This lived in the experiment harness until the serve layer needed it
//! per session; the harness re-exports it, so existing call sites keep
//! their paths.

/// Bounded retry policy for the re-seat-and-retry measurement protocol.
///
/// Real measurement campaigns cannot retry forever: every attempt costs
/// two captures' worth of air time. The policy caps attempts two ways —
/// a hard attempt count and a total packet budget — and an attempt is
/// allowed while both bounds hold (never below one attempt).
///
/// The budget is charged per *actual* packets spent: when triage or
/// salvage dropped packets, the attempt cost less air time than the
/// nominal `2 × packets_per_capture`, and the saved budget stays
/// available for further attempts. (An earlier revision charged every
/// attempt at nominal cost, denying retries whose real cost still fit;
/// see [`RetryPolicy::allows_another`].)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Hard cap on measurement attempts per trial.
    pub max_attempts: usize,
    /// Total packets (baseline + target captures both count) one trial
    /// may spend across all its attempts.
    pub packet_budget: usize,
}

impl Default for RetryPolicy {
    /// Four attempts under a 400-packet budget: identical to the old
    /// hard-coded 4-attempt loop for the paper's 20-packet captures
    /// (4 × 2 × 20 = 160 ≤ 400), but a 60-packet capture now stops after
    /// three attempts instead of wasting a fourth.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            packet_budget: 400,
        }
    }
}

impl RetryPolicy {
    /// A policy bounded only by attempt count (no packet budget).
    pub fn attempts(n: usize) -> Self {
        RetryPolicy {
            max_attempts: n,
            packet_budget: usize::MAX,
        }
    }

    /// The *planned* attempt cap for a given capture length, assuming
    /// every attempt costs its full nominal `2 × packets_per_capture`:
    /// the tighter of the attempt cap and the packet budget, but always
    /// at least one. This is what attempt-progress traces report as
    /// `max`; the loop itself consults [`RetryPolicy::allows_another`]
    /// with actual costs, which can only allow *more* attempts than
    /// planned (actual ≤ nominal), never fewer.
    pub fn allowed_attempts(&self, packets_per_capture: usize) -> usize {
        let per_attempt = 2 * packets_per_capture.max(1);
        let by_budget = self.packet_budget / per_attempt;
        self.max_attempts.min(by_budget).max(1)
    }

    /// Whether another attempt may start, given how many ran and what
    /// they actually cost. The first attempt is always allowed (a trial
    /// gets at least one measurement no matter the budget); a further
    /// attempt is allowed while the attempt cap holds *and* the budget
    /// still covers one more nominal-cost attempt on top of the packets
    /// actually spent so far.
    ///
    /// When every attempt costs exactly its nominal `2 × packets`, this
    /// reproduces the [`RetryPolicy::allowed_attempts`] arithmetic bit
    /// for bit. When screening dropped packets, `packets_spent` is lower
    /// and attempts that the nominal accounting would have denied remain
    /// available — the budget bounds air time actually used, not a
    /// worst-case estimate of it.
    pub fn allows_another(
        &self,
        attempts_made: usize,
        packets_spent: usize,
        packets_per_capture: usize,
    ) -> bool {
        if attempts_made == 0 {
            return true;
        }
        if attempts_made >= self.max_attempts {
            return false;
        }
        let next = 2 * packets_per_capture.max(1);
        packets_spent.saturating_add(next) <= self.packet_budget
    }
}

/// The capture seed of retry `attempt` (0-based) of the measurement
/// seeded `seed`. Multiplying by an odd constant is a bijection on `u64`
/// and the attempt offsets are pairwise distinct, so every attempt's
/// capture — and therefore its reseeded fault stream — is distinct from
/// every other attempt of the same measurement.
pub fn attempt_capture_seed(seed: u64, attempt: usize) -> u64 {
    seed.wrapping_mul(31).wrapping_add(attempt as u64 * 7919)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a retry loop where every attempt costs `kept` packets,
    /// returning how many attempts run before the policy stops it.
    fn attempts_at_cost(policy: &RetryPolicy, packets: usize, kept: usize) -> usize {
        let mut attempts = 0;
        let mut spent = 0usize;
        while policy.allows_another(attempts, spent, packets) {
            attempts += 1;
            spent += kept;
            if attempts > 1_000 {
                break; // defensive: the cap bounds every real policy
            }
        }
        attempts
    }

    #[test]
    fn planned_attempts_boundary_cases_pin_old_behaviour() {
        let p = RetryPolicy::default();
        // Attempt cap binds for the paper's 20-packet captures.
        assert_eq!(p.allowed_attempts(20), 4);
        // 2 × 50 × 4 = 400: the budget exactly covers four attempts.
        assert_eq!(p.allowed_attempts(50), 4);
        // One more packet per capture and the budget trims an attempt.
        assert_eq!(p.allowed_attempts(51), 3);
        assert_eq!(p.allowed_attempts(100), 2);
        assert_eq!(p.allowed_attempts(200), 1);
        // Oversized captures and degenerate inputs still allow one try.
        assert_eq!(p.allowed_attempts(1_000), 1);
        assert_eq!(p.allowed_attempts(0), 4);
        assert_eq!(RetryPolicy::attempts(3).allowed_attempts(10_000), 3);
        let zero_budget = RetryPolicy {
            max_attempts: 4,
            packet_budget: 0,
        };
        assert_eq!(zero_budget.allowed_attempts(20), 1);
    }

    #[test]
    fn actual_cost_loop_matches_planned_when_nothing_dropped() {
        // Full-cost attempts must reproduce the nominal arithmetic
        // exactly — the fix only changes salvage cases.
        for packets in [1usize, 10, 20, 49, 50, 51, 99, 100, 101, 200, 500] {
            for policy in [
                RetryPolicy::default(),
                RetryPolicy::attempts(3),
                RetryPolicy {
                    max_attempts: 7,
                    packet_budget: 1_000,
                },
            ] {
                assert_eq!(
                    attempts_at_cost(&policy, packets, 2 * packets),
                    policy.allowed_attempts(packets),
                    "packets={packets} policy={policy:?}"
                );
            }
        }
    }

    #[test]
    fn salvage_savings_fund_extra_attempts() {
        // Nominal accounting: 2 × 30 = 60 per attempt, 100 / 60 → one
        // attempt only. When screening drops half the packets the real
        // cost is 30, so a second attempt fits the same budget.
        let policy = RetryPolicy {
            max_attempts: 4,
            packet_budget: 100,
        };
        assert_eq!(policy.allowed_attempts(30), 1);
        assert!(policy.allows_another(1, 30, 30), "saved budget must carry");
        // ...but the budget still binds once actual spend approaches it.
        assert!(!policy.allows_another(2, 90, 30));
        // And the attempt cap is a hard stop even at zero cost.
        assert!(!policy.allows_another(4, 0, 30));
        assert_eq!(attempts_at_cost(&policy, 30, 0), 4);
    }

    #[test]
    fn first_attempt_is_always_allowed() {
        let starved = RetryPolicy {
            max_attempts: 1,
            packet_budget: 0,
        };
        assert!(starved.allows_another(0, 0, 10_000));
        assert!(!starved.allows_another(1, 0, 1));
    }

    #[test]
    fn attempt_capture_seeds_are_pairwise_distinct() {
        for seed in [0u64, 1, 0xACC0, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let seeds: Vec<u64> = (0..16).map(|a| attempt_capture_seed(seed, a)).collect();
            let mut sorted = seeds.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), seeds.len(), "collision under seed {seed}");
        }
    }
}
