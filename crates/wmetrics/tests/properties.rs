//! Property tests for the `wimi-metrics/1` artifact:
//!
//! 1. render → parse_and_validate is the identity on arbitrary *valid*
//!    timelines, and re-rendering the parse is byte-identical (the
//!    canonical-form contract the CI `cmp` gate depends on);
//! 2. the validator is total — byte mutations of a valid artifact never
//!    panic, only `Err` (or validate, when the mutation is benign);
//! 3. windowed aggregates always agree with a direct recomputation over
//!    the retained ticks.
//!
//! The vendored proptest shim has no struct strategies, so the timeline
//! generator draws a random valid run directly from the test RNG: shard
//! sums are constructed to satisfy the conservation invariants the
//! validator enforces (`completed + shed == requests`, shard submitted
//! summing to `completed`, exhausted lists sorted and sized).

use proptest::prelude::*;
use proptest::TestRng;

use wimi_metrics::{
    diff, parse_and_validate, render, ShardSample, TickCollector, TickSample, Timeline,
    WindowStats, SERIES,
};

fn sample_tick(rng: &mut TestRng, tick: u64, shards: usize) -> TickSample {
    let mut t = TickSample {
        tick,
        cache_hits: rng.next_u64() % 32,
        cache_misses: rng.next_u64() % 8,
        svm_batches: rng.next_u64() % 16,
        packets_processed: rng.next_u64() % 4096,
        ..TickSample::default()
    };
    for _ in 0..shards {
        let submitted = rng.next_u64() % 9;
        let shed = rng.next_u64() % 3;
        let depth = submitted;
        let peak = depth + rng.next_u64() % 4;
        t.shards.push(ShardSample {
            depth,
            peak,
            submitted,
            completed: submitted,
            shed,
        });
        t.completed += submitted;
        t.shed += shed;
    }
    t.requests = t.completed + t.shed;
    // A sorted, duplicate-free exhausted list with matching count.
    let n = (rng.next_u64() % 4) as usize;
    let mut ids: Vec<u64> = (0..n).map(|_| rng.next_u64() % 64).collect();
    ids.sort_unstable();
    ids.dedup();
    t.retries_exhausted = ids.len() as u64;
    t.retry_attempts = t.completed + 3 * t.retries_exhausted;
    t.exhausted = ids;
    t
}

fn sample_timeline(rng: &mut TestRng) -> Timeline {
    let shards = 1 + (rng.next_u64() as usize) % 4;
    let window = 1 + (rng.next_u64() as usize) % 12;
    let ticks = (rng.next_u64() as usize) % 20;
    let mut c = TickCollector::new(shards, window);
    for tick in 0..ticks {
        c.push(sample_tick(rng, tick as u64, shards));
    }
    c.finish()
}

/// Strategy producing arbitrary valid timelines.
struct ValidTimeline;

impl Strategy for ValidTimeline {
    type Value = Timeline;

    fn sample(&self, rng: &mut TestRng) -> Timeline {
        sample_timeline(rng)
    }
}

proptest! {
    // Canonical-form contract: parse(render(t)) == t, and the reparse
    // renders to the same bytes — this is what lets CI `cmp` timelines
    // across WIMI_THREADS shapes.
    #[test]
    fn render_parse_round_trip_is_identity(tl in ValidTimeline) {
        let text = render(&tl, None);
        let parsed = parse_and_validate(&text)
            .unwrap_or_else(|e| panic!("rendered timeline failed to validate: {e}\n{text}"));
        prop_assert_eq!(&parsed, &tl);
        prop_assert_eq!(render(&parsed, None), text);
        prop_assert!(diff(&text, &text).is_ok());
    }

    // The validator is total over byte mutations: no panic, ever.
    #[test]
    fn mutated_artifacts_never_panic(
        tl in ValidTimeline,
        pos in 0usize..1 << 20,
        byte in 0u32..256,
    ) {
        let mut bytes = render(&tl, None).into_bytes();
        if !bytes.is_empty() {
            let i = pos % bytes.len();
            bytes[i] = byte as u8;
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_and_validate(&text);
        }
    }

    // Aggregate law: every series' windowed stats equal a direct
    // recomputation over the retained ticks.
    #[test]
    fn aggregates_match_direct_recomputation(tl in ValidTimeline) {
        for name in SERIES {
            let direct = WindowStats::over(tl.ticks.iter().filter_map(|t| t.series(name)));
            let via = tl.aggregate(name);
            match (direct, via) {
                (None, None) => prop_assert!(tl.ticks.is_empty()),
                (Some(d), Some(v)) => {
                    prop_assert_eq!((d.min, d.max, d.last), (v.min, v.max, v.last));
                    prop_assert!((d.mean - v.mean).abs() < 1e-12);
                }
                (d, v) => prop_assert!(false, "{name}: {d:?} vs {v:?}"),
            }
        }
    }

    // Eviction law: the collector retains the newest `window` ticks and
    // reports the rest as evicted; the first retained tick equals the
    // eviction count.
    #[test]
    fn eviction_accounting_is_exact(shards in 1usize..4, window in 1usize..8, n in 0usize..24) {
        let mut rng = TestRng::deterministic();
        let mut c = TickCollector::new(shards, window);
        for tick in 0..n {
            c.push(sample_tick(&mut rng, tick as u64, shards));
        }
        let tl = c.finish();
        prop_assert_eq!(tl.ticks.len(), n.min(window));
        prop_assert_eq!(tl.evicted, n.saturating_sub(window) as u64);
        if let Some(first) = tl.first_tick() {
            prop_assert_eq!(first, tl.evicted);
        }
    }
}
