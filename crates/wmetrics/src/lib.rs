//! `wimi-metrics` — tick-resolved fleet telemetry for the WiMi serve
//! engine: deterministic timelines, SLO gates, and cross-fleet report
//! synthesis.
//!
//! The serve engine's observability so far is run-cumulative: the
//! `wimi-obs` recorder's counters say *how much* happened, never *when*.
//! This crate adds the time axis without giving up the repo's
//! determinism contract. A [`timeline::TickCollector`] accumulates one
//! [`timeline::TickSample`] per fleet tick — service deltas, model-cache
//! deltas, retry outcomes, the per-shard queue breakdown, and a
//! deterministic work-cost "latency" proxy (air-time packets per
//! session-tick) — into a bounded [`window::RingWindow`], and
//! [`artifact::render`] serializes the window as a byte-stable
//! `wimi-metrics/1` JSONL artifact that is identical under any
//! `WIMI_THREADS` / `WIMI_CHUNK` setting. Wall-clock time never enters
//! the artifact; it stays behind the `wimi-obs` `Clock` seam.
//!
//! On top of the timeline sit two consumers:
//!
//! * [`slo`] — a declarative policy layer (shed fraction, queue-peak
//!   bound, retry-exhaustion budget, per-environment accuracy floors)
//!   evaluated fail-closed, each breach naming the first breaching tick;
//! * [`report`] — a synthesizer joining the `wimi-serve/1` summary's
//!   session rows with the timeline into per-environment × per-material
//!   accuracy / shed / work-cost tables.

#![warn(missing_docs)]

pub mod artifact;
pub mod report;
pub mod slo;
pub mod timeline;
pub mod window;

pub use artifact::{diff, parse_and_validate, render, SCHEMA};
pub use report::{parse_summary_rows, render_report, SessionRow};
pub use slo::{parse_policy, Breach, SloPolicy};
pub use timeline::{ShardSample, TickCollector, TickSample, Timeline, SERIES};
pub use window::{RingWindow, WindowStats};
