//! Tick samples, per-shard samples, and the bounded collector that
//! turns a serve run into a [`Timeline`].

use crate::window::{RingWindow, WindowStats};

/// One shard's telemetry for one tick. Gauges (`depth`) are sampled at
/// the drain point; everything else is a per-tick delta, reset when the
/// engine hands the tick's stats over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSample {
    /// Requests queued on this shard when the drain began (gauge).
    pub depth: u64,
    /// Highest depth this shard reached during the tick.
    pub peak: u64,
    /// Requests accepted onto this shard this tick.
    pub submitted: u64,
    /// Responses this shard produced this tick.
    pub completed: u64,
    /// Requests shed at this shard's bound this tick.
    pub shed: u64,
}

/// One tick of fleet telemetry: service deltas, model-cache deltas,
/// retry outcomes, the deterministic work-cost "latency" proxy
/// (`packets_processed`, air-time packets spent per session-tick), and
/// the per-shard breakdown.
///
/// `exhausted` lists the session ids whose measurement exhausted its
/// retry budget this tick, in ascending order — rendered as
/// `sess:<id>` task labels so timeline entries cross-link to the same
/// `wimi-trace` tasks the flight recorder groups events under.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickSample {
    /// Tick index (the fleet driver's measurement sequence number).
    pub tick: u64,
    /// Requests submitted this tick.
    pub requests: u64,
    /// Responses produced this tick (`requests - shed`).
    pub completed: u64,
    /// Requests shed this tick.
    pub shed: u64,
    /// Model-cache hits this tick.
    pub cache_hits: u64,
    /// Model-cache misses (trainings) this tick.
    pub cache_misses: u64,
    /// Measurement attempts consumed across this tick's responses.
    pub retry_attempts: u64,
    /// Responses whose retry budget was exhausted this tick.
    pub retries_exhausted: u64,
    /// Classification batch calls issued this tick.
    pub svm_batches: u64,
    /// Air-time packets spent across this tick's responses (the
    /// deterministic work-cost latency proxy).
    pub packets_processed: u64,
    /// Session ids that exhausted retries this tick, ascending.
    pub exhausted: Vec<u64>,
    /// Per-shard breakdown, shard order.
    pub shards: Vec<ShardSample>,
}

/// The aggregatable series every timeline carries, canonical order.
/// `queue_peak` is derived per tick: the highest per-shard peak.
pub const SERIES: [&str; 10] = [
    "requests",
    "completed",
    "shed",
    "cache_hits",
    "cache_misses",
    "retry_attempts",
    "retries_exhausted",
    "svm_batches",
    "packets_processed",
    "queue_peak",
];

impl TickSample {
    /// The highest single-shard queue depth this tick reached.
    pub fn queue_peak(&self) -> u64 {
        self.shards.iter().map(|s| s.peak).max().unwrap_or(0)
    }

    /// Reads one named series value; `None` for unknown names.
    pub fn series(&self, name: &str) -> Option<u64> {
        match name {
            "requests" => Some(self.requests),
            "completed" => Some(self.completed),
            "shed" => Some(self.shed),
            "cache_hits" => Some(self.cache_hits),
            "cache_misses" => Some(self.cache_misses),
            "retry_attempts" => Some(self.retry_attempts),
            "retries_exhausted" => Some(self.retries_exhausted),
            "svm_batches" => Some(self.svm_batches),
            "packets_processed" => Some(self.packets_processed),
            "queue_peak" => Some(self.queue_peak()),
            _ => None,
        }
    }
}

/// A bounded, tick-indexed view of one fleet run: the retained
/// [`TickSample`]s plus how much history the window dropped. Everything
/// here is a pure function of the request stream and configuration —
/// byte-identical artifacts under any `WIMI_THREADS`/`WIMI_CHUNK`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Shard count every tick's `shards` vector has.
    pub shards: usize,
    /// Window capacity the collector ran with.
    pub window: usize,
    /// Ticks evicted by the window bound.
    pub evicted: u64,
    /// Retained ticks, oldest first.
    pub ticks: Vec<TickSample>,
}

impl Timeline {
    /// Windowed aggregate of one named series over the retained ticks;
    /// `None` for unknown series or an empty timeline.
    pub fn aggregate(&self, series: &str) -> Option<WindowStats> {
        if !SERIES.contains(&series) {
            return None;
        }
        WindowStats::over(self.ticks.iter().filter_map(|t| t.series(series)))
    }

    /// The first retained tick index (equals `evicted` by construction).
    pub fn first_tick(&self) -> Option<u64> {
        self.ticks.first().map(|t| t.tick)
    }
}

/// Accumulates tick samples into a bounded window as the driver runs.
#[derive(Debug)]
pub struct TickCollector {
    shards: usize,
    window: RingWindow<TickSample>,
}

impl TickCollector {
    /// A collector for `shards`-wide samples, retaining at most
    /// `window.max(1)` ticks.
    pub fn new(shards: usize, window: usize) -> TickCollector {
        TickCollector {
            shards,
            window: RingWindow::new(window),
        }
    }

    /// Appends one tick (evicting the oldest past the window bound).
    pub fn push(&mut self, sample: TickSample) {
        self.window.push(sample);
    }

    /// Snapshots the collector into a [`Timeline`].
    pub fn finish(&self) -> Timeline {
        Timeline {
            shards: self.shards,
            window: self.window.capacity(),
            evicted: self.window.evicted(),
            ticks: self.window.iter().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(n: u64, shed: u64) -> TickSample {
        TickSample {
            tick: n,
            requests: 4 + shed,
            completed: 4,
            shed,
            shards: vec![
                ShardSample {
                    depth: 2,
                    peak: 2,
                    submitted: 2,
                    completed: 2,
                    shed,
                },
                ShardSample {
                    depth: 2,
                    peak: 3,
                    submitted: 2,
                    completed: 2,
                    shed: 0,
                },
            ],
            ..TickSample::default()
        }
    }

    #[test]
    fn queue_peak_is_the_hot_shard() {
        assert_eq!(tick(0, 0).queue_peak(), 3);
        assert_eq!(TickSample::default().queue_peak(), 0);
    }

    #[test]
    fn aggregates_cover_the_retained_window_only() {
        let mut c = TickCollector::new(2, 2);
        for n in 0..4 {
            c.push(tick(n, n)); // shed grows with the tick index
        }
        let tl = c.finish();
        assert_eq!(tl.evicted, 2);
        assert_eq!(tl.first_tick(), Some(2));
        let shed = tl.aggregate("shed").unwrap();
        // Only ticks 2 and 3 remain.
        assert_eq!((shed.min, shed.max, shed.last), (2, 3, 3));
        assert!(tl.aggregate("no_such_series").is_none());
        assert!(Timeline::default().aggregate("shed").is_none());
    }

    #[test]
    fn every_named_series_reads_back() {
        let t = tick(0, 1);
        for name in SERIES {
            assert!(t.series(name).is_some(), "{name}");
        }
    }
}
