//! Cross-fleet report synthesis: joins the `wimi-serve/1` summary's
//! per-session rows with a `wimi-metrics/1` timeline into
//! per-environment × per-material accuracy / shed / work-cost tables.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use wimi_obs::json::{self, Json};

use crate::timeline::{Timeline, SERIES};

/// One session's outcome row, as carried by the `wimi-serve/1` summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRow {
    /// Session id.
    pub id: u64,
    /// Environment the session's captures were synthesized in.
    pub environment: String,
    /// Ground-truth material name.
    pub material: String,
    /// Measurements that produced a classification.
    pub ok: u64,
    /// Measurements that failed the physics pipeline.
    pub failed: u64,
    /// Measurements shed at the queue bound.
    pub shed: u64,
    /// Classifications matching the ground truth.
    pub correct: u64,
    /// Air-time packets spent across the session's measurements.
    pub packets_spent: u64,
}

fn int_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integral field \"{key}\""))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field \"{key}\""))
}

/// Extracts the per-session rows from a `wimi-serve/1` fleet summary.
/// Fail-closed: a wrong schema tag or a row missing its environment or
/// material labels is an error.
pub fn parse_summary_rows(text: &str) -> Result<Vec<SessionRow>, String> {
    let root = json::parse(text)?;
    match root.get("schema").and_then(Json::as_str) {
        Some("wimi-serve/1") => {}
        Some(other) => return Err(format!("schema is \"{other}\", want \"wimi-serve/1\"")),
        None => return Err("missing schema field".to_owned()),
    }
    let Some(Json::Arr(rows)) = root.get("sessions") else {
        return Err("missing sessions array".to_owned());
    };
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let context = |e: String| format!("session record {i}: {e}");
        out.push(SessionRow {
            id: int_field(row, "id").map_err(context)?,
            environment: str_field(row, "environment")
                .map_err(|e| format!("session record {i}: {e}"))?,
            material: str_field(row, "material").map_err(|e| format!("session record {i}: {e}"))?,
            ok: int_field(row, "ok").map_err(|e| format!("session record {i}: {e}"))?,
            failed: int_field(row, "failed").map_err(|e| format!("session record {i}: {e}"))?,
            shed: int_field(row, "shed").map_err(|e| format!("session record {i}: {e}"))?,
            correct: int_field(row, "correct").map_err(|e| format!("session record {i}: {e}"))?,
            packets_spent: int_field(row, "packets_spent")
                .map_err(|e| format!("session record {i}: {e}"))?,
        });
    }
    Ok(out)
}

#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    sessions: u64,
    ok: u64,
    failed: u64,
    shed: u64,
    correct: u64,
    packets: u64,
}

impl Cell {
    fn absorb(&mut self, row: &SessionRow) {
        self.sessions += 1;
        self.ok += row.ok;
        self.failed += row.failed;
        self.shed += row.shed;
        self.correct += row.correct;
        self.packets += row.packets_spent;
    }

    fn accuracy(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.correct as f64 / self.ok as f64
        }
    }

    fn packets_per_measurement(&self) -> f64 {
        let measured = self.ok + self.failed;
        if measured == 0 {
            0.0
        } else {
            self.packets as f64 / measured as f64
        }
    }
}

fn write_cell(out: &mut String, label: &str, c: &Cell) {
    let _ = writeln!(
        out,
        "{label:<24} {:>8} {:>6} {:>6} {:>6} {:>7} {:>9.6} {:>9.2}",
        c.sessions,
        c.ok,
        c.failed,
        c.shed,
        c.correct,
        c.accuracy(),
        c.packets_per_measurement()
    );
}

/// Renders the cross-fleet report: one table row per
/// environment × material cell (lexicographic order), a totals row, and
/// — when a timeline is supplied — the windowed min/max/mean/last of
/// every telemetry series. Deterministic: plain functions of the rows.
// wlint: artifact
pub fn render_report(rows: &[SessionRow], timeline: Option<&Timeline>) -> String {
    let mut cells: BTreeMap<(String, String), Cell> = BTreeMap::new();
    let mut total = Cell::default();
    for row in rows {
        cells
            .entry((row.environment.clone(), row.material.clone()))
            .or_default()
            .absorb(row);
        total.absorb(row);
    }

    let mut out = String::new();
    out.push_str("fleet report (wimi-serve/1 x wimi-metrics/1)\n\n");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>6} {:>6} {:>6} {:>7} {:>9} {:>9}",
        "environment/material",
        "sessions",
        "ok",
        "failed",
        "shed",
        "correct",
        "accuracy",
        "pkts/meas"
    );
    for ((env, material), cell) in &cells {
        write_cell(&mut out, &format!("{env}/{material}"), cell);
    }
    write_cell(&mut out, "total", &total);

    if let Some(tl) = timeline {
        let _ = writeln!(
            out,
            "\ntimeline: {} ticks retained (window {}, evicted {}), {} shards",
            tl.ticks.len(),
            tl.window,
            tl.evicted,
            tl.shards
        );
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>8} {:>12} {:>8}",
            "series", "min", "max", "mean", "last"
        );
        for name in SERIES {
            if let Some(s) = tl.aggregate(name) {
                let _ = writeln!(
                    out,
                    "{name:<20} {:>8} {:>8} {:>12.6} {:>8}",
                    s.min, s.max, s.mean, s.last
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{ShardSample, TickCollector, TickSample};

    fn row(id: u64, env: &str, material: &str, ok: u64, correct: u64, shed: u64) -> SessionRow {
        SessionRow {
            id,
            environment: env.to_owned(),
            material: material.to_owned(),
            ok,
            failed: 1,
            shed,
            correct,
            packets_spent: (ok + 1) * 10,
        }
    }

    #[test]
    fn report_groups_by_environment_then_material() {
        let rows = vec![
            row(0, "Lab", "Milk", 4, 3, 0),
            row(1, "Hall", "PureWater", 4, 4, 1),
            row(2, "Lab", "Milk", 4, 2, 0),
            row(3, "Lab", "PureWater", 4, 4, 0),
        ];
        let text = render_report(&rows, None);
        let lab_milk = text.lines().position(|l| l.starts_with("Lab/Milk"));
        let hall = text.lines().position(|l| l.starts_with("Hall/PureWater"));
        let total = text.lines().position(|l| l.starts_with("total"));
        assert!(hall < lab_milk && lab_milk < total, "{text}");
        // Lab/Milk: 8 ok, 5 correct → accuracy 0.625.
        let line = text
            .lines()
            .find(|l| l.starts_with("Lab/Milk"))
            .map(str::to_owned);
        assert!(
            line.as_deref().is_some_and(|l| l.contains("0.625000")),
            "{line:?}"
        );
        // Renders deterministically.
        assert_eq!(text, render_report(&rows, None));
    }

    #[test]
    fn timeline_join_lists_every_series() {
        let mut c = TickCollector::new(1, 4);
        c.push(TickSample {
            tick: 0,
            requests: 4,
            completed: 4,
            shards: vec![ShardSample {
                depth: 4,
                peak: 4,
                submitted: 4,
                completed: 4,
                shed: 0,
            }],
            ..TickSample::default()
        });
        let text = render_report(&[row(0, "Lab", "Milk", 4, 4, 0)], Some(&c.finish()));
        for name in SERIES {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
    }

    #[test]
    fn summary_rows_parse_fail_closed() {
        let good = r#"{
  "schema": "wimi-serve/1",
  "sessions": [
    {"id": 0, "environment": "Lab", "material": "Milk", "ok": 4, "failed": 1,
     "shed": 0, "correct": 3, "packets_spent": 50}
  ]
}"#;
        let rows = parse_summary_rows(good).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].environment, "Lab");
        assert_eq!(rows[0].material, "Milk");

        assert!(parse_summary_rows(&good.replace("wimi-serve/1", "wimi-serve/0")).is_err());
        assert!(parse_summary_rows(&good.replace("\"environment\": \"Lab\", ", "")).is_err());
        assert!(parse_summary_rows("{}").is_err());
    }
}
